//! Live campaign progress over the `dg-obs` event stream.
//!
//! The campaign executor stamps every `cell_start` / `cell_finish` event with its
//! deterministic **claim sequence** (the cell's position in schedule order, identical
//! for every worker count), so a progress stream recorded from a parallel run can be
//! replayed in exactly the order a serial run would have produced. This example:
//!
//! 1. installs a live progress sink (a [`ProgressMeter`] behind an [`EventSink`])
//!    and runs the same campaign on 1 worker and on N workers;
//! 2. records both event streams, normalises them by claim sequence, and asserts
//!    they are identical — and that the two reports are byte-identical;
//! 3. does the same for a 2-way sharded run (per shard, 1 vs N workers), merging
//!    the shards back into the whole-campaign report.
//!
//! Environment knobs:
//!
//! * `DG_PROGRESS_OUT=<path>` — write the final campaign report JSON there (CI runs
//!   the example twice and byte-diffs the two files);
//! * `DG_PROGRESS_JSONL=<path>` — additionally record the raw event stream as JSONL.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example campaign_progress
//! ```

use darwingame::prelude::*;
use std::sync::{Arc, Mutex};

/// One normalised progress event: claim sequence, kind rank (start = 0, finish = 1),
/// and the cell's stable grid index. Sorting by the first two fields reproduces the
/// serial schedule order from any worker count's interleaving.
type SeqEvent = (u64, u8, usize);

/// An [`EventSink`] that folds cell events into a [`ProgressMeter`] (printing a live
/// progress line per finished cell) while recording the normalised sequence.
struct ProgressSink {
    label: &'static str,
    quiet: bool,
    meter: Mutex<ProgressMeter>,
    events: Mutex<Vec<SeqEvent>>,
}

impl ProgressSink {
    fn new(label: &'static str, spec: &CampaignSpec, quiet: bool) -> Self {
        Self {
            label,
            quiet,
            meter: Mutex::new(ProgressMeter::for_spec(spec)),
            events: Mutex::new(Vec::new()),
        }
    }

    fn sequence(&self) -> Vec<SeqEvent> {
        let mut events = self.events.lock().expect("progress sink poisoned").clone();
        events.sort_unstable();
        events
    }
}

impl EventSink for ProgressSink {
    fn record(&self, record: &ObsRecord) {
        let (cell_seq, kind, index) = match &record.event {
            ObsEvent::CellStart {
                cell_seq, index, ..
            } => (*cell_seq, 0, *index),
            ObsEvent::CellFinish {
                cell_seq, index, ..
            } => (*cell_seq, 1, *index),
            _ => return,
        };
        self.events
            .lock()
            .expect("progress sink poisoned")
            .push((cell_seq, kind, index));
        let mut meter = self.meter.lock().expect("progress meter poisoned");
        if let Some(update) = meter.observe(&record.event) {
            if !self.quiet {
                let eta = update
                    .eta_seconds
                    .map(|s| format!("{s:.1}s"))
                    .unwrap_or_else(|| "?".into());
                println!(
                    "  [{}] cell {:>2} done  {:>3}/{} cells  {:>5.1}%  eta {}",
                    self.label,
                    update.index,
                    update.completed_cells,
                    update.total_cells,
                    update.fraction * 100.0,
                    eta,
                );
            }
        }
    }
}

/// Runs `run` with a fresh progress sink installed, returning the result and the
/// normalised event sequence the run produced.
fn observed<T>(
    label: &'static str,
    spec: &CampaignSpec,
    quiet: bool,
    run: impl FnOnce() -> T,
) -> (T, Vec<SeqEvent>) {
    let sink = Arc::new(ProgressSink::new(label, spec, quiet));
    let id = install_sink(sink.clone());
    let result = run();
    remove_sink(id);
    (result, sink.sequence())
}

fn main() {
    set_obs_enabled(true);
    let jsonl = std::env::var("DG_PROGRESS_JSONL")
        .ok()
        .map(|path| install_sink(Arc::new(JsonlSink::create(&path).expect("open JSONL sink"))));

    let mut spec = CampaignSpec::single("campaign-progress", "DarwinGame", 4);
    spec.scale = ExperimentScale::smoke();
    spec.tuners = vec!["DarwinGame".into(), "RandomSearch".into()];
    spec.base_seed = 7;
    let campaign = Campaign::new(spec.clone());
    let workers = default_workers().max(2);
    let total_cost: f64 = cell_cost_estimates(&spec).iter().sum();
    println!(
        "campaign `{}`: {} cells, {:.0} budgeted evaluations, {} workers\n",
        spec.name,
        spec.cells().len(),
        total_cost,
        workers,
    );

    // -------- Whole-campaign run: 1 worker vs N workers --------
    println!("running on 1 worker:");
    let (serial, serial_seq) = observed("1w", &spec, false, || campaign.run_with_workers(1));
    println!("running on {workers} workers:");
    let (parallel, parallel_seq) =
        observed("Nw", &spec, false, || campaign.run_with_workers(workers));
    assert_eq!(
        serial_seq, parallel_seq,
        "normalised progress sequences must match across worker counts"
    );
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "reports must be byte-identical across worker counts"
    );
    println!(
        "\n1-vs-{workers}-worker: {} events replay identically, reports byte-identical",
        serial_seq.len(),
    );

    // -------- Sharded run: per shard, 1 worker vs N workers --------
    let plan = ShardPlan::new(&spec, 2, ShardStrategy::CostBalanced);
    let mut shards = Vec::new();
    for shard in 0..plan.shard_count() {
        let (one, one_seq) = observed("shard/1w", &spec, true, || {
            campaign.run_shard_with_workers(&plan, shard, 1)
        });
        let (many, many_seq) = observed("shard/Nw", &spec, true, || {
            campaign.run_shard_with_workers(&plan, shard, workers)
        });
        assert_eq!(
            one_seq, many_seq,
            "shard {shard}: progress sequences must match across worker counts"
        );
        assert_eq!(
            one.to_json(),
            many.to_json(),
            "shard {shard}: reports must be byte-identical across worker counts"
        );
        println!(
            "shard {shard}: {} cells, {} events replay identically on 1 vs {workers} workers",
            one.cells.len(),
            one_seq.len(),
        );
        shards.push(one);
    }
    let merged = CampaignReport::merge(shards).expect("shards merge");
    assert_eq!(
        merged.to_json(),
        serial.to_json(),
        "merged shard report must equal the single-host report"
    );
    println!("merged 2-shard report is byte-identical to the single-host report");

    if let Some(id) = jsonl {
        remove_sink(id);
    }
    if let Ok(path) = std::env::var("DG_PROGRESS_OUT") {
        std::fs::write(&path, serial.to_json()).expect("write DG_PROGRESS_OUT");
        println!("final report written to {path}");
    }
    println!(
        "\nmetrics snapshot:\n{}",
        darwingame::obs::MetricsSnapshot::capture().to_json()
    );
}
