//! The retune gauntlet: adaptive serving vs the paper's tune-once protocol.
//!
//! One [`RetuneSweep`] runs the dynamic-scenario gauntlet (`steady`, `regime-shift`,
//! `diurnal`, `bursty-neighbor`) over several seeds. Every cell deploys two champions
//! at evaluation parity on same-seeded environments: the *adaptive* leg monitors its
//! deployment stream and re-tunes on confirmed drift, the *fixed* leg spends the same
//! total budget up front and never looks back. Cumulative regret (deployed time minus
//! the oracle champion's paired deployed time) is the score.
//!
//! The sweep runs twice (1 worker, then all cores) and asserts the reports are
//! byte-identical — the same guarantee every campaign in this repo carries. The
//! `steady` column must show zero detections and zero retunes: a monitor that fires
//! under stationary noise would burn budget chasing ghosts.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example retune_gauntlet
//! ```
//!
//! Set `DG_RETUNE_SMOKE=1` for a CI-sized grid (seconds instead of minutes) and
//! `DG_RETUNE_OUT=/path/report.json` to write the canonical retune report (the CI
//! `retune-smoke` job runs the example twice and diffs the two files byte for byte).

use darwingame::prelude::*;

fn gauntlet_spec(smoke: bool) -> RetuneSpec {
    let mut spec = RetuneSpec::gauntlet("retune-gauntlet", if smoke { 6 } else { 12 });
    if smoke {
        spec.space_size = 500;
        spec.policy.initial_budget = 16;
        spec.policy.retune_budget = 4;
        spec.policy.max_retunes = 3;
        spec.policy.deploy_steps = 96;
    }
    spec.base_seed = 0x5e21;
    spec
}

fn main() {
    let smoke = std::env::var("DG_RETUNE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let spec = gauntlet_spec(smoke);
    let sweep = RetuneSweep::new(spec);

    println!(
        "=== Retune gauntlet: {} scenarios x {} seeds ({} cells, <= {} evals/leg, {}) ===\n",
        sweep.spec().scenarios.len(),
        sweep.spec().seeds.len(),
        sweep.spec().grid_size(),
        sweep.spec().fixed_budget(),
        if smoke { "smoke" } else { "full" },
    );

    let serial = sweep.run_with_workers(1);
    let parallel = sweep.run();
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "1-worker and N-worker retune sweeps must be byte-identical"
    );
    let report = parallel;

    println!("{}", report.summary_table());

    let steady = report.scenario("steady").expect("steady column");
    assert_eq!(
        steady.detections, 0,
        "the monitor must never fire under a steady environment"
    );
    assert_eq!(steady.retunes, 0, "steady cells must never spend a retune");

    let dynamic: Vec<&RetuneScenarioSummary> = report
        .scenarios
        .iter()
        .filter(|s| s.scenario != "steady")
        .collect();
    let adaptive: f64 = dynamic.iter().map(|s| s.adaptive_regret).sum();
    let fixed: f64 = dynamic.iter().map(|s| s.fixed_regret).sum();
    println!(
        "\ndynamic scenarios: adaptive regret {adaptive:.1} s vs tune-once {fixed:.1} s \
         ({:.1}% saved)",
        if fixed > 0.0 {
            100.0 * (fixed - adaptive) / fixed
        } else {
            0.0
        }
    );
    assert!(
        adaptive <= fixed,
        "adaptive serving must not lose to tune-once in aggregate \
         (adaptive {adaptive:.1} s vs fixed {fixed:.1} s)"
    );

    if let Ok(path) = std::env::var("DG_RETUNE_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, report.to_json()).expect("write retune report");
            println!("\ncanonical report written to {path}");
        }
    }
}
