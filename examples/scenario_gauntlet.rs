//! The scenario gauntlet: rank every tuner across the whole built-in scenario pack.
//!
//! One campaign sweeps tuners × the ≥8 named cloud scenarios (`steady`, `diurnal`,
//! `bursty-neighbor`, `regime-shift`, `preemption-heavy`, `hetero-fleet`,
//! `noisy-cheap`, `quiet-expensive`) over several seeds, then ranks the tuners per
//! scenario by the mean execution time of their chosen configurations. The point of
//! the exercise: a ranking earned under stationary noise does not survive dynamic
//! regimes — at least one scenario reorders the tuners relative to `steady`.
//!
//! The sweep runs twice (1 worker, then all cores) and asserts the reports are
//! byte-identical, the same guarantee every other campaign carries.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scenario_gauntlet
//! ```
//!
//! Set `DG_GAUNTLET_SMOKE=1` for a CI-sized grid (seconds instead of minutes) and
//! `DG_GAUNTLET_OUT=/path/report.json` to write the canonical campaign report (the
//! CI `scenario-smoke` job runs the example twice and diffs the two files byte for
//! byte).

use darwingame::prelude::*;
use darwingame::stats::{Column, Table};

fn gauntlet_spec(smoke: bool) -> CampaignSpec {
    let mut spec = CampaignSpec::single("scenario-gauntlet", "DarwinGame", 1);
    spec.tuners = vec![
        "DarwinGame".into(),
        "RandomSearch".into(),
        "BLISS".into(),
        "OpenTuner".into(),
        "ActiveHarmony".into(),
        "NTBEA".into(),
    ];
    spec.scenarios = ScenarioSpec::pack();
    if smoke {
        spec.seeds = vec![0];
        spec.scale = ExperimentScale::smoke();
    } else {
        spec.seeds = vec![0, 1];
        spec.scale = ExperimentScale {
            space_size: 20_000,
            regions: 64,
            evaluation_runs: 30,
            ..ExperimentScale::default_scale()
        };
    }
    spec.base_seed = 0x5ce1;
    spec
}

/// Tuners of one scenario, ranked best (lowest group mean time) first.
fn ranking(report: &CampaignReport, scenario: &str) -> Vec<(String, f64)> {
    let mut rows: Vec<(String, f64)> = report
        .groups
        .iter()
        .filter(|g| g.scenario == scenario)
        .map(|g| (g.tuner.clone(), g.mean_time))
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

fn main() {
    let smoke = std::env::var("DG_GAUNTLET_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let spec = gauntlet_spec(smoke);
    let campaign = Campaign::new(spec);
    let scenarios: Vec<String> = campaign
        .spec()
        .scenarios
        .iter()
        .map(|s| s.name.clone())
        .collect();
    assert!(scenarios.len() >= 8, "the gauntlet runs the whole pack");

    println!(
        "=== Scenario gauntlet: {} tuners x {} scenarios x {} seeds ({} cells) ===\n",
        campaign.spec().tuners.len(),
        scenarios.len(),
        campaign.spec().seeds.len(),
        campaign.spec().grid_size(),
    );

    let serial = campaign.run_with_workers(1);
    let parallel = campaign.run();
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "1-worker and N-worker gauntlets must be byte-identical"
    );
    let report = parallel;

    let mut table = Table::new(vec![
        Column::left("scenario"),
        Column::left("ranking (best -> worst)"),
        Column::right("best mean (s)"),
        Column::right("core-hours"),
        Column::left("vs steady"),
    ]);
    let steady_order: Vec<String> = ranking(&report, "steady")
        .into_iter()
        .map(|(tuner, _)| tuner)
        .collect();
    let mut reordered: Vec<&str> = Vec::new();
    for scenario in &scenarios {
        let ranked = ranking(&report, scenario);
        let order: Vec<String> = ranked.iter().map(|(tuner, _)| tuner.clone()).collect();
        let hours: f64 = report
            .groups
            .iter()
            .filter(|g| &g.scenario == scenario)
            .map(|g| g.core_hours)
            .sum();
        let delta = if order == steady_order {
            "same order"
        } else {
            reordered.push(scenario);
            "REORDERED"
        };
        table.push_row(vec![
            scenario.clone(),
            order.join(" > "),
            format!("{:.1}", ranked.first().map(|(_, t)| *t).unwrap_or(f64::NAN)),
            format!("{hours:.1}"),
            delta.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\n{} of {} non-steady scenarios reorder the steady tuner ranking: {}",
        reordered.len(),
        scenarios.len() - 1,
        if reordered.is_empty() {
            "none".to_string()
        } else {
            reordered.join(", ")
        }
    );
    assert!(
        !reordered.is_empty(),
        "at least one scenario must reorder the tuner ranking vs steady"
    );

    if let Ok(path) = std::env::var("DG_GAUNTLET_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, report.to_json()).expect("write gauntlet report");
            println!("\ncanonical report written to {path}");
        }
    }
}
