//! A distributed campaign: K shard processes, one merge, byte-identical to one host.
//!
//! The parent process builds a [`ShardPlan`], re-executes itself K times (one OS
//! process per shard, the way a cluster launcher would start one worker per host),
//! and each child writes its [`ShardReport`] as canonical JSON to a file. The parent
//! parses the K files, merges them with [`CampaignReport::merge`], runs the same
//! campaign single-process as a reference, and verifies the merged report is
//! **byte-identical** to the single-process one — the end-to-end proof that sharding
//! is invisible in the results.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example shard_campaign
//! DG_SHARDS=4 DG_SHARD_STRATEGY=strided cargo run --release --example shard_campaign
//! ```
//!
//! Environment knobs: `DG_SHARDS` (shard count, default 3) and `DG_SHARD_STRATEGY`
//! (`contiguous` | `strided` | `cost-balanced`, default `cost-balanced`).

use darwingame::prelude::*;
use darwingame::stats::{Column, Table};
use std::path::PathBuf;
use std::process::Command;

/// The shared spec every participant (parent and children) rebuilds identically: a
/// 12-cell grid over two tuners, two VM types, and three seeds at smoke scale.
fn shared_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::single("shard-campaign", "RandomSearch", 3);
    spec.tuners = vec!["RandomSearch".into(), "BLISS".into()];
    spec.vm_types = vec![VmType::M5_8xlarge, VmType::C5_9xlarge];
    spec.scale = ExperimentScale::smoke();
    spec.base_seed = 0x5a4d;
    spec
}

fn strategy_from_env() -> ShardStrategy {
    let name = std::env::var("DG_SHARD_STRATEGY").unwrap_or_else(|_| "cost-balanced".to_string());
    ShardStrategy::from_name(&name).unwrap_or_else(|| {
        panic!("unknown DG_SHARD_STRATEGY {name:?} (want contiguous | strided | cost-balanced)")
    })
}

fn shard_count_from_env() -> usize {
    std::env::var("DG_SHARDS")
        .ok()
        .map(|v| v.parse().expect("DG_SHARDS must be a positive integer"))
        .unwrap_or(3)
        .max(1)
}

fn main() {
    let spec = shared_spec();
    let shards = shard_count_from_env();
    let strategy = strategy_from_env();
    let plan = ShardPlan::new(&spec, shards, strategy);

    // Child mode: run one shard and write its report where the parent asked.
    if let Ok(index) = std::env::var("DG_SHARD_INDEX") {
        let shard: usize = index.parse().expect("DG_SHARD_INDEX must be an integer");
        let out = std::env::var("DG_SHARD_OUT").expect("DG_SHARD_OUT must be set for children");
        let report = Campaign::new(spec).run_shard(&plan, shard);
        std::fs::write(&out, report.to_json()).expect("write shard report");
        return;
    }

    println!("=== Sharded campaign: {shards} processes, {strategy} assignment ===\n");
    println!(
        "grid: {} cells ({} tuners x {} VMs x {} seeds)",
        spec.grid_size(),
        spec.tuners.len(),
        spec.vm_types.len(),
        spec.seeds.len()
    );

    let out_dir = std::env::temp_dir().join(format!("dg-shard-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).expect("create shard output directory");
    let shard_file = |shard: usize| -> PathBuf { out_dir.join(format!("shard-{shard}.json")) };

    // One OS process per shard, all running concurrently — the single-host stand-in
    // for "one worker per cloud host". Each child rebuilds the same spec and plan.
    let exe = std::env::current_exe().expect("current executable path");
    let children: Vec<_> = (0..plan.shard_count())
        .map(|shard| {
            Command::new(&exe)
                .env("DG_SHARD_INDEX", shard.to_string())
                .env("DG_SHARD_OUT", shard_file(shard))
                .env("DG_SHARDS", shards.to_string())
                .env("DG_SHARD_STRATEGY", strategy.name())
                .spawn()
                .expect("spawn shard process")
        })
        .collect();
    for (shard, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait for shard process");
        assert!(status.success(), "shard {shard} exited with {status}");
    }

    // Gather the shard reports from their files — the merge side of the protocol.
    let mut reports = Vec::with_capacity(plan.shard_count());
    for shard in 0..plan.shard_count() {
        let text = std::fs::read_to_string(shard_file(shard)).expect("read shard report");
        reports.push(ShardReport::from_json(&text).expect("parse shard report"));
    }

    let mut table = Table::new(vec![
        Column::right("shard"),
        Column::right("cells"),
        Column::right("est. cost"),
        Column::right("core-hours"),
        Column::right("bytes"),
    ]);
    for report in &reports {
        table.push_row(vec![
            format!("{}", report.shard),
            format!("{}", report.cells.len()),
            format!("{}", plan.estimated_cost(report.shard)),
            format!(
                "{:.1}",
                report.cells.iter().map(|c| c.core_hours).sum::<f64>()
            ),
            format!("{}", report.to_json().len()),
        ]);
    }
    println!("\n{}", table.render());

    let merged = CampaignReport::merge(reports).expect("shard reports merge");
    let reference = Campaign::new(spec).run();
    assert_eq!(
        merged.to_json(),
        reference.to_json(),
        "merged shard reports must be byte-identical to the single-process report"
    );

    println!(
        "merged {} cells from {} processes -> byte-identical to the single-process report \
         ({} bytes of canonical JSON)\n",
        merged.completed_cells(),
        plan.shard_count(),
        merged.to_json().len()
    );
    println!("{}", merged.summary_table().render());

    let _ = std::fs::remove_dir_all(&out_dir);
}
