//! Integrating DarwinGame with existing tuners (Sec. 3.6 / Fig. 13).
//!
//! BLISS and ActiveHarmony are run twice: as-is, and with DarwinGame playing a tournament
//! inside every subspace their outer loop visits.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hybrid_integration
//! ```

use darwingame::prelude::*;
use darwingame::stats::{Column, Table};

fn measure(workload: &Workload, cloud: &CloudEnvironment, chosen: u64) -> (f64, f64) {
    let runs = cloud.observe_repeated(workload.spec(chosen), 40, 1800.0);
    (mean(&runs), coefficient_of_variation(&runs))
}

fn main() {
    let workload = Workload::scaled(Application::Lammps, 16_000);
    let vm = VmType::M5_8xlarge;
    let budget = TuningBudget::evaluations(120);

    let mut table = Table::new(vec![
        Column::left("tuner"),
        Column::right("mean time (s)"),
        Column::right("CoV (%)"),
        Column::right("core-hours"),
    ]);

    // Plain BLISS vs BLISS + DarwinGame.
    {
        let mut cloud = CloudEnvironment::new(vm, InterferenceProfile::typical(), 11);
        let outcome = Bliss::new(3).tune(&workload, &mut cloud, budget);
        let (time, cov) = measure(&workload, &cloud, outcome.chosen);
        table.push_row(vec![
            "BLISS".into(),
            format!("{time:.1}"),
            format!("{cov:.2}"),
            format!("{:.1}", outcome.core_hours),
        ]);
    }
    {
        let mut cloud = CloudEnvironment::new(vm, InterferenceProfile::typical(), 12);
        let outcome = HybridDarwinGame::bliss(3)
            .with_subspaces(12)
            .with_explorations(5)
            .tune(&workload, &mut cloud, budget);
        let (time, cov) = measure(&workload, &cloud, outcome.chosen);
        table.push_row(vec![
            "BLISS+DarwinGame".into(),
            format!("{time:.1}"),
            format!("{cov:.2}"),
            format!("{:.1}", outcome.core_hours),
        ]);
    }

    // Plain ActiveHarmony vs ActiveHarmony + DarwinGame.
    {
        let mut cloud = CloudEnvironment::new(vm, InterferenceProfile::typical(), 13);
        let outcome = ActiveHarmony::new(5).tune(&workload, &mut cloud, budget);
        let (time, cov) = measure(&workload, &cloud, outcome.chosen);
        table.push_row(vec![
            "ActiveHarmony".into(),
            format!("{time:.1}"),
            format!("{cov:.2}"),
            format!("{:.1}", outcome.core_hours),
        ]);
    }
    {
        let mut cloud = CloudEnvironment::new(vm, InterferenceProfile::typical(), 14);
        let outcome = HybridDarwinGame::active_harmony(5)
            .with_subspaces(12)
            .with_explorations(5)
            .tune(&workload, &mut cloud, budget);
        let (time, cov) = measure(&workload, &cloud, outcome.chosen);
        table.push_row(vec![
            "ActiveHarmony+DarwinGame".into(),
            format!("{time:.1}"),
            format!("{cov:.2}"),
            format!("{:.1}", outcome.core_hours),
        ]);
    }

    println!(
        "Integrating DarwinGame with existing tuners on {} (noisy m5.8xlarge)\n",
        workload.application()
    );
    println!("{}", table.render());
    println!("(the +DarwinGame rows should show lower mean time and much lower CoV)");
}
