//! DarwinGame across VM classes and sizes (Fig. 15).
//!
//! The same Redis workload is tuned on every VM type of the paper's sweep; DarwinGame's
//! chosen configuration should stay within roughly 10 % of the dedicated-environment
//! optimum everywhere, with a small coefficient of variation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example vm_sweep
//! ```

use darwingame::prelude::*;
use darwingame::stats::{Column, Table};

fn main() {
    let workload = Workload::scaled(Application::Redis, 12_000);

    let mut table = Table::new(vec![
        Column::left("VM type"),
        Column::right("vCPUs"),
        Column::right("Oracle (s)"),
        Column::right("DarwinGame (s)"),
        Column::right("gap (%)"),
        Column::right("CoV (%)"),
    ]);

    for (i, vm) in VmType::ALL.iter().enumerate() {
        let vm = *vm;
        let oracle = OracleTuner::new().optimal_time(&workload, vm);

        let mut cloud = CloudEnvironment::new(vm, InterferenceProfile::typical(), 50 + i as u64);
        let mut config = TournamentConfig::scaled(32, 7 + i as u64);
        // P follows the VM's core count, but stays small enough for tiny VMs.
        config.players_per_game = Some(vm.vcpus().clamp(2, 16));
        let report = DarwinGame::new(config).run(&workload, &mut cloud);

        let runs = cloud.observe_repeated(workload.spec(report.champion), 40, 1800.0);
        let mean_time = mean(&runs);
        table.push_row(vec![
            vm.name().into(),
            format!("{}", vm.vcpus()),
            format!("{oracle:.1}"),
            format!("{mean_time:.1}"),
            format!("{:.1}", 100.0 * (mean_time - oracle) / oracle),
            format!("{:.2}", coefficient_of_variation(&runs)),
        ]);
    }

    println!(
        "DarwinGame vs Oracle across VM types ({}, 1M requests)\n",
        workload.application()
    );
    println!("{}", table.render());
}
