//! DarwinGame across VM classes and sizes (Fig. 15), declared as a campaign.
//!
//! The same Redis workload is tuned on every VM type of the paper's sweep — one campaign
//! cell per VM, fanned out across the host's cores. DarwinGame's chosen configuration
//! should stay within roughly 10 % of the dedicated-environment optimum everywhere, with
//! a small coefficient of variation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example vm_sweep
//! ```

use darwingame::prelude::*;
use darwingame::stats::{Column, Table};

fn main() {
    let mut spec = CampaignSpec::single("vm-sweep", "DarwinGame", 1);
    spec.vm_types = VmType::ALL.to_vec();
    spec.scale = ExperimentScale {
        space_size: 12_000,
        regions: 32,
        evaluation_runs: 40,
        ..ExperimentScale::default_scale()
    };
    spec.base_seed = 50;

    let workload = Workload::scaled(Application::Redis, spec.scale.space_size);
    let report = Campaign::new(spec).run();

    let mut table = Table::new(vec![
        Column::left("VM type"),
        Column::right("vCPUs"),
        Column::right("Oracle (s)"),
        Column::right("DarwinGame (s)"),
        Column::right("gap (%)"),
        Column::right("CoV (%)"),
    ]);
    for (cell, vm) in report.cells.iter().zip(VmType::ALL.iter()) {
        let oracle = OracleTuner::new().optimal_time(&workload, *vm);
        table.push_row(vec![
            cell.vm.clone(),
            format!("{}", vm.vcpus()),
            format!("{oracle:.1}"),
            format!("{:.1}", cell.mean_time),
            format!("{:.1}", 100.0 * (cell.mean_time - oracle) / oracle),
            format!("{:.2}", cell.cov_percent),
        ]);
    }

    println!(
        "DarwinGame vs Oracle across VM types ({}, 1M requests; {} parallel cells)\n",
        workload.application(),
        report.completed_cells(),
    );
    println!("{}", table.render());
}
