//! Ablation study: which parts of the tournament actually matter? (mini Fig. 16)
//!
//! Every design element of DarwinGame is disabled in turn; each variant is registered as
//! one entry on a campaign's tuner axis, so the whole sweep runs as parallel campaign
//! cells instead of a hand-rolled serial loop. The variant list itself lives next to
//! `AblationConfig` in `darwin-core` and is shared with the Fig. 16 bench.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use darwingame::prelude::*;

fn main() {
    let variants = AblationConfig::paper_variants();

    let mut spec = CampaignSpec::single("ablation-study", "full DarwinGame", 1);
    spec.scale = ExperimentScale {
        space_size: 20_000,
        regions: 48,
        evaluation_runs: 40,
        ..ExperimentScale::default_scale()
    };
    spec.base_seed = 77;
    // Ablations are paired comparisons: every variant must face the same noise as the
    // full design, so the measured deltas are ablation effect, not seed variance.
    spec.paired_tuners = true;
    spec.tuners = variants.iter().map(|(name, _)| (*name).into()).collect();

    let mut registry = TunerRegistry::new();
    for (name, ablation) in &variants {
        register_darwin_variant(&mut registry, *name, &spec.scale, *ablation);
    }

    let workload = Workload::scaled(Application::Redis, spec.scale.space_size);
    let report = Campaign::with_registry(spec, registry).run();

    println!(
        "Ablating DarwinGame's design elements on {} (noisy m5.8xlarge, {} parallel cells)\n",
        workload.application(),
        report.completed_cells(),
    );
    println!("{}", report.summary_table().render());
    let full = &report.cells[0];
    println!(
        "full design reference: {:.1} s, CoV {:.2} %, {:.1} core-hours",
        full.mean_time, full.cov_percent, full.core_hours
    );
    println!("(every ablated variant should be worse on at least one of the three columns)");
}
