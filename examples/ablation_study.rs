//! Ablation study: which parts of the tournament actually matter? (mini Fig. 16)
//!
//! Runs DarwinGame on one workload with each design element disabled in turn and reports
//! how the chosen configuration's execution time, variability, and the tuning cost move
//! relative to the full design.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use darwingame::prelude::*;
use darwingame::stats::{Column, Table};

fn run_with(workload: &Workload, ablation: AblationConfig, seed: u64) -> (f64, f64, f64) {
    let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 77);
    let mut config = TournamentConfig::scaled(48, seed);
    config.players_per_game = Some(16);
    config.ablation = ablation;
    let report = DarwinGame::new(config).run(workload, &mut cloud);
    let runs = cloud.observe_repeated(workload.spec(report.champion), 40, 1800.0);
    (
        mean(&runs),
        coefficient_of_variation(&runs),
        report.core_hours,
    )
}

fn main() {
    let workload = Workload::scaled(Application::Redis, 20_000);
    let full = AblationConfig::full();
    let ablations: Vec<(&str, AblationConfig)> = vec![
        ("full DarwinGame", full),
        (
            "w/o regional",
            AblationConfig {
                regional_phase: false,
                ..full
            },
        ),
        (
            "one-win regional",
            AblationConfig {
                single_regional_winner: true,
                ..full
            },
        ),
        (
            "w/o Swiss",
            AblationConfig {
                swiss_regional: false,
                ..full
            },
        ),
        (
            "w/o global",
            AblationConfig {
                global_phase: false,
                ..full
            },
        ),
        (
            "w/o double elimination",
            AblationConfig {
                double_elimination: false,
                ..full
            },
        ),
        (
            "w/o barrage",
            AblationConfig {
                barrage_playoffs: false,
                ..full
            },
        ),
        (
            "w/o consistency score",
            AblationConfig {
                consistency_score: false,
                ..full
            },
        ),
        (
            "w/o execution score",
            AblationConfig {
                execution_score: false,
                ..full
            },
        ),
        (
            "all 2-player games",
            AblationConfig {
                multiplayer_games: false,
                ..full
            },
        ),
        (
            "w/o early termination",
            AblationConfig {
                early_termination: false,
                ..full
            },
        ),
    ];

    let mut table = Table::new(vec![
        Column::left("variant"),
        Column::right("mean time (s)"),
        Column::right("CoV (%)"),
        Column::right("core-hours"),
    ]);
    let mut reference: Option<(f64, f64, f64)> = None;
    for (name, ablation) in ablations {
        let (time, cov, hours) = run_with(&workload, ablation, 5);
        if reference.is_none() {
            reference = Some((time, cov, hours));
        }
        table.push_row(vec![
            name.into(),
            format!("{time:.1}"),
            format!("{cov:.2}"),
            format!("{hours:.1}"),
        ]);
    }

    println!(
        "Ablating DarwinGame's design elements on {} (noisy m5.8xlarge)\n",
        workload.application()
    );
    println!("{}", table.render());
    let (time, cov, hours) = reference.expect("the full design ran first");
    println!("full design reference: {time:.1} s, CoV {cov:.2} %, {hours:.1} core-hours");
    println!("(every ablated variant should be worse on at least one of the three columns)");
}
