//! Record a campaign once, replay it forever: the record/replay execution backend.
//!
//! The campaign runs live once with a recording backend wrapped around the simulator,
//! producing a [`CampaignReport`] plus an execution trace (canonical JSON). The trace
//! is written to disk, parsed back, and replayed: every game, solo evaluation, and
//! observation is answered from the trace with **zero** simulator operations, and the
//! replayed report is verified **byte-identical** to the live one. Repeated sweeps
//! over recorded campaigns (fig15/fig16-style analyses, report regeneration, CI) pay
//! the simulation cost once and replay near-instantly afterwards.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example record_replay
//! ```
//!
//! Environment knobs: `DG_TRACE_DIR` (where to write `trace.json` / the two report
//! files, default: a fresh directory under the system temp dir).

use darwingame::exec::sim_ops;
use darwingame::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A small but representative grid: DarwinGame (games, forks, solo runs) and two
/// baselines (solo runs) over two seeds, with post-tuning repeated observations.
fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::single("record-replay", "DarwinGame", 2);
    spec.tuners = vec!["DarwinGame".into(), "RandomSearch".into(), "BLISS".into()];
    spec.scale = ExperimentScale::smoke();
    spec.base_seed = 0x7ace;
    spec
}

fn out_dir() -> PathBuf {
    match std::env::var("DG_TRACE_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => std::env::temp_dir().join(format!("dg-record-replay-{}", std::process::id())),
    }
}

fn main() {
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");
    let campaign = Campaign::new(spec());
    println!(
        "=== Record & replay: {} cells ===\n",
        campaign.spec().grid_size()
    );

    // 1. Live run, recorded. One worker keeps the whole run on this thread, so the
    // thread-local simulator-op counter measures exactly this campaign's work.
    let sim_ops_before_record = sim_ops();
    let record_start = Instant::now();
    let (live_report, trace) = campaign.record_with_workers(1);
    let record_elapsed = record_start.elapsed();
    let recorded_ops = sim_ops() - sim_ops_before_record;
    println!(
        "recorded: {} cells, {} streams, {} events, {} simulator ops, {:.2} s",
        live_report.completed_cells(),
        trace.streams().len(),
        trace.events_total(),
        recorded_ops,
        record_elapsed.as_secs_f64(),
    );

    // 2. Persist trace + report, the way a stored campaign artifact would travel.
    let trace_path = dir.join("trace.json");
    let live_path = dir.join("report-live.json");
    std::fs::write(&trace_path, trace.to_json()).expect("write trace");
    std::fs::write(&live_path, live_report.to_json()).expect("write live report");

    // 3. Parse the trace back and replay with zero resimulation.
    let parsed = Arc::new(
        ExecutionTrace::from_json(&std::fs::read_to_string(&trace_path).expect("read trace back"))
            .expect("stored traces parse"),
    );
    // Single-worker replay runs on this thread, so the thread-local simulator-op
    // counter proves zero resimulation exactly.
    let sim_ops_before_replay = sim_ops();
    let replay_start = Instant::now();
    let replayed_report = campaign
        .replay_with_workers(Arc::clone(&parsed), 1)
        .expect("trace matches its own spec");
    let replay_elapsed = replay_start.elapsed();
    assert_eq!(
        sim_ops() - sim_ops_before_replay,
        0,
        "replay must not execute any simulator operation"
    );
    let replay_path = dir.join("report-replayed.json");
    std::fs::write(&replay_path, replayed_report.to_json()).expect("write replayed report");

    // 4. Byte-identity, on disk.
    let live_bytes = std::fs::read(&live_path).expect("read live report");
    let replay_bytes = std::fs::read(&replay_path).expect("read replayed report");
    assert_eq!(
        live_bytes, replay_bytes,
        "replayed report must be byte-identical to the live run"
    );
    println!(
        "replayed: byte-identical report, 0 simulator ops, {:.3} s ({:.0}x faster)\n",
        replay_elapsed.as_secs_f64(),
        record_elapsed.as_secs_f64() / replay_elapsed.as_secs_f64().max(1e-9),
    );

    // 5. A trace is pinned to its spec: a different grid is rejected, typed.
    let mut other = spec();
    other.base_seed ^= 1;
    match Campaign::new(other).replay(Arc::clone(&parsed)) {
        Err(err) => println!("mismatched spec rejected as expected:\n  {err}"),
        Ok(_) => panic!("a reseeded spec must not accept the trace"),
    }

    println!("\nartifacts in {}", dir.display());
    println!("{}", live_report.summary_table().render());
}
