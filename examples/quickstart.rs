//! Quickstart: tune a (simulated) Redis deployment in a noisy cloud with DarwinGame.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use darwingame::prelude::*;

fn main() {
    // 1. Pick the workload. `scaled` caps the search space (here 20,000 configurations
    //    instead of the paper's 7.8 million) so the example finishes in seconds.
    let workload = Workload::scaled(Application::Redis, 20_000);
    println!(
        "workload: {} — {} tunable parameters, {} configurations",
        workload.application(),
        workload.space().dimensions(),
        workload.size()
    );

    // 2. Create the shared, interference-prone cloud environment (an m5.8xlarge VM with
    //    the default noisy-neighbour profile).
    let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 42);

    // 3. Configure the tournament. 48 regions is plenty for a 20k-point space; the
    //    remaining parameters are the paper's defaults (d = 10 %, early termination on).
    let mut config = TournamentConfig::scaled(48, 7);
    config.players_per_game = Some(16);

    // 4. Play the tournament.
    let report = DarwinGame::new(config).run(&workload, &mut cloud);

    println!("\n=== DarwinGame result ===");
    println!("champion configuration : #{}", report.champion);
    println!("  {}", workload.space().describe(report.champion));
    println!(
        "observed time (final)  : {:.1} s",
        report.champion_observed_time
    );
    println!("games played           : {}", report.games_played);
    println!(
        "tuning cost            : {:.1} core-hours",
        report.core_hours
    );
    for phase in &report.phases {
        println!(
            "  phase {:<14} {:>4} games  {:>8.1} core-hours",
            phase.name, phase.games, phase.core_hours
        );
    }

    // 5. Compare against the dedicated-environment optimum and measure stability of the
    //    chosen configuration across 50 later executions in the cloud.
    let oracle = OracleTuner::new().optimal_time(&workload, cloud.vm());
    let champion_runs = cloud.observe_repeated(workload.spec(report.champion), 50, 1800.0);
    println!("\n=== Quality of the chosen configuration ===");
    println!("dedicated-environment optimum : {oracle:.1} s");
    println!(
        "champion, mean over 50 runs   : {:.1} s  (CoV {:.2} %)",
        mean(&champion_runs),
        coefficient_of_variation(&champion_runs)
    );
}
