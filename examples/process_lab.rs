//! A real-process campaign in a resumable lab: tune actual OS processes, kill the
//! run at any point, resume without re-running a single completed cell.
//!
//! The example writes a small `/bin/sh` workload whose reported duration
//! (`DG_TIME=...` on stdout) is a pure function of its configuration, then runs a
//! campaign against it through [`ProcessProvider`] inside a persistent
//! [`CampaignLab`]. Every completed cell is flushed to `lab/cells/cell-<i>.json` the
//! moment it finishes, so re-running the example against the same `DG_LAB_DIR`:
//!
//! * skips every completed cell (launching **zero** processes for them — provable
//!   with `DG_LAB_EXPECT_ZERO=1`), and
//! * produces a final merged report **byte-identical** to an uninterrupted run, no
//!   matter where a previous run was killed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example process_lab
//! DG_LAB_KILL_AFTER=2 cargo run --release --example process_lab   # stop after 2 cells
//! ```
//!
//! Environment knobs: `DG_LAB_DIR` (lab location, default under the temp dir),
//! `DG_LAB_KILL_AFTER` (simulate a kill: run at most N new cells, then exit),
//! `DG_LAB_REPORT` (write the merged report JSON here when complete), and
//! `DG_LAB_EXPECT_ZERO` (assert the whole run launched zero processes).

use darwingame::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

/// The stand-in workload: deterministic, instant, and honest about the marker
/// contract. A real lab points the template at its actual benchmark command instead.
const WORKLOAD_SH: &str = r#"#!/bin/sh
# Report a duration that is a pure function of the configuration (base time,
# sensitivity) and the observation salt, then declare success.
t=$(awk -v b="$DG_BASE_TIME" -v s="$DG_SENSITIVITY" -v x="$DG_SALT" \
    'BEGIN { printf "%.6f", b * (1.0 + 0.2 * s) + (x % 7) * 0.125 }')
echo "DG_TIME=$t"
printf SUCCESS > "$DG_JOB_DIR/status"
"#;

/// A deliberately tiny per-cell scale so the whole lab is a few dozen processes.
fn lab_scale() -> ExperimentScale {
    ExperimentScale {
        space_size: 400,
        regions: 4,
        players_per_game: 4,
        baseline_budget: 6,
        exhaustive_budget: 24,
        evaluation_runs: 4,
        evaluation_spacing: 600.0,
        tuning_repeats: 1,
    }
}

/// The spec every invocation rebuilds identically — the lab refuses to resume under
/// a different fingerprint.
fn lab_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::single("process-lab", "RandomSearch", 4);
    spec.scale = lab_scale();
    spec.base_seed = 0x9a0c;
    spec
}

fn main() {
    let lab_dir = std::env::var("DG_LAB_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("dg-process-lab-{}", std::process::id()))
        });
    fs::create_dir_all(&lab_dir).expect("create lab directory");
    let script = lab_dir.join("workload.sh");
    fs::write(&script, WORKLOAD_SH).expect("write workload script");

    let spec = lab_spec();
    let campaign = Campaign::new(spec.clone());
    let lab = CampaignLab::open(lab_dir.join("lab"), &spec).expect("open campaign lab");
    let provider = ProcessProvider::new(
        CommandTemplate::new("/bin/sh", [script.display().to_string()]),
        lab_dir.join("jobs"),
    )
    .with_timing(TimingSource::Reported)
    .with_timeout(Duration::from_secs(60));

    let kill_after: Option<usize> = std::env::var("DG_LAB_KILL_AFTER")
        .ok()
        .map(|v| v.parse().expect("DG_LAB_KILL_AFTER must be an integer"));

    println!(
        "=== Real-process campaign lab at {} ===\n",
        lab_dir.display()
    );
    let before = process_launches();
    let outcome = campaign
        .run_lab_session(&lab, &provider, default_workers(), kill_after)
        .expect("lab session");
    let launched = process_launches() - before;
    println!(
        "cells: {} loaded from disk, {} executed this session, {} discarded as corrupt",
        outcome.loaded_cells, outcome.fresh_cells, outcome.discarded_cells
    );
    println!("processes launched: {launched}");

    if std::env::var("DG_LAB_EXPECT_ZERO").is_ok() {
        assert_eq!(
            launched, 0,
            "a resumed complete lab must not launch any process"
        );
        assert_eq!(outcome.fresh_cells, 0, "no cell may be re-executed");
        println!("resume check passed: zero launches, zero re-executed cells");
    }

    match outcome.report {
        Some(report) => {
            let json = report.to_json();
            println!(
                "\nlab complete: {} cells merged into {} bytes of canonical JSON\n",
                report.completed_cells(),
                json.len()
            );
            println!("{}", report.summary_table().render());
            if let Ok(path) = std::env::var("DG_LAB_REPORT") {
                fs::write(&path, &json).expect("write merged report");
                println!("report written to {path}");
            }
        }
        None => {
            let done = outcome.loaded_cells + outcome.fresh_cells;
            println!(
                "\nlab interrupted at {done}/{} cells — rerun with the same DG_LAB_DIR to \
                 resume where it left off",
                lab.scheduled_cells()
            );
        }
    }
}
