//! Compare DarwinGame against the interference-unaware baselines on one workload.
//!
//! This is a miniature of the paper's Fig. 10/11, declared as a campaign: every tuner on
//! the tuner axis tunes the same application in its own noisy cloud cell, the cells run
//! in parallel across the host's cores, and the report aggregates the re-measured mean
//! execution time and variability of every choice.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compare_tuners
//! ```
//!
//! Set `DG_CAMPAIGN_SMOKE=1` to run the CI-sized grid (seconds instead of minutes).

use darwingame::prelude::*;

fn main() {
    let smoke = std::env::var("DG_CAMPAIGN_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");

    let mut spec = CampaignSpec::single("compare-tuners", "DarwinGame", 1);
    spec.tuners = vec![
        "Exhaustive".into(),
        "BLISS".into(),
        "OpenTuner".into(),
        "ActiveHarmony".into(),
        "RandomSearch".into(),
        "DarwinGame".into(),
    ];
    spec.scale = if smoke {
        ExperimentScale::smoke()
    } else {
        ExperimentScale {
            space_size: 20_000,
            regions: 48,
            baseline_budget: 150,
            exhaustive_budget: 2_000,
            evaluation_runs: 50,
            ..ExperimentScale::default_scale()
        }
    };
    spec.base_seed = 100;

    let workload = Workload::scaled(Application::Redis, spec.scale.space_size);
    let oracle_time = OracleTuner::new().optimal_time(&workload, VmType::M5_8xlarge);

    let campaign = Campaign::new(spec);
    let report = campaign.run();

    println!(
        "Tuning {} in a noisy m5.8xlarge cloud ({} campaign cells, {} workers)\n",
        workload.application(),
        report.completed_cells(),
        darwingame::campaign::default_workers(),
    );
    println!("Optimal (dedicated): {oracle_time:.1} s\n");
    println!("{}", report.summary_table().render());
    println!("(lower is better everywhere; 'Optimal' is the dedicated-environment bound)");
    println!("\ncampaign report JSON:\n{}", report.to_json());
}
