//! Compare DarwinGame against the interference-unaware baselines on one workload.
//!
//! This is a miniature of the paper's Fig. 10/11: every tuner tunes the same application
//! in the same noisy cloud, then the chosen configuration is executed repeatedly to
//! measure its real mean execution time and its variability.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compare_tuners
//! ```

use darwingame::prelude::*;
use darwingame::stats::{Column, Table};

fn main() {
    let workload = Workload::scaled(Application::Redis, 20_000);
    let budget = TuningBudget::evaluations(150);
    let vm = VmType::M5_8xlarge;

    let mut table = Table::new(vec![
        Column::left("tuner"),
        Column::right("mean time (s)"),
        Column::right("CoV (%)"),
        Column::right("core-hours"),
    ]);

    // Dedicated-environment optimum (reference lower bound).
    let oracle_time = OracleTuner::new().optimal_time(&workload, vm);
    table.push_row(vec![
        "Optimal (dedicated)".into(),
        format!("{oracle_time:.1}"),
        "-".into(),
        "-".into(),
    ]);

    // Baseline tuners, each in its own cloud environment (same VM type and noise profile,
    // different noise realisations — as different tenants would see).
    let mut baselines: Vec<Box<dyn Tuner>> = vec![
        Box::new(ExhaustiveSearch::new()),
        Box::new(Bliss::new(1)),
        Box::new(OpenTuner::new(2)),
        Box::new(ActiveHarmony::new(3)),
        Box::new(RandomSearch::new(4)),
    ];
    for (i, tuner) in baselines.iter_mut().enumerate() {
        let mut cloud = CloudEnvironment::new(vm, InterferenceProfile::typical(), 100 + i as u64);
        let exhaustive_budget = TuningBudget::evaluations(2_000);
        let outcome = if tuner.name() == "Exhaustive" {
            tuner.tune(&workload, &mut cloud, exhaustive_budget)
        } else {
            tuner.tune(&workload, &mut cloud, budget)
        };
        let runs = cloud.observe_repeated(workload.spec(outcome.chosen), 50, 1800.0);
        table.push_row(vec![
            outcome.tuner.clone(),
            format!("{:.1}", mean(&runs)),
            format!("{:.2}", coefficient_of_variation(&runs)),
            format!("{:.1}", outcome.core_hours),
        ]);
    }

    // DarwinGame.
    let mut cloud = CloudEnvironment::new(vm, InterferenceProfile::typical(), 999);
    let mut config = TournamentConfig::scaled(48, 5);
    config.players_per_game = Some(16);
    let report = DarwinGame::new(config).run(&workload, &mut cloud);
    let runs = cloud.observe_repeated(workload.spec(report.champion), 50, 1800.0);
    table.push_row(vec![
        "DarwinGame".into(),
        format!("{:.1}", mean(&runs)),
        format!("{:.2}", coefficient_of_variation(&runs)),
        format!("{:.1}", report.core_hours),
    ]);

    println!(
        "Tuning {} in a noisy m5.8xlarge cloud\n",
        workload.application()
    );
    println!("{}", table.render());
    println!("(lower is better everywhere; 'Optimal' is the dedicated-environment bound)");
}
