//! Integration tests: the simulated workloads and cloud reproduce the paper's
//! motivation statistics (Sec. 2, Fig. 1–2).

use darwingame::prelude::*;

/// Fig. 1 (left): execution times across random configurations span a wide range and the
/// overwhelming majority of configurations are at least 2x slower than the best.
#[test]
fn execution_time_spread_matches_paper_shape() {
    for app in Application::ALL {
        let workload = Workload::scaled(app, 40_000);
        let mut rng = SimRng::new(1);
        let ids = workload.random_configs(2_000, &mut rng);
        let times: Vec<f64> = ids.iter().map(|id| workload.base_time(*id)).collect();
        let cdf = EmpiricalCdf::from_samples(&times);
        let spread = cdf.max() / cdf.min();
        assert!(
            spread > 2.0,
            "{app}: expected a wide execution-time spread, got {spread:.2}x"
        );
        let oracle = workload.oracle_time(2_000);
        let below_twice_best = cdf.fraction_at_or_below(2.0 * oracle);
        assert!(
            below_twice_best < 0.15,
            "{app}: too many configurations within 2x of the best ({below_twice_best:.3})"
        );
    }
}

/// Fig. 1 (right): the same configuration run repeatedly in the cloud shows substantial
/// run-to-run variation when it is interference-sensitive.
#[test]
fn repeated_cloud_runs_of_a_sensitive_config_vary() {
    let workload = Workload::scaled(Application::Redis, 20_000);
    let cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 2);
    // The dedicated-environment optimum is sensitive by construction.
    let optimum = workload.oracle_index(2_000);
    assert!(workload.sensitivity(optimum) > 0.5);
    let runs = cloud.observe_repeated(workload.spec(optimum), 200, 1_200.0);
    let summary = Summary::from_slice(&runs);
    let max_variation = 100.0 * (summary.max() - summary.min()) / summary.min();
    assert!(
        max_variation > 15.0,
        "a sensitive configuration should vary noticeably across runs, got {max_variation:.1}%"
    );
    assert!(summary.coefficient_of_variation() > 3.0);
}

/// Fig. 2: faster configurations tend to vary more, yet a small population of fast and
/// stable configurations exists.
#[test]
fn cov_scatter_shows_tradeoff_and_sweet_spots() {
    let workload = Workload::scaled(Application::Redis, 40_000);
    let cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 3);
    let mut rng = SimRng::new(4);
    let mut ids = workload.random_configs(300, &mut rng);
    // The fast tail is rare (>93% of configurations sit at 2x the best or worse), so a
    // uniform sample alone may miss it entirely; stratify with the fastest
    // configurations of a second draw so the fast band of the scatter is populated,
    // like the paper's full-space Fig. 2.
    let mut pool = workload.random_configs(3_000, &mut rng);
    pool.sort_by(|a, b| {
        workload
            .base_time(*a)
            .partial_cmp(&workload.base_time(*b))
            .expect("base times are not NaN")
    });
    ids.extend(pool.into_iter().take(40));

    let mut fast_covs = Vec::new();
    let mut slow_covs = Vec::new();
    let oracle = workload.oracle_time(2_000);
    for id in ids {
        let runs = cloud.observe_repeated(workload.spec(id), 60, 1_500.0);
        let mean = darwingame::stats::mean(&runs);
        let cov = coefficient_of_variation(&runs);
        if mean < oracle * 1.9 {
            fast_covs.push(cov);
        } else if mean > oracle * 2.4 {
            slow_covs.push(cov);
        }
    }
    assert!(!fast_covs.is_empty() && !slow_covs.is_empty());
    // Fig. 2's two messages: the fast band contains highly variable configurations
    // (pushing the system to its limits makes them fragile) ...
    let fast_max = fast_covs.iter().copied().fold(0.0_f64, f64::max);
    let slow_mean = darwingame::stats::mean(&slow_covs);
    assert!(
        fast_max > slow_mean,
        "the fast band should contain configurations more variable than the slow average \
         (fast max {fast_max:.2}% vs slow mean {slow_mean:.2}%)"
    );
    // ... and, in the surface itself, the fast half is more interference-sensitive than
    // the slow half on average (the cloud-side measurement adds bucketing noise, so this
    // part of the trend is checked directly on the sensitivity field).
    let mut rng = SimRng::new(9);
    let sample = workload.random_configs(4_000, &mut rng);
    let (mut fast_sens, mut slow_sens) = (Vec::new(), Vec::new());
    for id in sample {
        let normalized = (workload.base_time(id) - oracle)
            / (workload.application().surface_config().worst_time - oracle);
        if normalized < 0.3 {
            fast_sens.push(workload.sensitivity(id));
        } else if normalized > 0.7 {
            slow_sens.push(workload.sensitivity(id));
        }
    }
    assert!(
        darwingame::stats::mean(&fast_sens) > darwingame::stats::mean(&slow_sens),
        "faster configurations should be more interference-sensitive on average"
    );
}

/// The interference signal itself is time-varying, non-negative, and differs between
/// VM classes the way the paper describes (smaller VMs see more noise).
#[test]
fn interference_grows_on_smaller_vms() {
    let workload = Workload::scaled(Application::Redis, 10_000);
    let config = workload.spec(workload.oracle_index(500));
    let small = CloudEnvironment::new(VmType::M5Large, InterferenceProfile::typical(), 5);
    let large = CloudEnvironment::new(VmType::M5_24xlarge, InterferenceProfile::typical(), 5);
    let small_runs = small.observe_repeated(config, 80, 1_500.0);
    let large_runs = large.observe_repeated(config, 80, 1_500.0);
    // Normalise by the VM speed factor so only the interference component differs.
    let small_mean = darwingame::stats::mean(&small_runs) / VmType::M5Large.speed_factor();
    let large_mean = darwingame::stats::mean(&large_runs) / VmType::M5_24xlarge.speed_factor();
    assert!(
        small_mean > large_mean,
        "small VMs should suffer more interference: {small_mean:.1} vs {large_mean:.1}"
    );
}
