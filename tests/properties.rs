//! Property-based tests (proptest) of the core data structures and invariants.

use darwingame::cloudsim::{ColocationOutcome, ExecutionSpec};
use darwingame::prelude::*;
use darwingame::stats::OnlineStats;
use darwingame::workloads::{IndexPartition, Parameter, ParameterSpace};
use proptest::prelude::*;

proptest! {
    /// Mixed-radix encoding: index -> point -> index is the identity for arbitrary
    /// parameter spaces and arbitrary in-range indices.
    #[test]
    fn parameter_space_index_round_trip(
        level_counts in prop::collection::vec(1usize..6, 1..10),
        index_fraction in 0.0f64..1.0,
    ) {
        let parameters: Vec<Parameter> = level_counts
            .iter()
            .enumerate()
            .map(|(i, levels)| Parameter::with_level_count(format!("p{i}"), *levels))
            .collect();
        let space = ParameterSpace::new(parameters);
        let index = ((space.size() - 1) as f64 * index_fraction) as u64;
        let point = space.point_of(index);
        prop_assert_eq!(space.index_of(&point), index);
        // Every coordinate respects its parameter's level count.
        for (level, parameter) in point.iter().zip(space.parameters()) {
            prop_assert!(*level < parameter.level_count());
        }
    }

    /// Partitions cover the whole index space exactly once, and `part_of` inverts
    /// `range` for every element.
    #[test]
    fn index_partition_covers_space(total in 1u64..50_000, parts in 1usize..64) {
        let partition = IndexPartition::new(total, parts);
        let mut covered = 0u64;
        for part in 0..partition.parts() {
            let range = partition.range(part);
            covered += range.end - range.start;
            // Check the boundary elements map back to their part.
            if range.start < range.end {
                prop_assert_eq!(partition.part_of(range.start), part);
                prop_assert_eq!(partition.part_of(range.end - 1), part);
            }
        }
        prop_assert_eq!(covered, total);
    }

    /// Part sizes never differ by more than one configuration.
    #[test]
    fn index_partition_is_balanced(total in 1u64..100_000, parts in 1usize..128) {
        let partition = IndexPartition::new(total, parts);
        let sizes: Vec<u64> = (0..partition.parts()).map(|p| partition.part_size(p)).collect();
        let min = sizes.iter().min().copied().unwrap_or(0);
        let max = sizes.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }

    /// The empirical CDF is monotone non-decreasing and bounded by [0, 1].
    #[test]
    fn empirical_cdf_is_monotone(samples in prop::collection::vec(0.0f64..1_000.0, 1..200)) {
        let cdf = EmpiricalCdf::from_samples(&samples);
        let mut previous = 0.0;
        for i in 0..=100 {
            let value = i as f64 * 10.0;
            let fraction = cdf.fraction_at_or_below(value);
            prop_assert!((0.0..=1.0).contains(&fraction));
            prop_assert!(fraction >= previous);
            previous = fraction;
        }
        prop_assert!((cdf.fraction_at_or_below(1_000.0) - 1.0).abs() < 1e-12);
    }

    /// Streaming statistics agree with batch statistics on arbitrary inputs.
    #[test]
    fn online_stats_match_batch(samples in prop::collection::vec(-1_000.0f64..1_000.0, 2..100)) {
        let mut online = OnlineStats::new();
        for sample in &samples {
            online.push(*sample);
        }
        prop_assert!((online.mean() - darwingame::stats::mean(&samples)).abs() < 1e-6);
        prop_assert!(
            (online.std_dev() - darwingame::stats::std_dev(&samples)).abs() < 1e-6
        );
    }

    /// A co-located game's execution scores are always in [0, 1], the winner always has
    /// score 1, and observed times are never below the dedicated execution time of the
    /// corresponding spec (interference can only slow things down).
    #[test]
    fn game_scores_and_times_are_well_formed(
        base_times in prop::collection::vec(60.0f64..600.0, 2..6),
        sensitivities in prop::collection::vec(0.0f64..1.2, 6),
        seed in 0u64..1_000,
    ) {
        let specs: Vec<ExecutionSpec> = base_times
            .iter()
            .zip(sensitivities.iter())
            .map(|(t, s)| ExecutionSpec::new(*t, *s))
            .collect();
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed);
        let outcome: ColocationOutcome = cloud.run_colocated_to_completion(&specs);
        let scores = outcome.execution_scores();
        prop_assert!(scores.iter().all(|s| (0.0..=1.0 + 1e-9).contains(s)));
        prop_assert!((scores[outcome.winner()] - 1.0).abs() < 1e-9);
        for (spec, observed) in specs.iter().zip(outcome.observed_times()) {
            prop_assert!(*observed >= spec.base_time() * 0.98);
        }
    }

    /// Tournament score bookkeeping: the consistency score is always within (0, 1] once a
    /// game has been played, and is 1 exactly when the player won every game.
    #[test]
    fn consistency_score_is_bounded(ranks in prop::collection::vec(1usize..8, 1..20)) {
        let mut board = darwingame::darwin::ScoreBoard::new();
        for rank in &ranks {
            board.record_game(1.0 / *rank as f64, *rank);
        }
        let consistency = board.consistency_score();
        prop_assert!(consistency > 0.0 && consistency <= 1.0);
        let all_wins = ranks.iter().all(|r| *r == 1);
        prop_assert_eq!((consistency - 1.0).abs() < 1e-12, all_wins);
    }

    /// Synthetic surfaces always produce execution specs inside their configured bounds.
    #[test]
    fn surface_specs_stay_in_bounds(raw_id in 0u64..1_000_000, app_index in 0usize..4) {
        let app = Application::ALL[app_index];
        let workload = Workload::scaled(app, 20_000);
        let id = raw_id % workload.size();
        let spec = workload.spec(id);
        let config = app.surface_config();
        prop_assert!(spec.base_time() >= config.best_time - 1e-9);
        prop_assert!(spec.base_time() <= config.worst_time + 1e-9);
        prop_assert!(spec.sensitivity() >= 0.0 && spec.sensitivity() <= 1.5);
    }
}
