//! End-to-end integration tests: the full tuning pipeline across crates.

use darwingame::prelude::*;

fn small_tournament(seed: u64) -> TournamentConfig {
    let mut config = TournamentConfig::scaled(24, seed);
    config.players_per_game = Some(8);
    config.max_regional_rounds = 4;
    config
}

/// DarwinGame end to end: the champion is a genuinely fast configuration and the whole
/// pipeline (regions → global → playoffs → final) accounts its cost.
#[test]
fn darwin_game_finds_fast_configuration_end_to_end() {
    let workload = Workload::scaled(Application::Redis, 30_000);
    let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 11);
    let report = DarwinGame::new(small_tournament(3)).run(&workload, &mut cloud);

    let champion_time = workload.base_time(report.champion);
    let surface = workload.application().surface_config();
    assert!(
        champion_time < surface.best_time + 0.3 * (surface.worst_time - surface.best_time),
        "champion should sit in the fast tail (got {champion_time:.1}s)"
    );
    assert!(report.core_hours > 0.0);
    assert!(report.wall_clock_seconds > 0.0);
    assert_eq!(report.phases.len(), 3);
    assert!(report.games_played >= report.phases.iter().map(|p| p.games).sum::<usize>());
}

/// DarwinGame's chosen configuration is markedly more stable under interference than the
/// configuration chosen by an interference-unaware baseline with a comparable budget.
#[test]
fn darwin_game_choice_is_more_stable_than_baselines() {
    let workload = Workload::scaled(Application::Redis, 30_000);

    // A tournament with enough regional coverage to surface the rare fast-and-robust
    // configurations (the reduced-scale equivalent of the paper's 10,000 regions).
    // At this scale an individual environment seed can still get unlucky and crown a
    // sensitive champion, so take the median stability over five environments — the
    // typical behaviour is what the paper's claim is about.
    let mut darwin_covs: Vec<f64> = (21..26u64)
        .map(|env_seed| {
            let mut tournament = TournamentConfig::scaled(48, 7);
            tournament.players_per_game = Some(16);
            let mut darwin_cloud =
                CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), env_seed);
            let report = DarwinGame::new(tournament).run(&workload, &mut darwin_cloud);
            let darwin_runs =
                darwin_cloud.observe_repeated(workload.spec(report.champion), 80, 1_800.0);
            coefficient_of_variation(&darwin_runs)
        })
        .collect();
    darwin_covs.sort_by(|a, b| a.partial_cmp(b).expect("CoVs are not NaN"));
    let darwin_cov = darwin_covs[darwin_covs.len() / 2];

    // Average the baseline over a few seeds so the comparison is not hostage to one
    // lucky/unlucky baseline run.
    let mut baseline_covs = Vec::new();
    for seed in 0..3u64 {
        let mut cloud = CloudEnvironment::new(
            VmType::M5_8xlarge,
            InterferenceProfile::typical(),
            100 + seed,
        );
        let outcome =
            OpenTuner::new(seed).tune(&workload, &mut cloud, TuningBudget::evaluations(120));
        let runs = cloud.observe_repeated(workload.spec(outcome.chosen), 80, 1_800.0);
        baseline_covs.push(coefficient_of_variation(&runs));
    }
    let baseline_cov = darwingame::stats::mean(&baseline_covs);
    assert!(
        darwin_cov < baseline_cov,
        "DarwinGame CoV ({darwin_cov:.2}%) should beat the baseline average ({baseline_cov:.2}%)"
    );
    assert!(
        darwin_cov < 6.0,
        "DarwinGame CoV should be small, got {darwin_cov:.2}%"
    );
}

/// Running the regional phase on worker threads is an execution detail: with the same
/// seed, the parallel and serial tournaments must crown the same champion, play the
/// same number of games, and account the same cost (guards the crossbeam chunking in
/// `run_regional_phase`).
#[test]
fn parallel_regions_do_not_change_the_tournament() {
    let workload = Workload::scaled(Application::Redis, 20_000);
    let run = |parallel_regions: bool| {
        let mut config = TournamentConfig::scaled(24, 13);
        config.players_per_game = Some(8);
        config.parallel_regions = parallel_regions;
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 77);
        let report = DarwinGame::new(config).run(&workload, &mut cloud);
        (
            report.champion,
            report.games_played,
            report.core_hours.to_bits(),
            report.wall_clock_seconds.to_bits(),
        )
    };
    assert_eq!(run(false), run(true));
}

/// Every tuner implements the same trait and can be driven interchangeably.
#[test]
fn all_tuners_run_through_the_common_interface() {
    let workload = Workload::scaled(Application::Ffmpeg, 8_000);
    let budget = TuningBudget::evaluations(30);
    let mut tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(RandomSearch::new(1)),
        Box::new(ExhaustiveSearch::new()),
        Box::new(ActiveHarmony::new(2)),
        Box::new(OpenTuner::new(3)),
        Box::new(Bliss::new(4)),
        Box::new(DarwinGame::new(small_tournament(5))),
        Box::new(
            HybridDarwinGame::bliss(6)
                .with_subspaces(4)
                .with_explorations(2),
        ),
    ];
    for tuner in &mut tuners {
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 55);
        let outcome = tuner.tune(&workload, &mut cloud, budget);
        assert!(
            outcome.chosen < workload.size(),
            "{} picked out of range",
            outcome.tuner
        );
        assert!(
            outcome.core_hours > 0.0,
            "{} reported no cost",
            outcome.tuner
        );
        assert!(outcome.believed_time > 0.0);
    }
}

/// Tuning twice with identical seeds is bit-for-bit reproducible, and changing the
/// environment seed changes the observations (the noise is real).
#[test]
fn tuning_is_deterministic_per_seed() {
    let workload = Workload::scaled(Application::Gromacs, 10_000);
    let run = |env_seed: u64| {
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), env_seed);
        DarwinGame::new(small_tournament(9))
            .run(&workload, &mut cloud)
            .champion
    };
    assert_eq!(run(7), run(7));

    let observe = |env_seed: u64| {
        let cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), env_seed);
        cloud.observe_single_at(workload.spec(0), SimTime::from_seconds(500.0), 0)
    };
    assert_ne!(observe(1), observe(2));
}

/// The hybrid integration explores several subspaces and reports an aggregate cost that
/// is bounded by a stand-alone tournament of the same scale per subspace.
#[test]
fn hybrid_explores_subspaces_and_reports_cost() {
    let workload = Workload::scaled(Application::Lammps, 16_000);
    let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 33);
    let mut hybrid = HybridDarwinGame::active_harmony(4)
        .with_subspaces(8)
        .with_explorations(4);
    let outcome = hybrid.tune(&workload, &mut cloud, TuningBudget::default());
    assert_eq!(outcome.history.len(), 4);
    assert!(outcome.core_hours > 0.0);
    assert!(outcome.chosen < workload.size());
}
