//! Golden-seed regression tests.
//!
//! The full tournament pipeline — region partitioning, Swiss regionals, double
//! elimination, barrage playoffs, and every RNG stream feeding them — is pinned here
//! for three fixed seeds at two region counts. Any accidental change to the RNG
//! discipline, the game ordering, or the cost accounting moves at least one of the
//! pinned values and fails this suite loudly; an *intentional* change must regenerate
//! the constants (the tuple layout below is exactly what a regeneration run prints).
//!
//! The values were generated with the committed simulator sources on x86-64
//! Linux/glibc (the CI platform); debug and release builds produce identical results
//! there. The pipeline does call libm transcendentals (`cos`, `ln`, `powf`), which are
//! not guaranteed correctly rounded, so a different platform's libm could shift results
//! by ULPs — if this suite fails on an otherwise unchanged tree on a new platform,
//! regenerate the constants there rather than assuming a regression.

use darwingame::prelude::*;

/// `(regions, seed, champion, games_played, core_hours)` for the pinned configuration
/// under the `Typical` interference profile.
const GOLDEN: [(usize, u64, u64, usize, f64); 6] = [
    (8, 1, 4185, 40, 162.029215441),
    (8, 2, 8126, 40, 138.819437300),
    (8, 3, 4622, 33, 110.176233414),
    (16, 1, 1454, 81, 443.205484864),
    (16, 2, 1030, 71, 256.858537961),
    (16, 3, 193, 65, 247.513955105),
];

/// The same pinned configuration under the `Heavy` profile (environment seeds offset
/// to `2000 + ...` so the two suites never share a noise realisation). Heavier
/// interference changes game lengths, early-termination decisions, and therefore the
/// whole downstream RNG/cost stream — pinning it guards the noise-model half of the
/// pipeline, which the `Typical`-only suite left uncovered.
const GOLDEN_HEAVY: [(usize, u64, u64, usize, f64); 6] = [
    (8, 1, 4185, 42, 203.126625699),
    (8, 2, 8126, 37, 149.274378843),
    (8, 3, 4622, 38, 142.451298294),
    (16, 1, 1454, 71, 379.315587762),
    (16, 2, 1030, 74, 296.270264841),
    (16, 3, 6054, 72, 299.799704432),
];

fn run_pinned_with(
    profile: InterferenceProfile,
    env_base: u64,
    regions: usize,
    seed: u64,
) -> TournamentReport {
    let workload = Workload::scaled(Application::Redis, 10_000);
    let mut config = TournamentConfig::scaled(regions, seed);
    config.players_per_game = Some(8);
    config.max_regional_rounds = 4;
    config.parallel_regions = false;
    let mut cloud = CloudEnvironment::new(
        VmType::M5_8xlarge,
        profile,
        env_base + seed * 10 + regions as u64,
    );
    DarwinGame::new(config).run(&workload, &mut cloud)
}

fn run_pinned(regions: usize, seed: u64) -> TournamentReport {
    run_pinned_with(InterferenceProfile::typical(), 1000, regions, seed)
}

fn run_pinned_heavy(regions: usize, seed: u64) -> TournamentReport {
    run_pinned_with(InterferenceProfile::heavy(), 2000, regions, seed)
}

#[test]
fn tournament_outputs_match_golden_values() {
    for (regions, seed, champion, games, core_hours) in GOLDEN {
        let report = run_pinned(regions, seed);
        let label = format!("regions {regions}, seed {seed}");
        assert_eq!(
            report.champion, champion,
            "{label}: champion drifted — the RNG stream or game ordering changed"
        );
        assert_eq!(
            report.games_played, games,
            "{label}: game count drifted — the tournament structure changed"
        );
        assert!(
            (report.core_hours - core_hours).abs() < 1e-6,
            "{label}: core-hours drifted from {core_hours} to {}",
            report.core_hours
        );
    }
}

#[test]
fn heavy_profile_tournament_outputs_match_golden_values() {
    for (regions, seed, champion, games, core_hours) in GOLDEN_HEAVY {
        let report = run_pinned_heavy(regions, seed);
        let label = format!("heavy profile, regions {regions}, seed {seed}");
        assert_eq!(
            report.champion, champion,
            "{label}: champion drifted — the RNG stream or game ordering changed"
        );
        assert_eq!(
            report.games_played, games,
            "{label}: game count drifted — the tournament structure changed"
        );
        assert!(
            (report.core_hours - core_hours).abs() < 1e-6,
            "{label}: core-hours drifted from {core_hours} to {}",
            report.core_hours
        );
    }
}

#[test]
fn golden_runs_are_reproducible_within_a_process() {
    // The pinned values above also guard against cross-run drift; this guards against
    // hidden global state inside one process (statics, caches keyed on first use).
    let first = run_pinned(8, 1);
    let second = run_pinned(8, 1);
    assert_eq!(first.champion, second.champion);
    assert_eq!(first.games_played, second.games_played);
    assert_eq!(first.core_hours.to_bits(), second.core_hours.to_bits());
}
