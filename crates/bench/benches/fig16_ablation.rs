//! Figure 16 — Ablation study of DarwinGame's tournament structure.
//!
//! Each design element of the tournament is disabled in turn (no regional phase, single
//! regional winner, no Swiss style, no global phase, no double elimination, no barrage,
//! no consistency score, no execution score, only 2-player games, no early termination)
//! and the resulting execution time, variability, and tuning cost are reported as a
//! percentage increase over the full DarwinGame design.
//!
//! Every `(variant, application)` pair is one campaign cell; the whole sweep (11
//! variants × 4 applications) runs through the parallel campaign executor. The variant
//! list is `AblationConfig::paper_variants()`, shared with `examples/ablation_study.rs`.
//!
//! Run with `cargo bench --bench fig16_ablation`.

use darwin_core::AblationConfig;
use dg_campaign::{register_darwin_variant, Campaign, CampaignSpec, CellResult, ExperimentScale};
use dg_stats::{Column, Table};
use dg_tuners::TunerRegistry;
use dg_workloads::Application;

fn find<'a>(report: &'a [CellResult], tuner: &str, app: &str) -> &'a CellResult {
    report
        .iter()
        .find(|c| c.tuner == tuner && c.application == app)
        .expect("every (variant, application) cell completed")
}

fn main() {
    let variants = AblationConfig::paper_variants();

    // The ablation sweep multiplies the tournament count by 11, so it uses a slightly
    // smaller per-tournament scale than the other figures.
    let scale = ExperimentScale {
        space_size: 80_000,
        regions: 128,
        ..ExperimentScale::default_scale()
    };

    let mut spec = CampaignSpec::single("fig16-ablation", "full DarwinGame", 1);
    spec.scale = scale;
    spec.applications = Application::ALL.to_vec();
    spec.base_seed = 505;
    // Paired comparison: each variant sees exactly the noise the full design saw, so
    // the (+%) columns measure the ablation, not a different noise realisation.
    spec.paired_tuners = true;
    spec.tuners = variants.iter().map(|(name, _)| (*name).into()).collect();
    let mut registry = TunerRegistry::new();
    for (name, ablation) in &variants {
        register_darwin_variant(&mut registry, *name, &scale, *ablation);
    }

    println!("=== Figure 16: ablation of DarwinGame's tournament structure ===");
    println!("(percent increase over the full design; positive = worse)\n");

    let report = Campaign::with_registry(spec, registry).run();

    let mut table = Table::new(vec![
        Column::left("application"),
        Column::left("ablation"),
        Column::right("exec time (+%)"),
        Column::right("CoV (+pp)"),
        Column::right("core-hours (+%)"),
    ]);
    for app in Application::ALL {
        let full = find(&report.cells, "full DarwinGame", app.name());
        for (name, _) in variants.iter().skip(1) {
            let ablated = find(&report.cells, name, app.name());
            table.push_row(vec![
                app.name().into(),
                (*name).into(),
                format!(
                    "{:.1}",
                    dg_stats::percent_change(ablated.mean_time, full.mean_time)
                ),
                format!("{:.2}", ablated.cov_percent - full.cov_percent),
                format!(
                    "{:.1}",
                    dg_stats::percent_change(ablated.core_hours, full.core_hours)
                ),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(paper: removing any phase/score hurts execution time or variability; removing");
    println!(" multi-player games or early termination inflates core-hours by >30 %)");
}
