//! Figure 16 — Ablation study of DarwinGame's tournament structure.
//!
//! Each design element of the tournament is disabled in turn (no regional phase, single
//! regional winner, no Swiss style, no global phase, no double elimination, no barrage,
//! no consistency score, no execution score, only 2-player games, no early termination)
//! and the resulting execution time, variability, and tuning cost are reported as a
//! percentage increase over the full DarwinGame design.
//!
//! Run with `cargo bench --bench fig16_ablation`.

use darwin_core::AblationConfig;
use dg_bench::{run_darwin_with_ablation, ExperimentScale};
use dg_stats::{Column, Table};
use dg_workloads::Application;

/// The ablations of Fig. 16, in the paper's order.
fn ablations() -> Vec<(&'static str, AblationConfig)> {
    let full = AblationConfig::full();
    vec![
        (
            "w/o regional",
            AblationConfig {
                regional_phase: false,
                ..full
            },
        ),
        (
            "one-win regional",
            AblationConfig {
                single_regional_winner: true,
                ..full
            },
        ),
        (
            "w/o Swiss",
            AblationConfig {
                swiss_regional: false,
                ..full
            },
        ),
        (
            "w/o global",
            AblationConfig {
                global_phase: false,
                ..full
            },
        ),
        (
            "w/o double eli.",
            AblationConfig {
                double_elimination: false,
                ..full
            },
        ),
        (
            "w/o barrage",
            AblationConfig {
                barrage_playoffs: false,
                ..full
            },
        ),
        (
            "w/o consistency score",
            AblationConfig {
                consistency_score: false,
                ..full
            },
        ),
        (
            "w/o exe. score",
            AblationConfig {
                execution_score: false,
                ..full
            },
        ),
        (
            "all 2-player games",
            AblationConfig {
                multiplayer_games: false,
                ..full
            },
        ),
        (
            "w/o early termination",
            AblationConfig {
                early_termination: false,
                ..full
            },
        ),
    ]
}

fn main() {
    // The ablation sweep multiplies the tournament count by 11, so it uses a slightly
    // smaller per-tournament scale than the other figures.
    let mut scale = ExperimentScale::default_scale();
    scale.regions = 128;
    scale.space_size = 80_000;

    println!("=== Figure 16: ablation of DarwinGame's tournament structure ===");
    println!("(percent increase over the full design; positive = worse)\n");

    let mut table = Table::new(vec![
        Column::left("application"),
        Column::left("ablation"),
        Column::right("exec time (+%)"),
        Column::right("CoV (+pp)"),
        Column::right("core-hours (+%)"),
    ]);

    for app in Application::ALL {
        let full = run_darwin_with_ablation(app, &scale, 5, 505, AblationConfig::full());
        for (name, ablation) in ablations() {
            let ablated = run_darwin_with_ablation(app, &scale, 5, 505, ablation);
            table.push_row(vec![
                app.name().into(),
                name.into(),
                format!(
                    "{:.1}",
                    dg_stats::percent_change(ablated.mean_time, full.mean_time)
                ),
                format!("{:.2}", ablated.cov_percent - full.cov_percent),
                format!(
                    "{:.1}",
                    dg_stats::percent_change(ablated.core_hours, full.core_hours)
                ),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(paper: removing any phase/score hurts execution time or variability; removing");
    println!(" multi-player games or early termination inflates core-hours by >30 %)");
}
