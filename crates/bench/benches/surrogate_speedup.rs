//! Surrogate-model speedup on a grid-heavy sweep (the tentpole's headline number).
//!
//! The claim being verified: a [`SurrogateBackend`] serving confident repeat
//! evaluations from its n-tuple model finds an **equal-or-better champion** than the
//! direct simulator sweep while committing **at least 10x fewer simulator
//! operations**. The workload is the exhaustive-ish sweep tuners like Exhaustive and
//! NTBEA lean on: every sampled configuration evaluated `passes` times under each
//! scenario of the built-in pack, champion = lowest mean observed time. The direct
//! leg pays `passes` simulations per configuration; the surrogate leg pays for the
//! first `min_samples` (which train the model) and serves the rest, so the expected
//! reduction is `passes / min_samples`.
//!
//! Champion *quality* is judged by the workload's true `base_time` of each leg's
//! champion — the ground truth the simulator perturbs — aggregated across the
//! scenario pack.
//!
//! Run with `cargo bench --bench surrogate_speedup`. Set `DG_SURROGATE_SMOKE=1`
//! for the CI-sized sweep and `DG_SURROGATE_OUT=/path/report.json` to write the
//! machine-readable results (the same JSON always goes to stdout).

use dg_cloudsim::{InterferenceProfile, SimTime, VmType};
use dg_exec::json::{push_f64, push_key, push_str_literal};
use dg_exec::{sim_ops, ExecutionBackend, SimBackend, SurrogateBackend, SurrogateConfig};
use dg_scenario::{ScenarioBackend, ScenarioSpec};
use dg_workloads::{Application, ConfigId, Workload};

const VM: VmType = VmType::M5_8xlarge;

/// The tuned gate: two real samples train each configuration, everything after is
/// served. `bins` is set so fine that the low-order tuples are effectively
/// per-configuration too — coarse cross-config blends would otherwise start serving
/// during the very first pass, starving most configurations of any real sample and
/// skewing the champion under time-varying scenarios.
fn surrogate_config() -> SurrogateConfig {
    SurrogateConfig {
        fraction: 1.0,
        min_samples: 2,
        max_rel_std: 0.35,
        bins: 4096,
    }
}

/// Passes start on day boundaries: a nightly sweep, each configuration always
/// evaluated at the same time of day. Without this, a config's position in the pass
/// order correlates with the diurnal phase it is sampled at, and the two legs (which
/// sample each config a different number of times) would face differently-biased
/// objectives.
const DAY: f64 = 86_400.0;

/// One leg: evaluate every configuration `passes` times, pass-major (the order a
/// sweeping tuner issues them), and crown the lowest mean. Returns the champion and
/// the simulator operations the leg committed.
fn sweep(
    mut exec: Box<dyn ExecutionBackend>,
    workload: &Workload,
    configs: &[ConfigId],
    passes: u64,
) -> (ConfigId, u64) {
    let before = sim_ops();
    let mut sums = vec![0.0_f64; configs.len()];
    for _ in 0..passes {
        let day = (exec.clock().as_seconds() / DAY).floor() + 1.0;
        exec.set_clock(SimTime::from_seconds(day * DAY));
        for (slot, id) in configs.iter().enumerate() {
            sums[slot] += exec.run_single(workload.spec(*id)).observed_time;
        }
    }
    let champion = sums
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(slot, _)| configs[slot])
        .expect("at least one configuration");
    (champion, sim_ops() - before)
}

struct ScenarioRow {
    name: String,
    direct_ops: u64,
    surrogate_ops: u64,
    model_evals: u64,
    direct_quality: f64,
    surrogate_quality: f64,
}

fn main() {
    let smoke = std::env::var("DG_SURROGATE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let (config_count, passes) = if smoke {
        (24usize, 24u64)
    } else {
        (96usize, 40u64)
    };

    let workload = Workload::scaled(Application::Redis, 20_000);
    let stride = (workload.size() / config_count as u64).max(1);
    let configs: Vec<ConfigId> = (0..config_count as u64)
        .map(|i| (i * stride) % workload.size())
        .collect();

    let scenarios = ScenarioSpec::pack();
    println!(
        "=== Surrogate speedup: {} configs x {passes} passes x {} scenarios ({}) ===\n",
        configs.len(),
        scenarios.len(),
        if smoke { "smoke" } else { "full" },
    );

    let mut rows: Vec<ScenarioRow> = Vec::with_capacity(scenarios.len());
    for (index, scenario) in scenarios.iter().enumerate() {
        let seed = 0xbead + index as u64;
        let backend = |seed: u64| -> Box<dyn ExecutionBackend> {
            let sim = Box::new(SimBackend::new(VM, InterferenceProfile::typical(), seed));
            if scenario.is_passthrough() {
                sim
            } else {
                Box::new(ScenarioBackend::new(sim, scenario.clone(), seed))
            }
        };

        let (direct_champion, direct_ops) = sweep(backend(seed), &workload, &configs, passes);
        let surrogate = SurrogateBackend::new(backend(seed), surrogate_config());
        let stats = surrogate.stats().clone();
        let (surrogate_champion, surrogate_ops) =
            sweep(Box::new(surrogate), &workload, &configs, passes);

        rows.push(ScenarioRow {
            name: scenario.name.clone(),
            direct_ops,
            surrogate_ops,
            model_evals: stats.model_served(),
            direct_quality: workload.base_time(direct_champion),
            surrogate_quality: workload.base_time(surrogate_champion),
        });
    }

    println!(
        "{:<20} {:>11} {:>13} {:>7} {:>13} {:>15}",
        "scenario", "direct ops", "surrogate ops", "ratio", "direct champ", "surrogate champ"
    );
    for row in &rows {
        println!(
            "{:<20} {:>11} {:>13} {:>6.1}x {:>11.2} s {:>13.2} s",
            row.name,
            row.direct_ops,
            row.surrogate_ops,
            row.direct_ops as f64 / row.surrogate_ops as f64,
            row.direct_quality,
            row.surrogate_quality,
        );
    }

    let direct_total: u64 = rows.iter().map(|r| r.direct_ops).sum();
    let surrogate_total: u64 = rows.iter().map(|r| r.surrogate_ops).sum();
    let ops_ratio = direct_total as f64 / surrogate_total as f64;
    let direct_quality: f64 = rows.iter().map(|r| r.direct_quality).sum();
    let surrogate_quality: f64 = rows.iter().map(|r| r.surrogate_quality).sum();
    let quality_ratio = surrogate_quality / direct_quality;
    println!(
        "\ntotal: {direct_total} direct ops vs {surrogate_total} surrogate ops \
         ({ops_ratio:.1}x fewer), champion quality ratio {quality_ratio:.4} \
         (surrogate/direct, lower is better)"
    );

    // The machine-readable record, to stdout and (optionally) a file.
    let mut json = String::from("{");
    let mut first = true;
    push_key(&mut json, &mut first, "bench");
    push_str_literal(&mut json, "surrogate_speedup");
    push_key(&mut json, &mut first, "mode");
    push_str_literal(&mut json, if smoke { "smoke" } else { "full" });
    push_key(&mut json, &mut first, "configs");
    json.push_str(&config_count.to_string());
    push_key(&mut json, &mut first, "passes");
    json.push_str(&passes.to_string());
    push_key(&mut json, &mut first, "direct_sim_ops");
    json.push_str(&direct_total.to_string());
    push_key(&mut json, &mut first, "surrogate_sim_ops");
    json.push_str(&surrogate_total.to_string());
    push_key(&mut json, &mut first, "sim_ops_ratio");
    push_f64(&mut json, ops_ratio);
    push_key(&mut json, &mut first, "quality_ratio");
    push_f64(&mut json, quality_ratio);
    push_key(&mut json, &mut first, "scenarios");
    json.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push('{');
        let mut first = true;
        push_key(&mut json, &mut first, "scenario");
        push_str_literal(&mut json, &row.name);
        push_key(&mut json, &mut first, "direct_sim_ops");
        json.push_str(&row.direct_ops.to_string());
        push_key(&mut json, &mut first, "surrogate_sim_ops");
        json.push_str(&row.surrogate_ops.to_string());
        push_key(&mut json, &mut first, "model_evals");
        json.push_str(&row.model_evals.to_string());
        push_key(&mut json, &mut first, "direct_champion_base_time");
        push_f64(&mut json, row.direct_quality);
        push_key(&mut json, &mut first, "surrogate_champion_base_time");
        push_f64(&mut json, row.surrogate_quality);
        json.push('}');
    }
    json.push_str("]}");
    println!("\n{json}");
    if let Ok(path) = std::env::var("DG_SURROGATE_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, &json).expect("write surrogate bench report");
            println!("report written to {path}");
        }
    }

    assert!(
        ops_ratio >= 10.0,
        "the surrogate must commit at least 10x fewer sim ops (measured {ops_ratio:.1}x)"
    );
    assert!(
        quality_ratio <= 1.0 + 1e-9,
        "the surrogate's champions must be equal-or-better in aggregate \
         (quality ratio {quality_ratio:.4})"
    );
}
