//! Table 1 — Tunable parameters and search-space sizes per application.
//!
//! Prints, for every evaluated application, the application-level parameters, the shared
//! system-level parameters, and the size of the modelled search space next to the size
//! reported in the paper.
//!
//! Run with `cargo bench --bench table1_search_space`.

use dg_stats::{Column, Table};
use dg_workloads::{Application, Workload, SYSTEM_LEVEL_PARAMETERS};

fn main() {
    println!("=== Table 1: parameters and search-space sizes ===\n");

    let mut table = Table::new(vec![
        Column::left("application"),
        Column::right("app-level params"),
        Column::right("system-level params"),
        Column::right("modelled size"),
        Column::right("paper size"),
        Column::right("ratio"),
    ]);

    for app in Application::ALL {
        let workload = Workload::full(app);
        let modelled = workload.size();
        let paper = app.paper_search_space_size();
        table.push_row(vec![
            app.name().into(),
            format!("{}", app.application_parameters().len()),
            format!("{}", SYSTEM_LEVEL_PARAMETERS.len()),
            format!("{modelled}"),
            format!("{paper}"),
            format!("{:.2}", modelled as f64 / paper as f64),
        ]);
    }
    println!("{}", table.render());

    println!("Application-level parameters:");
    for app in Application::ALL {
        println!(
            "  {:<8} {}",
            app.name(),
            app.application_parameters().join(", ")
        );
    }
    println!(
        "\nSystem-level parameters (shared): {}",
        SYSTEM_LEVEL_PARAMETERS.join(", ")
    );
    println!(
        "\n(The modelled size is the cross product of the level counts assigned to each parameter;"
    );
    println!(" counts are chosen so the total stays at or just below the paper's reported size.)");
}
