//! Figure 2 — Motivation: coefficient of variation versus mean execution time for 250
//! random configurations.
//!
//! The paper's scatter plot shows (a) different configurations have very different
//! sensitivity to interference, (b) faster configurations tend to vary *more*, and (c) a
//! small set of configurations (blue markers) combine low execution time with low
//! variation — the configurations a cloud-aware tuner should find.
//!
//! Run with `cargo bench --bench fig02_cov_scatter`.

use dg_bench::{standard_workload, ExperimentScale};
use dg_cloudsim::{CloudEnvironment, InterferenceProfile, SimRng, VmType};
use dg_stats::{Column, Table};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    let workload = standard_workload(Application::Redis, &scale);
    let cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 202);
    let mut rng = SimRng::new(17);

    let configs = workload.random_configs(250, &mut rng);
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(configs.len());
    for id in &configs {
        let runs = cloud.observe_repeated(workload.spec(*id), 120, 900.0);
        points.push((
            dg_stats::coefficient_of_variation(&runs),
            dg_stats::mean(&runs),
        ));
    }

    println!("=== Figure 2: CoV vs mean execution time (250 random Redis configurations) ===\n");

    // Bucket the scatter by mean execution time and report the average CoV per bucket,
    // which makes the "faster configurations vary more" trend visible in text form.
    let min_mean = points.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
    let max_mean = points.iter().map(|(_, m)| *m).fold(0.0_f64, f64::max);
    let buckets = 6usize;
    let mut table = Table::new(vec![
        Column::right("mean time bucket (s)"),
        Column::right("configs"),
        Column::right("avg CoV (%)"),
        Column::right("max CoV (%)"),
    ]);
    for b in 0..buckets {
        let lo = min_mean + (max_mean - min_mean) * b as f64 / buckets as f64;
        let hi = min_mean + (max_mean - min_mean) * (b + 1) as f64 / buckets as f64;
        let in_bucket: Vec<f64> = points
            .iter()
            .filter(|(_, m)| *m >= lo && (*m < hi || b == buckets - 1))
            .map(|(cov, _)| *cov)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        table.push_row(vec![
            format!("{lo:.0}-{hi:.0}"),
            format!("{}", in_bucket.len()),
            format!("{:.2}", dg_stats::mean(&in_bucket)),
            format!("{:.2}", in_bucket.iter().copied().fold(0.0_f64, f64::max)),
        ]);
    }
    println!("{}", table.render());

    // The "blue markers": configurations that are both fast and stable.
    let fast_threshold = min_mean * 1.35;
    let stable_threshold = 2.0;
    let blue = points
        .iter()
        .filter(|(cov, m)| *m <= fast_threshold && *cov <= stable_threshold)
        .count();
    println!(
        "fast AND stable configurations (mean <= {:.0} s, CoV <= {:.1} %): {} of {} ({:.1} %)",
        fast_threshold,
        stable_threshold,
        blue,
        points.len(),
        100.0 * blue as f64 / points.len() as f64
    );
    println!("(paper: such configurations exist but are rare — they are the tuner's real target)");
}
