//! Figure 15 — DarwinGame's effectiveness across VM classes and sizes.
//!
//! The Redis workload is tuned with DarwinGame on every VM type of the paper's sweep
//! (m5.large … m5.24xlarge, c5.9xlarge, r5.8xlarge, i3.8xlarge), two seeds per VM — a
//! 16-cell campaign. The sweep runs four ways: once on a single worker (the serial
//! loop this bench used to hand-roll), once on all cores, once *sharded* (K ∈ {2, 4}
//! shards run independently, round-tripped through the shard-report JSON wire format,
//! then merged), and once *replayed* from a recorded execution trace (zero simulator
//! operations) — demonstrating the parallel and replay speed-ups and that all reports
//! are byte-identical.
//!
//! Run with `cargo bench --bench fig15_vm_sweep`. Set `DG_FIG15_SMOKE=1` to shrink the
//! grid to a CI-sized smoke sweep (used by the `replay-smoke` CI job).

use dg_campaign::{
    default_workers, Campaign, CampaignReport, CampaignSpec, ExecutionTrace, ShardPlan,
    ShardReport, ShardStrategy,
};
use dg_cloudsim::{fast_path_enabled, set_fast_path, VmType};
use dg_exec::json::{fnv1a, push_f64, push_key, push_str_literal};
use dg_exec::sim_ops;
use dg_stats::{Column, Table};
use dg_tuners::OracleTuner;
use dg_workloads::{Application, Workload};
use std::time::Instant;

fn sweep_spec() -> CampaignSpec {
    // Shared with the `obs_overhead` bench, which gates its overhead measurement on
    // this exact sweep and proves it via the report fingerprint.
    dg_bench::fig15_sweep_spec(std::env::var("DG_FIG15_SMOKE").is_ok())
}

/// Runs the serial sweep `reps` times and keeps the fastest wall-clock (the runs are
/// deterministic, so every repetition must produce the same report). Smoke sweeps
/// finish in tens of milliseconds, where single-shot timings on a busy CI box swing
/// by ±20%; best-of-N makes the batched-vs-legacy ratio a steady-state measurement.
fn timed_serial(campaign: &Campaign, reps: u32) -> (std::time::Duration, CampaignReport) {
    let mut best: Option<(std::time::Duration, CampaignReport)> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let report = campaign.run_with_workers(1);
        let elapsed = start.elapsed();
        match &mut best {
            Some((best_elapsed, best_report)) => {
                assert_eq!(
                    report.to_json(),
                    best_report.to_json(),
                    "repeated serial sweeps must be byte-identical"
                );
                *best_elapsed = (*best_elapsed).min(elapsed);
            }
            None => best = Some((elapsed, report)),
        }
    }
    best.expect("at least one repetition")
}

fn main() {
    let spec = sweep_spec();
    let workload = Workload::scaled(Application::Redis, spec.scale.space_size);
    let campaign = Campaign::new(spec);
    let workers = default_workers();
    let smoke = std::env::var("DG_FIG15_SMOKE").is_ok();
    let reps = 3;

    println!("=== Figure 15: DarwinGame vs Oracle across VM types (Redis) ===\n");
    println!(
        "campaign grid: {} cells (8 VM types x 2 seeds)",
        campaign.spec().grid_size()
    );

    let (serial_elapsed, serial_report) = timed_serial(&campaign, reps);

    let parallel_start = Instant::now();
    let parallel_report = campaign.run_with_workers(workers);
    let parallel_elapsed = parallel_start.elapsed();

    assert_eq!(
        serial_report.to_json(),
        parallel_report.to_json(),
        "1-worker and {workers}-worker campaigns must be byte-identical"
    );
    println!(
        "serial (1 worker):     {:>8.2} s",
        serial_elapsed.as_secs_f64()
    );
    println!(
        "parallel ({workers:>2} workers): {:>8.2} s  ({:.2}x speed-up, byte-identical report)\n",
        parallel_elapsed.as_secs_f64(),
        serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9)
    );

    // The sharded variant: split the same 16-cell grid into K independent shard runs
    // (each round-tripped through the canonical shard-report JSON, the way real shard
    // processes hand results around), merge, and demand byte-identity with the serial
    // report.
    for (shards, strategy) in [
        (2, ShardStrategy::Contiguous),
        (4, ShardStrategy::CostBalanced),
    ] {
        let plan = ShardPlan::new(campaign.spec(), shards, strategy);
        let sharded_start = Instant::now();
        let reports: Vec<ShardReport> = (0..plan.shard_count())
            .map(|shard| {
                let report = campaign.run_shard_with_workers(&plan, shard, workers.max(1));
                ShardReport::from_json(&report.to_json()).expect("canonical round trip")
            })
            .collect();
        let merged = CampaignReport::merge(reports).expect("plan shards merge");
        let sharded_elapsed = sharded_start.elapsed();
        assert_eq!(
            merged.to_json(),
            serial_report.to_json(),
            "{shards}-shard ({strategy}) merged report must be byte-identical to the serial run"
        );
        println!(
            "sharded (K={shards}, {strategy}): {:>8.2} s  (merged report byte-identical)",
            sharded_elapsed.as_secs_f64()
        );
    }
    println!();

    // The replay variant: record the sweep once (trace round-tripped through its
    // canonical JSON wire format, the way a stored artifact travels), then replay it
    // with zero simulator operations and demand byte-identity with the serial report.
    let record_start = Instant::now();
    let (recorded_report, trace) = campaign.record();
    let record_elapsed = record_start.elapsed();
    assert_eq!(
        recorded_report.to_json(),
        serial_report.to_json(),
        "recording must not change the report"
    );
    let trace = ExecutionTrace::from_json(&trace.to_json()).expect("canonical traces round-trip");
    let trace_events = trace.events_total();
    // Single-worker replay runs on this thread, so the thread-local simulator-op
    // counter proves zero resimulation exactly.
    let ops_before = sim_ops();
    let replay_start = Instant::now();
    let replayed_report = campaign
        .replay_with_workers(trace, 1)
        .expect("trace matches its own spec");
    let replay_elapsed = replay_start.elapsed();
    assert_eq!(sim_ops(), ops_before, "replay must not touch the simulator");
    assert_eq!(
        replayed_report.to_json(),
        serial_report.to_json(),
        "replayed report must be byte-identical to the serial run"
    );
    println!(
        "recorded:              {:>8.2} s  ({} trace events)",
        record_elapsed.as_secs_f64(),
        trace_events
    );
    println!(
        "replayed:              {:>8.2} s  ({:.0}x vs recording, 0 simulator ops, byte-identical)\n",
        replay_elapsed.as_secs_f64(),
        record_elapsed.as_secs_f64() / replay_elapsed.as_secs_f64().max(1e-9)
    );

    // The batched-vs-legacy leg: re-run the serial sweep through the legacy scalar
    // stepping loop (same binary, fast path toggled off) and demand a byte-identical
    // report — the fused batch engine is pure speed, zero numbers. Skipped when
    // DG_FORCE_UNBATCHED already pinned the whole sweep above to the legacy path.
    let fast = fast_path_enabled();
    let (unbatched_seconds, batched_speedup) = if fast {
        set_fast_path(false);
        let (legacy_elapsed, legacy_report) = timed_serial(&campaign, reps);
        set_fast_path(true);
        assert_eq!(
            legacy_report.to_json(),
            serial_report.to_json(),
            "the legacy scalar loop must produce a byte-identical campaign report"
        );
        let speedup = legacy_elapsed.as_secs_f64() / serial_elapsed.as_secs_f64().max(1e-9);
        println!(
            "legacy scalar loop:    {:>8.2} s  (fused batch path is {speedup:.2}x faster, byte-identical report)\n",
            legacy_elapsed.as_secs_f64()
        );
        // At smoke scale the fixed per-cell costs the fast path eliminates (workload
        // construction, spec lookups) are a large slice of the sweep, and the fused
        // path clears 2x with margin — that is the CI gate. At full scale the solo
        // evaluation runs dominate and both paths share the same bit-exact stepping
        // physics, so the compounded speedup settles around 1.6–1.7x; the assert
        // there is a regression floor, not the headline.
        let floor = if smoke { 2.0 } else { 1.35 };
        assert!(
            speedup >= floor,
            "the fused batch path must be at least {floor}x faster than the legacy loop \
             (measured {speedup:.2}x)"
        );
        (legacy_elapsed.as_secs_f64(), speedup)
    } else {
        println!("legacy scalar loop:    pinned by DG_FORCE_UNBATCHED (whole sweep ran legacy)\n");
        (serial_elapsed.as_secs_f64(), 0.0)
    };

    let mut table = Table::new(vec![
        Column::left("VM type"),
        Column::right("vCPUs"),
        Column::right("Oracle (s)"),
        Column::right("DarwinGame (s)"),
        Column::right("gap (%)"),
        Column::right("CoV (%)"),
    ]);
    for (group, vm) in parallel_report.groups.iter().zip(VmType::ALL.iter()) {
        let oracle = OracleTuner::new().optimal_time(&workload, *vm);
        table.push_row(vec![
            group.vm.clone(),
            format!("{}", vm.vcpus()),
            format!("{oracle:.1}"),
            format!("{:.1}", group.mean_time),
            format!("{:.1}", dg_stats::percent_change(group.mean_time, oracle)),
            format!("{:.2}", group.mean_cov_percent),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: DarwinGame stays within ~10 % of the Oracle on every VM type, with");
    println!(" CoV below 0.5 %; smaller VMs see more interference, larger ones less)");

    // The machine-readable perf trajectory record (BENCH_fig15.json at the repo root
    // is this, re-emitted in full mode whenever the hot path changes). Every timing is
    // seconds; `campaign_fingerprint` hashes the canonical report JSON so separate
    // processes (e.g. a DG_FORCE_UNBATCHED=1 CI run) can prove they computed the very
    // same campaign.
    let mut json = String::from("{");
    let mut first = true;
    push_key(&mut json, &mut first, "bench");
    push_str_literal(&mut json, "fig15_vm_sweep");
    push_key(&mut json, &mut first, "mode");
    push_str_literal(&mut json, if smoke { "smoke" } else { "full" });
    push_key(&mut json, &mut first, "cells");
    json.push_str(&campaign.spec().grid_size().to_string());
    push_key(&mut json, &mut first, "fast_path");
    json.push_str(if fast { "true" } else { "false" });
    push_key(&mut json, &mut first, "batched_seconds");
    push_f64(&mut json, serial_elapsed.as_secs_f64());
    push_key(&mut json, &mut first, "unbatched_seconds");
    push_f64(&mut json, unbatched_seconds);
    push_key(&mut json, &mut first, "batched_speedup");
    push_f64(&mut json, batched_speedup);
    push_key(&mut json, &mut first, "parallel_workers");
    json.push_str(&workers.to_string());
    push_key(&mut json, &mut first, "parallel_seconds");
    push_f64(&mut json, parallel_elapsed.as_secs_f64());
    push_key(&mut json, &mut first, "record_seconds");
    push_f64(&mut json, record_elapsed.as_secs_f64());
    push_key(&mut json, &mut first, "replay_seconds");
    push_f64(&mut json, replay_elapsed.as_secs_f64());
    push_key(&mut json, &mut first, "trace_events");
    json.push_str(&trace_events.to_string());
    push_key(&mut json, &mut first, "campaign_fingerprint");
    json.push_str(&fnv1a(&serial_report.to_json()).to_string());
    push_key(&mut json, &mut first, "vms");
    json.push('[');
    for (i, (group, vm)) in parallel_report
        .groups
        .iter()
        .zip(VmType::ALL.iter())
        .enumerate()
    {
        if i > 0 {
            json.push(',');
        }
        json.push('{');
        let mut first = true;
        push_key(&mut json, &mut first, "vm");
        push_str_literal(&mut json, &group.vm);
        push_key(&mut json, &mut first, "vcpus");
        json.push_str(&vm.vcpus().to_string());
        push_key(&mut json, &mut first, "oracle_seconds");
        push_f64(&mut json, OracleTuner::new().optimal_time(&workload, *vm));
        push_key(&mut json, &mut first, "darwin_seconds");
        push_f64(&mut json, group.mean_time);
        push_key(&mut json, &mut first, "cov_percent");
        push_f64(&mut json, group.mean_cov_percent);
        json.push('}');
    }
    json.push_str("]}");
    println!("\n{json}");
    // Full runs refresh the pinned repo-root artifact by default; smoke runs only
    // write when CI points them somewhere explicitly, so a quick local smoke never
    // clobbers the committed full-mode trajectory.
    let default_path = if smoke {
        String::new()
    } else {
        // Anchor at the workspace root (cargo runs benches from the package dir).
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig15.json").into()
    };
    let path = std::env::var("DG_FIG15_OUT").unwrap_or(default_path);
    if !path.is_empty() {
        std::fs::write(&path, &json).expect("write fig15 bench report");
        println!("report written to {path}");
    }
}
