//! Figure 15 — DarwinGame's effectiveness across VM classes and sizes.
//!
//! The Redis workload is tuned with DarwinGame on every VM type of the paper's sweep
//! (m5.large … m5.24xlarge, c5.9xlarge, r5.8xlarge, i3.8xlarge), two seeds per VM — a
//! 16-cell campaign. The sweep runs four ways: once on a single worker (the serial
//! loop this bench used to hand-roll), once on all cores, once *sharded* (K ∈ {2, 4}
//! shards run independently, round-tripped through the shard-report JSON wire format,
//! then merged), and once *replayed* from a recorded execution trace (zero simulator
//! operations) — demonstrating the parallel and replay speed-ups and that all reports
//! are byte-identical.
//!
//! Run with `cargo bench --bench fig15_vm_sweep`. Set `DG_FIG15_SMOKE=1` to shrink the
//! grid to a CI-sized smoke sweep (used by the `replay-smoke` CI job).

use dg_campaign::{
    default_workers, Campaign, CampaignReport, CampaignSpec, ExecutionTrace, ExperimentScale,
    ShardPlan, ShardReport, ShardStrategy,
};
use dg_cloudsim::VmType;
use dg_exec::sim_ops;
use dg_stats::{Column, Table};
use dg_tuners::OracleTuner;
use dg_workloads::{Application, Workload};
use std::time::Instant;

fn sweep_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::single("fig15-vm-sweep", "DarwinGame", 2);
    spec.vm_types = VmType::ALL.to_vec();
    spec.scale = if std::env::var("DG_FIG15_SMOKE").is_ok() {
        // CI-sized variant: same grid shape, tiny per-cell work.
        ExperimentScale::smoke()
    } else {
        ExperimentScale {
            space_size: 60_000,
            regions: 96,
            ..ExperimentScale::default_scale()
        }
    };
    spec.base_seed = 80;
    spec
}

fn main() {
    let spec = sweep_spec();
    let workload = Workload::scaled(Application::Redis, spec.scale.space_size);
    let campaign = Campaign::new(spec);
    let workers = default_workers();

    println!("=== Figure 15: DarwinGame vs Oracle across VM types (Redis) ===\n");
    println!(
        "campaign grid: {} cells (8 VM types x 2 seeds)",
        campaign.spec().grid_size()
    );

    let serial_start = Instant::now();
    let serial_report = campaign.run_with_workers(1);
    let serial_elapsed = serial_start.elapsed();

    let parallel_start = Instant::now();
    let parallel_report = campaign.run_with_workers(workers);
    let parallel_elapsed = parallel_start.elapsed();

    assert_eq!(
        serial_report.to_json(),
        parallel_report.to_json(),
        "1-worker and {workers}-worker campaigns must be byte-identical"
    );
    println!(
        "serial (1 worker):     {:>8.2} s",
        serial_elapsed.as_secs_f64()
    );
    println!(
        "parallel ({workers:>2} workers): {:>8.2} s  ({:.2}x speed-up, byte-identical report)\n",
        parallel_elapsed.as_secs_f64(),
        serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9)
    );

    // The sharded variant: split the same 16-cell grid into K independent shard runs
    // (each round-tripped through the canonical shard-report JSON, the way real shard
    // processes hand results around), merge, and demand byte-identity with the serial
    // report.
    for (shards, strategy) in [
        (2, ShardStrategy::Contiguous),
        (4, ShardStrategy::CostBalanced),
    ] {
        let plan = ShardPlan::new(campaign.spec(), shards, strategy);
        let sharded_start = Instant::now();
        let reports: Vec<ShardReport> = (0..plan.shard_count())
            .map(|shard| {
                let report = campaign.run_shard_with_workers(&plan, shard, workers.max(1));
                ShardReport::from_json(&report.to_json()).expect("canonical round trip")
            })
            .collect();
        let merged = CampaignReport::merge(reports).expect("plan shards merge");
        let sharded_elapsed = sharded_start.elapsed();
        assert_eq!(
            merged.to_json(),
            serial_report.to_json(),
            "{shards}-shard ({strategy}) merged report must be byte-identical to the serial run"
        );
        println!(
            "sharded (K={shards}, {strategy}): {:>8.2} s  (merged report byte-identical)",
            sharded_elapsed.as_secs_f64()
        );
    }
    println!();

    // The replay variant: record the sweep once (trace round-tripped through its
    // canonical JSON wire format, the way a stored artifact travels), then replay it
    // with zero simulator operations and demand byte-identity with the serial report.
    let record_start = Instant::now();
    let (recorded_report, trace) = campaign.record();
    let record_elapsed = record_start.elapsed();
    assert_eq!(
        recorded_report.to_json(),
        serial_report.to_json(),
        "recording must not change the report"
    );
    let trace = ExecutionTrace::from_json(&trace.to_json()).expect("canonical traces round-trip");
    let trace_events = trace.events_total();
    // Single-worker replay runs on this thread, so the thread-local simulator-op
    // counter proves zero resimulation exactly.
    let ops_before = sim_ops();
    let replay_start = Instant::now();
    let replayed_report = campaign
        .replay_with_workers(trace, 1)
        .expect("trace matches its own spec");
    let replay_elapsed = replay_start.elapsed();
    assert_eq!(sim_ops(), ops_before, "replay must not touch the simulator");
    assert_eq!(
        replayed_report.to_json(),
        serial_report.to_json(),
        "replayed report must be byte-identical to the serial run"
    );
    println!(
        "recorded:              {:>8.2} s  ({} trace events)",
        record_elapsed.as_secs_f64(),
        trace_events
    );
    println!(
        "replayed:              {:>8.2} s  ({:.0}x vs recording, 0 simulator ops, byte-identical)\n",
        replay_elapsed.as_secs_f64(),
        record_elapsed.as_secs_f64() / replay_elapsed.as_secs_f64().max(1e-9)
    );

    let mut table = Table::new(vec![
        Column::left("VM type"),
        Column::right("vCPUs"),
        Column::right("Oracle (s)"),
        Column::right("DarwinGame (s)"),
        Column::right("gap (%)"),
        Column::right("CoV (%)"),
    ]);
    for (group, vm) in parallel_report.groups.iter().zip(VmType::ALL.iter()) {
        let oracle = OracleTuner::new().optimal_time(&workload, *vm);
        table.push_row(vec![
            group.vm.clone(),
            format!("{}", vm.vcpus()),
            format!("{oracle:.1}"),
            format!("{:.1}", group.mean_time),
            format!("{:.1}", dg_stats::percent_change(group.mean_time, oracle)),
            format!("{:.2}", group.mean_cov_percent),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: DarwinGame stays within ~10 % of the Oracle on every VM type, with");
    println!(" CoV below 0.5 %; smaller VMs see more interference, larger ones less)");
}
