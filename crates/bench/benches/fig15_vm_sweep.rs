//! Figure 15 — DarwinGame's effectiveness across VM classes and sizes.
//!
//! The Redis workload is tuned with DarwinGame on every VM type of the paper's sweep
//! (m5.large … m5.24xlarge, c5.9xlarge, r5.8xlarge, i3.8xlarge). DarwinGame's chosen
//! configuration stays within roughly 10 % of the Oracle everywhere, with a small
//! coefficient of variation — its benefits are not tied to one instance type.
//!
//! Run with `cargo bench --bench fig15_vm_sweep`.

use dg_bench::{oracle_reference, run_darwin_on_vm, standard_workload, ExperimentScale};
use dg_cloudsim::VmType;
use dg_stats::{Column, Table};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    let app = Application::Redis;
    let workload = standard_workload(app, &scale);

    println!("=== Figure 15: DarwinGame vs Oracle across VM types (Redis) ===\n");
    let mut table = Table::new(vec![
        Column::left("VM type"),
        Column::right("vCPUs"),
        Column::right("Oracle (s)"),
        Column::right("DarwinGame (s)"),
        Column::right("gap (%)"),
        Column::right("CoV (%)"),
    ]);

    for (i, vm) in VmType::ALL.iter().enumerate() {
        let vm = *vm;
        let oracle = oracle_reference(&workload, vm);
        let choice = run_darwin_on_vm(app, &scale, 80 + i as u64, 800 + i as u64, vm);
        table.push_row(vec![
            vm.name().into(),
            format!("{}", vm.vcpus()),
            format!("{oracle:.1}"),
            format!("{:.1}", choice.mean_time),
            format!("{:.1}", dg_stats::percent_change(choice.mean_time, oracle)),
            format!("{:.2}", choice.cov_percent),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: DarwinGame stays within ~10 % of the Oracle on every VM type, with");
    println!(" CoV below 0.5 %; smaller VMs see more interference, larger ones less)");
}
