//! Observability overhead gate — `dg-obs` must be free when off and cheap when on.
//!
//! Runs the Figure 15 VM sweep (the pinned perf trajectory's campaign, via
//! [`dg_bench::fig15_sweep_spec`]) twice on one worker:
//!
//! * **disabled** — the gate off, no sinks, no decorator: exactly the configuration
//!   `fig15_vm_sweep` times, so this leg's report fingerprint must equal the one in
//!   the reference `BENCH_fig15.json` (same process shape, same campaign);
//! * **instrumented** — the gate on, a counting sink installed, and every cell's
//!   backend wrapped in [`ObsBackend`] via [`ObsProvider`]: campaign, cell, phase,
//!   round, and game events all constructed and delivered.
//!
//! The gate demands the instrumented report **byte-identical** to the disabled one
//! and the wall-clock overhead **< 2 %** at full scale (best-of-N serial on both
//! legs, so the ratio is a steady-state measurement, not scheduler noise). The
//! smoke sweep finishes in tens of milliseconds with ~2.6× the event density per
//! unit of work, so its bound is a looser **< 10 %** — the pinned claim is the
//! full-scale one. Results land in `BENCH_obs_overhead.json` (pinned at the repo
//! root in full mode).
//!
//! Run with `cargo bench --bench obs_overhead`. `DG_FIG15_SMOKE=1` shrinks to the
//! CI smoke sweep; `DG_OBS_BASELINE=<path>` points the fingerprint cross-check at a
//! specific `BENCH_fig15.json` (CI generates a smoke one first); `DG_OBS_OUT=<path>`
//! overrides the output path.

use dg_campaign::{Campaign, CampaignReport};
use dg_exec::json::{fnv1a, parse, push_f64, push_key, push_str_literal, JsonValue};
use dg_exec::{ObsProvider, SimProvider};
use dg_obs::{install_sink, remove_sink, set_obs_enabled, EventSink, ObsRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An O(1)-per-event sink: the instrumented leg must pay for event construction and
/// delivery, not for a growing buffer.
#[derive(Default)]
struct CountingSink {
    events: AtomicU64,
}

impl EventSink for CountingSink {
    fn record(&self, _record: &ObsRecord) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }
}

/// Best-of-N serial sweep (runs are deterministic; repeats must be byte-identical).
fn timed(campaign: &Campaign, instrumented: bool, reps: u32) -> (f64, CampaignReport) {
    let mut best: Option<(f64, CampaignReport)> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let report = if instrumented {
            let provider = ObsProvider::new(Box::new(SimProvider));
            campaign.run_with_provider(&provider, 1)
        } else {
            campaign.run_with_workers(1)
        };
        let elapsed = start.elapsed().as_secs_f64();
        match &mut best {
            Some((best_elapsed, best_report)) => {
                assert_eq!(
                    report.to_json(),
                    best_report.to_json(),
                    "repeated sweeps must be byte-identical"
                );
                *best_elapsed = best_elapsed.min(elapsed);
            }
            None => best = Some((elapsed, report)),
        }
    }
    best.expect("at least one repetition")
}

/// Pulls `campaign_fingerprint` and `mode` out of a `BENCH_fig15.json` artifact.
fn baseline_fingerprint(path: &str) -> Option<(u64, String)> {
    let text = std::fs::read_to_string(path).ok()?;
    let value = parse(&text).ok()?;
    let JsonValue::Object(fields) = value else {
        return None;
    };
    let mut fingerprint = None;
    let mut mode = None;
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("campaign_fingerprint", JsonValue::Number(token)) => {
                fingerprint = token.parse::<u64>().ok()
            }
            ("mode", JsonValue::Str(s)) => mode = Some(s),
            _ => {}
        }
    }
    Some((fingerprint?, mode?))
}

fn main() {
    let smoke = std::env::var("DG_FIG15_SMOKE").is_ok();
    let spec = dg_bench::fig15_sweep_spec(smoke);
    let campaign = Campaign::new(spec);
    let reps = if smoke { 5 } else { 3 };

    println!("=== dg-obs overhead gate (Fig. 15 sweep, 1 worker) ===\n");

    // Disabled leg first: the gate defaults off, nothing installed — the exact
    // configuration fig15_vm_sweep times for the pinned trajectory.
    set_obs_enabled(false);
    let (disabled_seconds, disabled_report) = timed(&campaign, false, reps);
    let fingerprint = fnv1a(&disabled_report.to_json());
    println!("disabled:     {disabled_seconds:>8.3} s  (fingerprint {fingerprint})");

    // Instrumented leg: gate on, counting sink live, every backend decorated.
    let sink = Arc::new(CountingSink::default());
    set_obs_enabled(true);
    let sink_id = install_sink(sink.clone());
    let (instrumented_seconds, instrumented_report) = timed(&campaign, true, reps);
    remove_sink(sink_id);
    set_obs_enabled(false);
    let events = sink.events.load(Ordering::Relaxed);

    assert_eq!(
        instrumented_report.to_json(),
        disabled_report.to_json(),
        "instrumentation must be invisible in the canonical report"
    );
    let overhead_percent = (instrumented_seconds / disabled_seconds.max(1e-9) - 1.0) * 100.0;
    println!(
        "instrumented: {instrumented_seconds:>8.3} s  ({events} events, {overhead_percent:+.2} % overhead, byte-identical report)"
    );
    // The smoke sweep is ~30 ms with ~2.6× the event density per unit of work, so
    // a flat 2 % bound would trip on fixed per-event costs and timer noise there.
    let max_overhead = if smoke { 10.0 } else { 2.0 };
    assert!(
        overhead_percent < max_overhead,
        "live instrumentation must cost < {max_overhead} % on the fig15 sweep (measured {overhead_percent:+.2} %)"
    );
    assert!(events > 0, "the instrumented leg must actually emit events");

    // Cross-check against the fig15 artifact: same campaign, same report. The
    // reference is DG_OBS_BASELINE when set (CI points it at a freshly generated
    // smoke artifact); full mode falls back to the pinned repo-root file.
    let baseline_path = std::env::var("DG_OBS_BASELINE").unwrap_or_else(|_| {
        if smoke {
            String::new()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig15.json").into()
        }
    });
    if baseline_path.is_empty() {
        println!("baseline:     skipped (no DG_OBS_BASELINE and not in full mode)");
    } else {
        let (base_fingerprint, base_mode) = baseline_fingerprint(&baseline_path)
            .unwrap_or_else(|| panic!("unreadable fig15 baseline at {baseline_path}"));
        assert_eq!(
            base_mode,
            if smoke { "smoke" } else { "full" },
            "the fig15 baseline at {baseline_path} was produced at a different scale"
        );
        assert_eq!(
            fingerprint, base_fingerprint,
            "disabled-mode sweep diverged from the fig15 baseline at {baseline_path}"
        );
        println!("baseline:     fingerprint matches {baseline_path}");
    }

    let mut json = String::from("{");
    let mut first = true;
    push_key(&mut json, &mut first, "bench");
    push_str_literal(&mut json, "obs_overhead");
    push_key(&mut json, &mut first, "mode");
    push_str_literal(&mut json, if smoke { "smoke" } else { "full" });
    push_key(&mut json, &mut first, "cells");
    json.push_str(&campaign.spec().grid_size().to_string());
    push_key(&mut json, &mut first, "disabled_seconds");
    push_f64(&mut json, disabled_seconds);
    push_key(&mut json, &mut first, "instrumented_seconds");
    push_f64(&mut json, instrumented_seconds);
    push_key(&mut json, &mut first, "overhead_percent");
    push_f64(&mut json, overhead_percent);
    push_key(&mut json, &mut first, "events");
    json.push_str(&events.to_string());
    push_key(&mut json, &mut first, "campaign_fingerprint");
    json.push_str(&fingerprint.to_string());
    json.push('}');
    println!("\n{json}");

    // Full runs refresh the pinned repo-root artifact by default; smoke runs only
    // write when CI points them somewhere explicitly.
    let default_path = if smoke {
        String::new()
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs_overhead.json").into()
    };
    let path = std::env::var("DG_OBS_OUT").unwrap_or(default_path);
    if !path.is_empty() {
        std::fs::write(&path, &json).expect("write obs overhead report");
        println!("report written to {path}");
    }
}
