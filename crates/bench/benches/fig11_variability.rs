//! Figure 11 — Coefficient of variation of the chosen configuration across repeated
//! cloud executions.
//!
//! After tuning, the chosen configuration is executed many times in the cloud at
//! different periods; the coefficient of variation of those execution times measures how
//! stable the tuner's choice is under interference. DarwinGame's choice is dramatically
//! more stable than those of the interference-unaware tuners.
//!
//! Run with `cargo bench --bench fig11_variability`.

use dg_bench::{run_baseline, run_darwin, ExperimentScale};
use dg_stats::{Column, Table};
use dg_tuners::{ActiveHarmony, Bliss, ExhaustiveSearch, OpenTuner, Tuner};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    println!("=== Figure 11: CoV of execution time of the chosen configuration ===\n");

    let mut table = Table::new(vec![
        Column::left("application"),
        Column::left("tuner"),
        Column::right("CoV (%)"),
        Column::right("mean time (s)"),
    ]);

    let mut darwin_covs = Vec::new();
    let mut baseline_covs = Vec::new();
    for app in Application::ALL {
        let darwin = run_darwin(app, &scale, 7, 700);
        darwin_covs.push(darwin.cov_percent);
        table.push_row(vec![
            app.name().into(),
            "DarwinGame".into(),
            format!("{:.2}", darwin.cov_percent),
            format!("{:.1}", darwin.mean_time),
        ]);

        let mut baselines: Vec<Box<dyn Tuner>> = vec![
            Box::new(ExhaustiveSearch::new()),
            Box::new(Bliss::new(41)),
            Box::new(OpenTuner::new(42)),
            Box::new(ActiveHarmony::new(43)),
        ];
        for tuner in &mut baselines {
            let choice = run_baseline(tuner.as_mut(), app, &scale, 900, 0.0);
            baseline_covs.push(choice.cov_percent);
            let name = tuner.name().to_string();
            table.push_row(vec![
                app.name().into(),
                name,
                format!("{:.2}", choice.cov_percent),
                format!("{:.1}", choice.mean_time),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "DarwinGame average CoV: {:.2} %   baselines average CoV: {:.2} %",
        dg_stats::mean(&darwin_covs),
        dg_stats::mean(&baseline_covs)
    );
    println!("(paper: DarwinGame 0.46 %, all other solutions above 6 %)");
}
