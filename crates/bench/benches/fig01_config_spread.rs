//! Figure 1 — Motivation: spread of execution times across tuning configurations (left)
//! and run-to-run variation of three fixed configurations in the cloud (right).
//!
//! Left panel: the CDF of execution time over 250 randomly chosen Redis configurations,
//! showing a >3x spread and the vast majority of configurations at least 2x slower than
//! the best. Right panel: 1000 cloud executions of three chosen configurations (A, B, C)
//! showing large run-to-run variation.
//!
//! Run with `cargo bench --bench fig01_config_spread`.

use dg_bench::{standard_workload, ExperimentScale};
use dg_cloudsim::{CloudEnvironment, InterferenceProfile, SimRng, VmType};
use dg_stats::{Column, EmpiricalCdf, Table};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    let workload = standard_workload(Application::Redis, &scale);
    let cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 101);
    let mut rng = SimRng::new(7);

    // ---- Left panel: 250 random configurations, dedicated execution times ----
    let configs = workload.random_configs(250, &mut rng);
    let times: Vec<f64> = configs.iter().map(|id| workload.base_time(*id)).collect();
    let cdf = EmpiricalCdf::from_samples(&times);
    println!("=== Figure 1 (left): CDF of execution time across 250 random configurations ===");
    println!("best observed      : {:.1} s", cdf.min());
    println!("worst observed     : {:.1} s", cdf.max());
    println!("spread (worst/best): {:.2}x", cdf.max() / cdf.min());
    let twice_best = 2.0 * cdf.min();
    println!(
        "configurations >= 2x best: {:.1} % (paper: more than 93 %)",
        100.0 * (1.0 - cdf.fraction_at_or_below(twice_best))
    );
    let mut cdf_table = Table::new(vec![
        Column::right("execution time (s)"),
        Column::right("% of configurations <= t"),
    ]);
    for (value, fraction) in cdf.sampled_points(10) {
        cdf_table.push_row(vec![
            format!("{value:.0}"),
            format!("{:.1}", fraction * 100.0),
        ]);
    }
    println!("\n{}", cdf_table.render());

    // ---- Right panel: repeated cloud executions of three chosen configurations ----
    // A = a fast configuration, B/C = progressively slower ones (mirrors the paper's
    // average execution times of 440 s / 617 s / 678 s).
    let mut sorted = configs.clone();
    sorted.sort_by(|a, b| {
        workload
            .base_time(*a)
            .partial_cmp(&workload.base_time(*b))
            .expect("times are not NaN")
    });
    let selected = [
        ("A", sorted[sorted.len() / 10]),
        ("B", sorted[sorted.len() / 2]),
        ("C", sorted[sorted.len() * 7 / 10]),
    ];
    println!("=== Figure 1 (right): run-to-run variation of configurations A, B, C ===");
    let mut run_table = Table::new(vec![
        Column::left("config"),
        Column::right("mean (s)"),
        Column::right("min (s)"),
        Column::right("max (s)"),
        Column::right("max variation (%)"),
        Column::right("CoV (%)"),
    ]);
    for (label, id) in selected {
        let runs = cloud.observe_repeated(workload.spec(id), 1_000, 600.0);
        let summary = dg_stats::Summary::from_slice(&runs);
        run_table.push_row(vec![
            label.into(),
            format!("{:.1}", summary.mean()),
            format!("{:.1}", summary.min()),
            format!("{:.1}", summary.max()),
            format!(
                "{:.1}",
                100.0 * (summary.max() - summary.min()) / summary.min()
            ),
            format!("{:.1}", summary.coefficient_of_variation()),
        ]);
    }
    println!("{}", run_table.render());
    println!(
        "(paper: execution time of a fixed configuration can vary by up to ~45 % across runs)"
    );
}
