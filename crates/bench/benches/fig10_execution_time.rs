//! Figure 10 — Execution time of the configuration chosen by each tuner, per application.
//!
//! The paper reports, for Redis / GROMACS / FFmpeg / LAMMPS, the execution time of the
//! configuration selected by Optimal (dedicated environment), DarwinGame, Exhaustive
//! search, BLISS, OpenTuner, and ActiveHarmony, with error bars over repeated tuning
//! sessions. DarwinGame lands within a few percent of the optimal configuration while
//! the interference-unaware tuners are tens of percent away, and DarwinGame's outcome is
//! far more repeatable (it picks the same configuration in almost every repeat).
//!
//! Run with `cargo bench --bench fig10_execution_time`.

use dg_bench::{oracle_reference, run_baseline, run_darwin, standard_workload, ExperimentScale};
use dg_stats::{Column, Summary, Table};
use dg_tuners::{ActiveHarmony, Bliss, ExhaustiveSearch, OpenTuner, Tuner};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    println!("=== Figure 10: execution time of the chosen configuration ===");
    println!(
        "scale: {} configurations per app, {} regions, {} repeats per tuner\n",
        scale.space_size, scale.regions, scale.tuning_repeats
    );

    let mut table = Table::new(vec![
        Column::left("application"),
        Column::left("tuner"),
        Column::right("mean time (s)"),
        Column::right("range ± (s)"),
        Column::right("vs optimal (%)"),
        Column::right("distinct picks"),
    ]);

    for app in Application::ALL {
        let workload = standard_workload(app, &scale);
        let oracle = oracle_reference(&workload, dg_cloudsim::VmType::M5_8xlarge);
        table.push_row(vec![
            app.name().into(),
            "Optimal (dedicated)".into(),
            format!("{oracle:.1}"),
            "0.0".into(),
            "0.0".into(),
            "1".into(),
        ]);

        // The same optimal configuration executed in the *cloud*: the fair comparison
        // point for the tuners, since their chosen configurations are also measured in
        // the cloud. The dedicated-environment optimum is interference-sensitive, so its
        // cloud execution time is noticeably higher than its dedicated time.
        let cloud = dg_cloudsim::CloudEnvironment::new(
            dg_cloudsim::VmType::M5_8xlarge,
            dg_cloudsim::InterferenceProfile::typical(),
            999,
        );
        let optimal_cloud_runs = cloud.observe_repeated(
            workload.spec(workload.oracle_index(4_000)),
            scale.evaluation_runs,
            scale.evaluation_spacing,
        );
        let optimal_cloud = dg_stats::Summary::from_slice(&optimal_cloud_runs);
        table.push_row(vec![
            app.name().into(),
            "Optimal (run in cloud)".into(),
            format!("{:.1}", optimal_cloud.mean()),
            format!("{:.1}", optimal_cloud.range_half_width()),
            format!(
                "{:.1}",
                dg_stats::percent_change(optimal_cloud.mean(), oracle)
            ),
            "1".into(),
        ]);

        // DarwinGame, repeated with different seeds (different interference realisations).
        let mut darwin_times = Vec::new();
        let mut darwin_picks = Vec::new();
        for repeat in 0..scale.tuning_repeats {
            let choice = run_darwin(app, &scale, repeat as u64, 1_000 + repeat as u64);
            darwin_times.push(choice.mean_time);
            darwin_picks.push(choice.chosen);
        }
        push_tuner_row(
            &mut table,
            app,
            "DarwinGame",
            &darwin_times,
            &darwin_picks,
            oracle,
        );

        // Baselines (three repeats each to keep the total runtime reasonable).
        let repeats = scale.tuning_repeats.min(3);
        let mut baselines: Vec<Box<dyn Tuner>> = vec![
            Box::new(ExhaustiveSearch::new()),
            Box::new(Bliss::new(11)),
            Box::new(OpenTuner::new(12)),
            Box::new(ActiveHarmony::new(13)),
        ];
        for tuner in &mut baselines {
            let mut times = Vec::new();
            let mut picks = Vec::new();
            for repeat in 0..repeats {
                let choice =
                    run_baseline(tuner.as_mut(), app, &scale, 2_000 + repeat as u64 * 17, 0.0);
                times.push(choice.mean_time);
                picks.push(choice.chosen);
            }
            let name = tuner.name().to_string();
            push_tuner_row(&mut table, app, &name, &times, &picks, oracle);
        }
    }

    println!("{}", table.render());
    println!(
        "(\"range ±\" is half the min-max spread across tuning repeats — the Fig. 10 error bars;"
    );
    println!(
        " \"distinct picks\" reproduces the Sec. 5 stability claim: DarwinGame re-selects the"
    );
    println!(" same configuration across repeats far more often than the baselines.)");
}

fn push_tuner_row(
    table: &mut Table,
    app: Application,
    tuner: &str,
    times: &[f64],
    picks: &[u64],
    oracle: f64,
) {
    let summary = Summary::from_slice(times);
    let mut distinct: Vec<u64> = picks.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    table.push_row(vec![
        app.name().into(),
        tuner.into(),
        format!("{:.1}", summary.mean()),
        format!("{:.1}", summary.range_half_width()),
        format!("{:.1}", dg_stats::percent_change(summary.mean(), oracle)),
        format!("{}/{}", distinct.len(), picks.len()),
    ]);
}
