//! Scenario-engine wrapper overhead (fig15-style leg).
//!
//! The scenario engine promises that wrapping a backend in a pass-through
//! [`ScenarioBackend`] costs effectively nothing: the wrapper adds a handful of float
//! multiplies and a timeline lookup per operation, against thousands of integration
//! steps inside each simulated game. This bench drives the identical operation
//! sequence through a bare `SimBackend` and through a `steady`-wrapped one, asserts
//! the results are bit-identical, and demands the best-of-repeats wall-clock
//! overhead stays under 5 %. A third leg reports the cost of an *active* timeline (`regime-shift`)
//! for context — that one is allowed to change results, so only its time is shown.
//!
//! Run with `cargo bench --bench scenario_overhead`. Set `DG_SCENARIO_SMOKE=1` for
//! the CI-sized workload.

use dg_cloudsim::{ExecutionSpec, InterferenceProfile, VmType};
use dg_exec::json::{push_f64, push_key, push_str_literal};
use dg_exec::{ExecutionBackend, GameRules, SimBackend};
use dg_scenario::{ScenarioBackend, ScenarioSpec};
use std::time::Instant;

const VM: VmType = VmType::M5_8xlarge;

/// One workload unit: a committed 4-player game, a solo run, and three observations —
/// the operation mix campaign cells actually issue.
fn drive(exec: &mut dyn ExecutionBackend, round: u64) -> f64 {
    let specs = [
        ExecutionSpec::new(180.0 + round as f64 % 17.0, 0.6),
        ExecutionSpec::new(220.0, 0.3),
        ExecutionSpec::new(260.0, 0.9),
        ExecutionSpec::new(300.0, 0.1),
    ];
    let play = exec.play_game(&specs, &GameRules::default());
    exec.commit(&play);
    let run = exec.run_single(specs[0]);
    let mut acc: f64 = play.observed_times.iter().sum::<f64>() + run.observed_time;
    acc += exec
        .observe_repeated(specs[1], 3, 900.0)
        .into_iter()
        .sum::<f64>();
    acc
}

/// Total observed seconds plus final accounting, as a bitwise-comparable signature.
fn sweep(mut exec: Box<dyn ExecutionBackend>, rounds: u64) -> (u64, u64, u64) {
    let mut acc = 0.0_f64;
    for round in 0..rounds {
        acc += drive(exec.as_mut(), round);
    }
    (
        acc.to_bits(),
        exec.cost().core_hours().to_bits(),
        exec.clock().as_seconds().to_bits(),
    )
}

fn bare(seed: u64) -> Box<dyn ExecutionBackend> {
    Box::new(SimBackend::new(VM, InterferenceProfile::typical(), seed))
}

fn wrapped(scenario: &ScenarioSpec, seed: u64) -> Box<dyn ExecutionBackend> {
    Box::new(ScenarioBackend::new(bare(seed), scenario.clone(), seed))
}

/// Best-of-repeats: the standard overhead estimator — the minimum is the run least
/// disturbed by the scheduler, and both legs get the same treatment.
fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let smoke = std::env::var("DG_SCENARIO_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    // Each round costs ~70 us; the sweeps must be long enough that per-sweep timer and
    // scheduler noise sits well under the 5% budget being verified.
    let rounds: u64 = if smoke { 1_500 } else { 6_000 };
    let repeats = 7;

    println!("=== Scenario-engine wrapper overhead ({rounds} rounds x {repeats} repeats) ===\n");

    // Warm-up pass, and the correctness gate: steady wrapping must not change a bit.
    let reference = sweep(bare(1), rounds);
    assert_eq!(
        sweep(wrapped(&ScenarioSpec::steady(), 1), rounds),
        reference,
        "steady-wrapped execution must be bit-identical to the bare backend"
    );

    let mut bare_times = Vec::with_capacity(repeats);
    let mut steady_times = Vec::with_capacity(repeats);
    let mut active_times = Vec::with_capacity(repeats);
    let steady = ScenarioSpec::steady();
    let active = ScenarioSpec::by_name("regime-shift").expect("pack scenario");
    for repeat in 0..repeats as u64 {
        let seed = 100 + repeat;
        let start = Instant::now();
        let a = sweep(bare(seed), rounds);
        bare_times.push(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let b = sweep(wrapped(&steady, seed), rounds);
        steady_times.push(start.elapsed().as_secs_f64());
        assert_eq!(
            a, b,
            "steady wrapping must stay bit-identical at every seed"
        );

        let start = Instant::now();
        let _ = sweep(wrapped(&active, seed), rounds);
        active_times.push(start.elapsed().as_secs_f64());
    }

    let bare_best = best(&bare_times);
    let steady_best = best(&steady_times);
    let active_best = best(&active_times);
    let overhead_percent = 100.0 * (steady_best / bare_best - 1.0);

    println!(
        "bare SimBackend:           {:>8.4} s (best of {repeats})",
        bare_best
    );
    println!(
        "steady ScenarioBackend:    {:>8.4} s (best of {repeats}, {overhead_percent:+.2}% vs bare, bit-identical)",
        steady_best
    );
    println!(
        "regime-shift scenario:     {:>8.4} s (best of {repeats}; active timeline, results differ by design)",
        active_best
    );

    assert!(
        overhead_percent < 5.0,
        "pass-through scenario wrapper overhead must stay under 5% (measured {overhead_percent:.2}%)"
    );
    println!("\nwrapper overhead {overhead_percent:+.2}% < 5% budget — OK");

    // Machine-readable record (BENCH_scenario_overhead.json at the repo root is the
    // committed full-mode emission). All times are best-of-repeats seconds.
    let mut json = String::from("{");
    let mut first = true;
    push_key(&mut json, &mut first, "bench");
    push_str_literal(&mut json, "scenario_overhead");
    push_key(&mut json, &mut first, "mode");
    push_str_literal(&mut json, if smoke { "smoke" } else { "full" });
    push_key(&mut json, &mut first, "rounds");
    json.push_str(&rounds.to_string());
    push_key(&mut json, &mut first, "repeats");
    json.push_str(&repeats.to_string());
    push_key(&mut json, &mut first, "bare_seconds");
    push_f64(&mut json, bare_best);
    push_key(&mut json, &mut first, "steady_seconds");
    push_f64(&mut json, steady_best);
    push_key(&mut json, &mut first, "active_seconds");
    push_f64(&mut json, active_best);
    push_key(&mut json, &mut first, "overhead_percent");
    push_f64(&mut json, overhead_percent);
    json.push('}');
    println!("\n{json}");
    let default_path = if smoke {
        String::new()
    } else {
        // Anchor at the workspace root (cargo runs benches from the package dir).
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_scenario_overhead.json"
        )
        .into()
    };
    let path = std::env::var("DG_SCENARIO_OUT").unwrap_or(default_path);
    if !path.is_empty() {
        std::fs::write(&path, &json).expect("write scenario overhead report");
        println!("report written to {path}");
    }
}
