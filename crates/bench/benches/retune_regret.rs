//! Online retuning vs the paper's tune-once protocol: cumulative-regret gauntlet.
//!
//! The claim being verified: over the dynamic scenarios of the retune gauntlet
//! (`regime-shift`, `diurnal`, `bursty-neighbor`, all with sensitivity-coupled load),
//! a [`RetuneLoop`] that monitors its deployment stream and re-tunes on confirmed
//! drift accrues **strictly lower cumulative regret** than the tune-once protocol at
//! exact evaluation parity — the fixed leg of every cell spends up front precisely
//! the evaluations the adaptive leg ended up spending. Under `steady` the monitor
//! must never fire: zero detections, zero retunes, and (because parity makes the two
//! legs run identical tuning sessions) an exact regret tie. The whole sweep runs
//! twice, on 1 worker and on all cores, and the two reports must be byte-identical.
//!
//! Regret is measured against a fixed oracle configuration probed pairwise with the
//! deployed champion at every deployment step, so both legs share a bitwise-equal
//! baseline and the regret difference isolates the champion gap. Negative regret
//! means a leg beat the single-configuration oracle — possible under coupled load,
//! where no one configuration is optimal in every regime.
//!
//! Run with `cargo bench --bench retune_regret`. Set `DG_RETUNE_SMOKE=1` for the
//! CI-sized grid (the strict per-scenario assertion relaxes to the aggregate — a
//! six-seed column is too small a sample to assert cell-level strictness on) and
//! `DG_RETUNE_OUT=/path/report.json` to write the machine-readable results (the
//! same JSON always goes to stdout).

use dg_campaign::RetuneSpec;
use dg_exec::json::{push_f64, push_key, push_str_literal};
use dg_serve::RetuneSweep;

fn gauntlet_spec(smoke: bool) -> RetuneSpec {
    let mut spec = RetuneSpec::gauntlet("retune-regret", if smoke { 6 } else { 12 });
    if smoke {
        spec.space_size = 500;
        spec.policy.initial_budget = 16;
        spec.policy.retune_budget = 4;
        spec.policy.max_retunes = 3;
        spec.policy.deploy_steps = 96;
    }
    spec.base_seed = 0x5e21;
    spec
}

fn main() {
    let smoke = std::env::var("DG_RETUNE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let spec = gauntlet_spec(smoke);
    let sweep = RetuneSweep::new(spec);

    println!(
        "=== Retune regret: {} scenarios x {} seeds ({} cells, <= {} evals/leg, {}) ===\n",
        sweep.spec().scenarios.len(),
        sweep.spec().seeds.len(),
        sweep.spec().grid_size(),
        sweep.spec().fixed_budget(),
        if smoke { "smoke" } else { "full" },
    );

    let serial = sweep.run_with_workers(1);
    let parallel = sweep.run();
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "1-worker and N-worker retune sweeps must be byte-identical"
    );
    let report = parallel;

    println!("{}", report.summary_table());

    let steady = report.scenario("steady").expect("steady column");
    assert_eq!(
        steady.detections, 0,
        "the monitor must never fire under a steady environment"
    );
    assert_eq!(steady.retunes, 0, "steady cells must never spend a retune");
    assert_eq!(
        steady.adaptive_regret.to_bits(),
        steady.fixed_regret.to_bits(),
        "evaluation parity makes undetected cells exact ties"
    );

    let dynamic: Vec<_> = report
        .scenarios
        .iter()
        .filter(|s| s.scenario != "steady")
        .collect();
    let adaptive: f64 = dynamic.iter().map(|s| s.adaptive_regret).sum();
    let fixed: f64 = dynamic.iter().map(|s| s.fixed_regret).sum();
    println!("\ndynamic scenarios: adaptive regret {adaptive:.1} s vs tune-once {fixed:.1} s");
    if smoke {
        assert!(
            adaptive < fixed,
            "adaptive serving must beat tune-once in aggregate \
             (adaptive {adaptive:.1} s vs fixed {fixed:.1} s)"
        );
    } else {
        for summary in &dynamic {
            assert!(
                summary.adaptive_regret < summary.fixed_regret,
                "adaptive regret must be strictly lower under {} \
                 (adaptive {:.1} s vs fixed {:.1} s)",
                summary.scenario,
                summary.adaptive_regret,
                summary.fixed_regret
            );
        }
    }

    // The machine-readable record, to stdout and (optionally) a file.
    let mut json = String::from("{");
    let mut first = true;
    push_key(&mut json, &mut first, "bench");
    push_str_literal(&mut json, "retune_regret");
    push_key(&mut json, &mut first, "mode");
    push_str_literal(&mut json, if smoke { "smoke" } else { "full" });
    push_key(&mut json, &mut first, "spec_fingerprint");
    json.push_str(&sweep.spec().fingerprint().to_string());
    push_key(&mut json, &mut first, "cells");
    json.push_str(&report.cells.len().to_string());
    push_key(&mut json, &mut first, "dynamic_adaptive_regret");
    push_f64(&mut json, adaptive);
    push_key(&mut json, &mut first, "dynamic_fixed_regret");
    push_f64(&mut json, fixed);
    push_key(&mut json, &mut first, "scenarios");
    json.push('[');
    for (i, summary) in report.scenarios.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push('{');
        let mut first = true;
        push_key(&mut json, &mut first, "scenario");
        push_str_literal(&mut json, &summary.scenario);
        push_key(&mut json, &mut first, "cells");
        json.push_str(&summary.cells.to_string());
        push_key(&mut json, &mut first, "adaptive_regret");
        push_f64(&mut json, summary.adaptive_regret);
        push_key(&mut json, &mut first, "fixed_regret");
        push_f64(&mut json, summary.fixed_regret);
        push_key(&mut json, &mut first, "regret_reduction_percent");
        push_f64(&mut json, summary.regret_reduction_percent());
        push_key(&mut json, &mut first, "detections");
        json.push_str(&summary.detections.to_string());
        push_key(&mut json, &mut first, "retunes");
        json.push_str(&summary.retunes.to_string());
        push_key(&mut json, &mut first, "switches");
        json.push_str(&summary.switches.to_string());
        json.push('}');
    }
    json.push_str("]}");
    println!("\n{json}");
    if let Ok(path) = std::env::var("DG_RETUNE_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, &json).expect("write retune bench report");
            println!("report written to {path}");
        }
    }
}
