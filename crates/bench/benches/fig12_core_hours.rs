//! Figure 12 — Core-hours required for tuning, as a percentage of exhaustive search.
//!
//! Exhaustive search is by far the most expensive strategy; every other tuner is
//! reported relative to it. DarwinGame's multi-player games and early termination keep
//! its resource usage at or below the level of the existing tuners.
//!
//! Run with `cargo bench --bench fig12_core_hours`.

use dg_bench::{run_baseline, run_darwin, ExperimentScale};
use dg_stats::{Column, Table};
use dg_tuners::{ActiveHarmony, Bliss, ExhaustiveSearch, OpenTuner, Tuner};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    println!("=== Figure 12: tuning core-hours as % of exhaustive search ===\n");

    let mut table = Table::new(vec![
        Column::left("application"),
        Column::left("tuner"),
        Column::right("core-hours"),
        Column::right("% of exhaustive"),
    ]);

    for app in Application::ALL {
        // Exhaustive reference.
        let mut exhaustive = ExhaustiveSearch::new();
        let exhaustive_choice = run_baseline(&mut exhaustive, app, &scale, 500, 0.0);
        let reference = exhaustive_choice.core_hours;
        table.push_row(vec![
            app.name().into(),
            "Exhaustive".into(),
            format!("{reference:.1}"),
            "100.0".into(),
        ]);

        let darwin = run_darwin(app, &scale, 9, 901);
        table.push_row(vec![
            app.name().into(),
            "DarwinGame".into(),
            format!("{:.1}", darwin.core_hours),
            format!("{:.2}", 100.0 * darwin.core_hours / reference),
        ]);

        let mut baselines: Vec<Box<dyn Tuner>> = vec![
            Box::new(Bliss::new(51)),
            Box::new(OpenTuner::new(52)),
            Box::new(ActiveHarmony::new(53)),
        ];
        for tuner in &mut baselines {
            let choice = run_baseline(tuner.as_mut(), app, &scale, 902, 0.0);
            let name = tuner.name().to_string();
            table.push_row(vec![
                app.name().into(),
                name,
                format!("{:.1}", choice.core_hours),
                format!("{:.2}", 100.0 * choice.core_hours / reference),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(paper: every tuner sits at a few percent of exhaustive search; DarwinGame is");
    println!(" usually the cheapest thanks to multi-player games and early termination)");
}
