//! Figure 13 — Integrating DarwinGame with existing tuners improves their execution time.
//!
//! BLISS and ActiveHarmony are compared with their DarwinGame-integrated counterparts
//! (the outer tuner navigates subspaces; DarwinGame plays a tournament inside each). The
//! paper reports >15 % average improvement in the chosen configuration's execution time.
//!
//! Run with `cargo bench --bench fig13_integration_time`.

use dg_bench::{run_baseline, run_hybrid_active_harmony, run_hybrid_bliss, ExperimentScale};
use dg_stats::{Column, Table};
use dg_tuners::{ActiveHarmony, Bliss};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    println!("=== Figure 13: execution time with and without DarwinGame integration ===\n");

    let mut table = Table::new(vec![
        Column::left("application"),
        Column::left("tuner"),
        Column::right("mean time (s)"),
        Column::right("CoV (%)"),
        Column::right("improvement (%)"),
    ]);

    let mut improvements = Vec::new();
    for app in Application::ALL {
        // BLISS vs BLISS + DarwinGame.
        let bliss = run_baseline(&mut Bliss::new(61), app, &scale, 610, 0.0);
        let bliss_hybrid = run_hybrid_bliss(app, &scale, 61, 611);
        let bliss_improvement =
            100.0 * (bliss.mean_time - bliss_hybrid.mean_time) / bliss.mean_time;
        improvements.push(bliss_improvement);
        table.push_row(vec![
            app.name().into(),
            "BLISS".into(),
            format!("{:.1}", bliss.mean_time),
            format!("{:.2}", bliss.cov_percent),
            "-".into(),
        ]);
        table.push_row(vec![
            app.name().into(),
            "BLISS+DarwinGame".into(),
            format!("{:.1}", bliss_hybrid.mean_time),
            format!("{:.2}", bliss_hybrid.cov_percent),
            format!("{bliss_improvement:.1}"),
        ]);

        // ActiveHarmony vs ActiveHarmony + DarwinGame.
        let harmony = run_baseline(&mut ActiveHarmony::new(62), app, &scale, 620, 0.0);
        let harmony_hybrid = run_hybrid_active_harmony(app, &scale, 62, 621);
        let harmony_improvement =
            100.0 * (harmony.mean_time - harmony_hybrid.mean_time) / harmony.mean_time;
        improvements.push(harmony_improvement);
        table.push_row(vec![
            app.name().into(),
            "ActiveHarmony".into(),
            format!("{:.1}", harmony.mean_time),
            format!("{:.2}", harmony.cov_percent),
            "-".into(),
        ]);
        table.push_row(vec![
            app.name().into(),
            "ActiveHarmony+DarwinGame".into(),
            format!("{:.1}", harmony_hybrid.mean_time),
            format!("{:.2}", harmony_hybrid.cov_percent),
            format!("{harmony_improvement:.1}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "average improvement from integrating DarwinGame: {:.1} % (paper: more than 15 %)",
        dg_stats::mean(&improvements)
    );
}
