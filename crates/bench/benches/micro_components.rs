//! Micro-benchmarks (Criterion) of the implementation's hot paths.
//!
//! These do not reproduce a paper figure; they track the performance of the simulator and
//! tournament building blocks so that regressions in the reproduction's own code are
//! visible: surface evaluation, interference sampling, a single co-located game, the GP
//! surrogate fit used by BLISS, and a small end-to-end tournament.
//!
//! Run with `cargo bench --bench micro_components`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use darwin_core::{play_game, play_games, DarwinGame, GameOptions, TournamentConfig};
use dg_cloudsim::{CloudEnvironment, InterferenceProfile, SimTime, VmType};
use dg_scenario::{ScenarioEvent, ScenarioSpec};
use dg_tuners::GaussianProcess;
use dg_workloads::{Application, PerformanceSurface, Workload};
use std::hint::black_box;

fn bench_surface_evaluation(c: &mut Criterion) {
    let workload = Workload::scaled(Application::Redis, 100_000);
    c.bench_function("surface_spec_lookup", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id = (id + 7919) % workload.size();
            black_box(workload.surface().spec(id))
        })
    });
}

fn bench_interference_sampling(c: &mut Criterion) {
    let model = InterferenceProfile::typical().build(42);
    c.bench_function("interference_level", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 13.7;
            black_box(model.level(SimTime::from_seconds(t)))
        })
    });
    // The memoizing sampler the fused game path uses: bit-identical to the boxed
    // model above, minus the dyn dispatch and the per-epoch rehashing.
    let sampler = InterferenceProfile::typical().sampler(42);
    c.bench_function("interference_sampler_level", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 13.7;
            black_box(sampler.level_at_seconds(t))
        })
    });
}

fn bench_timeline_lookups(c: &mut Criterion) {
    // A timeline with every kind of structure: shifts, storms, a diurnal curve,
    // preemptions, and price steps — the load/price lookups sit on the scenario
    // engine's per-operation hot path.
    let mut spec = ScenarioSpec::new("micro");
    spec.events = vec![
        ScenarioEvent::LoadShift {
            at: 500.0,
            factor: 1.6,
        },
        ScenarioEvent::StormFront {
            start: 0.0,
            period: 400.0,
            chance: 0.5,
            duration: 60.0,
            factor: 1.8,
            windows: 24,
        },
        ScenarioEvent::Diurnal {
            period: 3_600.0,
            amplitude: 0.5,
            phase: 0.3,
        },
        ScenarioEvent::Preemptions {
            start: 0.0,
            mean_interval: 900.0,
            downtime: 30.0,
            count: 8,
        },
        ScenarioEvent::PriceChange {
            at: 1_000.0,
            factor: 0.6,
        },
    ];
    let timeline = spec.timeline(7);
    c.bench_function("timeline_load_factor", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 37.3;
            black_box(timeline.load_factor(t))
        })
    });
    c.bench_function("timeline_price_factor", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 37.3;
            black_box(timeline.price_factor(t))
        })
    });
    c.bench_function("timeline_integrate_load_300s", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 37.3;
            black_box(timeline.integrate_load(t, t + 300.0))
        })
    });
}

fn bench_single_game(c: &mut Criterion) {
    let workload = Workload::scaled(Application::Redis, 50_000);
    let configs: Vec<u64> = (0..16).map(|i| i * (workload.size() / 17)).collect();
    c.bench_function("colocated_game_16_players", |b| {
        b.iter_batched(
            || CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 3),
            |mut cloud| {
                black_box(play_game(
                    &mut cloud,
                    &workload,
                    &configs,
                    GameOptions::default(),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_batched_round(c: &mut Criterion) {
    // One tournament round (four 8-player games) evaluated game by game vs handed to
    // the backend as a single batch: the difference is the per-round win of the
    // batched seam (scratch reuse, hoisted lookups) on top of the fused game engine.
    let workload = Workload::scaled(Application::Redis, 50_000);
    let round: Vec<Vec<u64>> = (0..4)
        .map(|g| {
            (0..8)
                .map(|i| ((g * 8 + i) as u64 * (workload.size() / 33)).min(workload.size() - 1))
                .collect()
        })
        .collect();
    let env = || CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 3);
    c.bench_function("round_4x8_single_games", |b| {
        b.iter_batched(
            env,
            |mut cloud| {
                for configs in &round {
                    black_box(play_game(
                        &mut cloud,
                        &workload,
                        configs,
                        GameOptions::default(),
                    ));
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("round_4x8_batched_games", |b| {
        b.iter_batched(
            env,
            |mut cloud| {
                black_box(play_games(
                    &mut cloud,
                    &workload,
                    &round,
                    GameOptions::default(),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_gp_fit(c: &mut Criterion) {
    let points: Vec<Vec<f64>> = (0..96)
        .map(|i| vec![(i % 10) as f64 / 9.0, (i / 10) as f64 / 9.0])
        .collect();
    let targets: Vec<f64> = points
        .iter()
        .map(|p| 300.0 + 100.0 * (p[0] - p[1]))
        .collect();
    c.bench_function("gp_fit_96_points", |b| {
        b.iter(|| {
            let mut gp = GaussianProcess::new(0.2, 1e-3);
            gp.fit(black_box(&points), black_box(&targets));
            black_box(gp.predict(&[0.5, 0.5]))
        })
    });
}

fn bench_small_tournament(c: &mut Criterion) {
    let workload = Workload::scaled(Application::Redis, 8_000);
    c.bench_function("tournament_16_regions", |b| {
        b.iter_batched(
            || {
                let mut config = TournamentConfig::scaled(16, 1);
                config.players_per_game = Some(8);
                config.parallel_regions = false;
                (
                    DarwinGame::new(config),
                    CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 9),
                )
            },
            |(game, mut cloud)| black_box(game.run(&workload, &mut cloud)),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_surface_evaluation,
        bench_interference_sampling,
        bench_timeline_lookups,
        bench_single_game,
        bench_batched_round,
        bench_gp_fit,
        bench_small_tournament
);
criterion_main!(micro);
