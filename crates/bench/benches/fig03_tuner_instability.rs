//! Figure 3 — Motivation: existing tuners are suboptimal and inconsistent in the cloud.
//!
//! Each existing tuner (Exhaustive, BLISS, OpenTuner, ActiveHarmony) tunes Redis three
//! times, at three different simulated times of day (T1, T2, T3) and therefore under
//! different interference. The chosen configurations differ between sessions and their
//! execution times stay well above the dedicated-environment optimum.
//!
//! Run with `cargo bench --bench fig03_tuner_instability`.

use dg_bench::{oracle_reference, run_baseline, standard_workload, ExperimentScale};
use dg_stats::{Column, Table};
use dg_tuners::{ActiveHarmony, Bliss, ExhaustiveSearch, OpenTuner, Tuner};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    let app = Application::Redis;
    let workload = standard_workload(app, &scale);
    let oracle = oracle_reference(&workload, dg_cloudsim::VmType::M5_8xlarge);

    // Three tuning sessions started 8 simulated hours apart.
    let session_starts = [0.0_f64, 8.0 * 3600.0, 16.0 * 3600.0];

    println!("=== Figure 3: tuning Redis at three different times (T1, T2, T3) ===");
    println!("dedicated-environment optimal: {oracle:.1} s\n");

    let mut table = Table::new(vec![
        Column::left("tuner"),
        Column::right("T1 time (s)"),
        Column::right("T2 time (s)"),
        Column::right("T3 time (s)"),
        Column::right("worst vs optimal (%)"),
        Column::right("distinct configs"),
    ]);
    table.push_row(vec![
        "Optimal".into(),
        format!("{oracle:.1}"),
        format!("{oracle:.1}"),
        format!("{oracle:.1}"),
        "0.0".into(),
        "1/3".into(),
    ]);

    let mut tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(ExhaustiveSearch::new()),
        Box::new(Bliss::new(31)),
        Box::new(OpenTuner::new(32)),
        Box::new(ActiveHarmony::new(33)),
    ];
    for tuner in &mut tuners {
        let mut times = Vec::new();
        let mut picks = Vec::new();
        for (i, start) in session_starts.iter().enumerate() {
            let choice = run_baseline(tuner.as_mut(), app, &scale, 300 + i as u64, *start);
            times.push(choice.mean_time);
            picks.push(choice.chosen);
        }
        let worst = times.iter().copied().fold(0.0_f64, f64::max);
        let mut distinct = picks.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let name = tuner.name().to_string();
        table.push_row(vec![
            name,
            format!("{:.1}", times[0]),
            format!("{:.1}", times[1]),
            format!("{:.1}", times[2]),
            format!("{:.1}", dg_stats::percent_change(worst, oracle)),
            format!("{}/{}", distinct.len(), picks.len()),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: existing tuners end up far from the optimum and pick different");
    println!(" configurations depending on when the tuning happened to run)");
}
