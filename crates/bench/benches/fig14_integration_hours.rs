//! Figure 14 — Integrating DarwinGame with existing tuners reduces their tuning cost.
//!
//! Same experiment as Fig. 13, but reporting the core-hours consumed by tuning, expressed
//! as a percentage of exhaustive search (the Fig. 12 reference).
//!
//! Run with `cargo bench --bench fig14_integration_hours`.

use dg_bench::{run_baseline, run_hybrid_active_harmony, run_hybrid_bliss, ExperimentScale};
use dg_stats::{Column, Table};
use dg_tuners::{ActiveHarmony, Bliss, ExhaustiveSearch};
use dg_workloads::Application;

fn main() {
    let scale = ExperimentScale::default_scale();
    println!("=== Figure 14: tuning core-hours with and without DarwinGame integration ===\n");

    let mut table = Table::new(vec![
        Column::left("application"),
        Column::left("tuner"),
        Column::right("core-hours"),
        Column::right("% of exhaustive"),
    ]);

    for app in Application::ALL {
        let exhaustive = run_baseline(&mut ExhaustiveSearch::new(), app, &scale, 640, 0.0);
        let reference = exhaustive.core_hours;
        let percent = |hours: f64| format!("{:.2}", 100.0 * hours / reference);

        let bliss = run_baseline(&mut Bliss::new(71), app, &scale, 710, 0.0);
        let bliss_hybrid = run_hybrid_bliss(app, &scale, 71, 711);
        let harmony = run_baseline(&mut ActiveHarmony::new(72), app, &scale, 720, 0.0);
        let harmony_hybrid = run_hybrid_active_harmony(app, &scale, 72, 721);

        for (name, hours) in [
            ("BLISS", bliss.core_hours),
            ("BLISS+DarwinGame", bliss_hybrid.core_hours),
            ("ActiveHarmony", harmony.core_hours),
            ("ActiveHarmony+DarwinGame", harmony_hybrid.core_hours),
        ] {
            table.push_row(vec![
                app.name().into(),
                name.into(),
                format!("{hours:.1}"),
                percent(hours),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(paper: the +DarwinGame variants need fewer core-hours than the plain tuners,");
    println!(" thanks to early termination and multi-player games inside each subspace)");
}
