//! Campaign grids shared between bench targets.
//!
//! A bench that gates one measurement against another's pinned artifact must run the
//! *identical* campaign — same name, axes, scale, and seeds — so the two processes
//! can prove it via the report fingerprint. The grids live here instead of being
//! copy-pasted per bench.

use dg_campaign::{CampaignSpec, ExperimentScale};
use dg_cloudsim::VmType;

/// The Figure 15 VM-sweep grid: Redis tuned with DarwinGame on every VM type of the
/// paper's sweep, two seeds per VM — a 16-cell campaign. Used by `fig15_vm_sweep`
/// (the pinned perf trajectory, `BENCH_fig15.json`) and `obs_overhead` (which gates
/// the observability overhead on this exact sweep, proving via the report
/// fingerprint that it measured the same campaign).
pub fn fig15_sweep_spec(smoke: bool) -> CampaignSpec {
    let mut spec = CampaignSpec::single("fig15-vm-sweep", "DarwinGame", 2);
    spec.vm_types = VmType::ALL.to_vec();
    spec.scale = if smoke {
        // CI-sized variant: same grid shape, tiny per-cell work.
        ExperimentScale::smoke()
    } else {
        ExperimentScale {
            space_size: 60_000,
            regions: 96,
            ..ExperimentScale::default_scale()
        }
    };
    spec.base_seed = 80;
    spec
}
