//! Shared harness for the benchmark binaries that regenerate the paper's tables and
//! figures.
//!
//! Every `benches/figXX_*.rs` target uses the helpers here so that all experiments agree
//! on workload scale, tuner budgets, measurement protocol, and output format. The scale
//! is deliberately reduced relative to the paper (see [`ExperimentScale`] and
//! `EXPERIMENTS.md` at the repository root): search spaces of a few hundred thousand
//! points instead of millions, and a few hundred regions instead of 10,000, so that the
//! whole suite finishes in minutes on a laptop while preserving the relative coverage of
//! DarwinGame versus the baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
mod sweeps;

pub use sweeps::fig15_sweep_spec;

pub use harness::{
    darwin_config, evaluate_choice, measure_interference_trace, oracle_reference, run_baseline,
    run_darwin, run_darwin_on_vm, run_darwin_with_ablation, run_hybrid_active_harmony,
    run_hybrid_bliss, standard_workload, EvaluatedChoice,
};
// The scale type moved into `dg-campaign` (campaigns size their cells with it); the
// re-export keeps the long-standing `dg_bench::ExperimentScale` path working.
pub use dg_campaign::ExperimentScale;
