//! The experiment harness shared by every figure/table benchmark.

use darwin_core::{DarwinGame, HybridDarwinGame, TournamentConfig};
use dg_campaign::ExperimentScale;
use dg_cloudsim::{CloudEnvironment, InterferenceProfile, SimTime, VmType};
use dg_tuners::{OracleTuner, Tuner, TuningBudget, TuningOutcome};
use dg_workloads::{Application, ConfigId, Workload};
use serde::{Deserialize, Serialize};

/// The outcome of one tuning session, re-measured the way the paper's figures report it:
/// the chosen configuration is executed repeatedly in the cloud at later times, and its
/// mean execution time and coefficient of variation are recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedChoice {
    /// The tuner that produced the choice.
    pub tuner: String,
    /// The chosen configuration.
    pub chosen: ConfigId,
    /// Mean execution time of the chosen configuration over repeated cloud runs (s).
    pub mean_time: f64,
    /// Coefficient of variation of those runs (%).
    pub cov_percent: f64,
    /// Core-hours spent tuning.
    pub core_hours: f64,
    /// Wall-clock seconds spent tuning.
    pub wall_clock_seconds: f64,
}

/// Builds the standard (reduced-scale) workload for an application.
pub fn standard_workload(app: Application, scale: &ExperimentScale) -> Workload {
    Workload::scaled(app, scale.space_size)
}

/// The dedicated-environment optimum execution time for an application at this scale —
/// the "Optimal" bar of Fig. 3/10/15.
pub fn oracle_reference(workload: &Workload, vm: VmType) -> f64 {
    OracleTuner::new().optimal_time(workload, vm)
}

/// The tournament configuration used by all DarwinGame runs at this scale.
pub fn darwin_config(scale: &ExperimentScale, seed: u64) -> TournamentConfig {
    let mut config = TournamentConfig::scaled(scale.regions, seed);
    config.players_per_game = Some(scale.players_per_game);
    config
}

/// Measures the chosen configuration with repeated later executions in the same cloud.
pub fn evaluate_choice(
    workload: &Workload,
    cloud: &CloudEnvironment,
    outcome: &TuningOutcome,
    scale: &ExperimentScale,
) -> EvaluatedChoice {
    let runs = cloud.observe_repeated(
        workload.spec(outcome.chosen),
        scale.evaluation_runs,
        scale.evaluation_spacing,
    );
    EvaluatedChoice {
        tuner: outcome.tuner.clone(),
        chosen: outcome.chosen,
        mean_time: dg_stats::mean(&runs),
        cov_percent: dg_stats::coefficient_of_variation(&runs),
        core_hours: outcome.core_hours,
        wall_clock_seconds: outcome.wall_clock_seconds,
    }
}

/// Runs one baseline tuner on a fresh cloud environment and evaluates its choice.
///
/// `start_time` lets Fig. 3 tune at different times of day; pass 0 for the default.
pub fn run_baseline(
    tuner: &mut dyn Tuner,
    app: Application,
    scale: &ExperimentScale,
    env_seed: u64,
    start_time: f64,
) -> EvaluatedChoice {
    let workload = standard_workload(app, scale);
    let mut cloud =
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), env_seed);
    if start_time > 0.0 {
        cloud.set_clock(SimTime::from_seconds(start_time));
    }
    let budget = if tuner.name() == "Exhaustive" {
        TuningBudget::evaluations(scale.exhaustive_budget)
    } else {
        TuningBudget::evaluations(scale.baseline_budget)
    };
    let outcome = tuner.tune(&workload, &mut cloud, budget);
    evaluate_choice(&workload, &cloud, &outcome, scale)
}

/// Runs DarwinGame on a fresh cloud environment and evaluates its choice.
pub fn run_darwin(
    app: Application,
    scale: &ExperimentScale,
    tournament_seed: u64,
    env_seed: u64,
) -> EvaluatedChoice {
    run_darwin_on_vm(app, scale, tournament_seed, env_seed, VmType::M5_8xlarge)
}

/// Runs DarwinGame on a specific VM type (Fig. 15).
pub fn run_darwin_on_vm(
    app: Application,
    scale: &ExperimentScale,
    tournament_seed: u64,
    env_seed: u64,
    vm: VmType,
) -> EvaluatedChoice {
    let workload = standard_workload(app, scale);
    let mut cloud = CloudEnvironment::new(vm, InterferenceProfile::typical(), env_seed);
    let mut config = darwin_config(scale, tournament_seed);
    config.players_per_game = Some(scale.players_per_game.min(vm.vcpus()).max(2));
    let report = DarwinGame::new(config).run(&workload, &mut cloud);
    let outcome = report.to_outcome();
    evaluate_choice(&workload, &cloud, &outcome, scale)
}

/// Runs DarwinGame with a modified ablation configuration (Fig. 16).
pub fn run_darwin_with_ablation(
    app: Application,
    scale: &ExperimentScale,
    tournament_seed: u64,
    env_seed: u64,
    ablation: darwin_core::AblationConfig,
) -> EvaluatedChoice {
    let workload = standard_workload(app, scale);
    let mut cloud =
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), env_seed);
    let mut config = darwin_config(scale, tournament_seed);
    config.ablation = ablation;
    let report = DarwinGame::new(config).run(&workload, &mut cloud);
    let outcome = report.to_outcome();
    evaluate_choice(&workload, &cloud, &outcome, scale)
}

/// Runs the BLISS + DarwinGame hybrid (Fig. 13/14).
pub fn run_hybrid_bliss(
    app: Application,
    scale: &ExperimentScale,
    seed: u64,
    env_seed: u64,
) -> EvaluatedChoice {
    let workload = standard_workload(app, scale);
    let mut cloud =
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), env_seed);
    let mut tuner = HybridDarwinGame::bliss(seed)
        .with_subspaces(16)
        .with_explorations(6);
    let outcome = tuner.tune(
        &workload,
        &mut cloud,
        TuningBudget::evaluations(scale.baseline_budget),
    );
    evaluate_choice(&workload, &cloud, &outcome, scale)
}

/// Runs the ActiveHarmony + DarwinGame hybrid (Fig. 13/14).
pub fn run_hybrid_active_harmony(
    app: Application,
    scale: &ExperimentScale,
    seed: u64,
    env_seed: u64,
) -> EvaluatedChoice {
    let workload = standard_workload(app, scale);
    let mut cloud =
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), env_seed);
    let mut tuner = HybridDarwinGame::active_harmony(seed)
        .with_subspaces(16)
        .with_explorations(6);
    let outcome = tuner.tune(
        &workload,
        &mut cloud,
        TuningBudget::evaluations(scale.baseline_budget),
    );
    evaluate_choice(&workload, &cloud, &outcome, scale)
}

/// Samples the ambient interference level of the default cloud profile over a time
/// window; used by the micro-benchmarks and by Fig. 1's right panel.
pub fn measure_interference_trace(seed: u64, samples: usize, spacing: f64) -> Vec<f64> {
    let cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed);
    (0..samples)
        .map(|i| cloud.interference_level(SimTime::from_seconds(i as f64 * spacing)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_tuners::RandomSearch;

    #[test]
    fn smoke_scale_baseline_and_darwin_round_trip() {
        let scale = ExperimentScale::smoke();
        let mut random = RandomSearch::new(1);
        let baseline = run_baseline(&mut random, Application::Redis, &scale, 5, 0.0);
        assert!(baseline.mean_time > 0.0);
        assert!(baseline.core_hours > 0.0);

        let darwin = run_darwin(Application::Redis, &scale, 2, 6);
        assert_eq!(darwin.tuner, "DarwinGame");
        assert!(darwin.mean_time > 0.0);
        assert!(darwin.cov_percent >= 0.0);
    }

    #[test]
    fn oracle_reference_is_lower_bound_for_choices() {
        let scale = ExperimentScale::smoke();
        let workload = standard_workload(Application::Ffmpeg, &scale);
        let oracle = oracle_reference(&workload, VmType::M5_8xlarge);
        let mut random = RandomSearch::new(3);
        let choice = run_baseline(&mut random, Application::Ffmpeg, &scale, 9, 0.0);
        assert!(choice.mean_time >= oracle * 0.98);
    }

    #[test]
    fn interference_trace_is_nonnegative_and_varying() {
        let trace = measure_interference_trace(7, 500, 60.0);
        assert!(trace.iter().all(|v| *v >= 0.0));
        assert!(dg_stats::std_dev(&trace) > 0.0);
    }
}
