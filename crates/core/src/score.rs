//! Execution and consistency scores.
//!
//! Two quantities drive every decision in the tournament:
//!
//! * the **execution score** of a player in one game — the fraction of work it completed
//!   relative to the fastest player when the game ended (Fig. 5), and
//! * the **consistency score** of a player — the average of `1 / rank` over every game
//!   the player has participated in so far (Fig. 7), which rewards configurations whose
//!   good performance is *repeatable* under changing interference.

use serde::{Deserialize, Serialize};

/// Per-player score history across all games played so far.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScoreBoard {
    execution_scores: Vec<f64>,
    ranks: Vec<usize>,
}

impl ScoreBoard {
    /// Creates an empty score board (no games played yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the result of one game: the player's execution score in that game and its
    /// 1-based rank among the game's players.
    ///
    /// # Panics
    ///
    /// Panics if `execution_score` is not within `[0, 1]` or `rank == 0`.
    pub fn record_game(&mut self, execution_score: f64, rank: usize) {
        assert!(
            (0.0..=1.0).contains(&execution_score),
            "execution score must be within [0, 1], got {execution_score}"
        );
        assert!(rank >= 1, "ranks are 1-based");
        self.execution_scores.push(execution_score);
        self.ranks.push(rank);
    }

    /// Number of games recorded.
    pub fn games_played(&self) -> usize {
        self.execution_scores.len()
    }

    /// Execution score of the most recent game, if any.
    pub fn latest_execution_score(&self) -> Option<f64> {
        self.execution_scores.last().copied()
    }

    /// Average execution score over all games (0 when no games were played).
    pub fn average_execution_score(&self) -> f64 {
        if self.execution_scores.is_empty() {
            0.0
        } else {
            self.execution_scores.iter().sum::<f64>() / self.execution_scores.len() as f64
        }
    }

    /// Consistency score: the average of `1 / rank` over all games (0 when no games were
    /// played). A player that always ranks first scores 1.0; one that alternates between
    /// rank 1 and rank 4 scores 0.625.
    pub fn consistency_score(&self) -> f64 {
        if self.ranks.is_empty() {
            0.0
        } else {
            self.ranks.iter().map(|r| 1.0 / *r as f64).sum::<f64>() / self.ranks.len() as f64
        }
    }

    /// Number of games this player has won (rank 1).
    pub fn wins(&self) -> usize {
        self.ranks.iter().filter(|r| **r == 1).count()
    }

    /// True when the player won its most recent `streak` games.
    pub fn winning_streak(&self, streak: usize) -> bool {
        if streak == 0 || self.ranks.len() < streak {
            return false;
        }
        self.ranks.iter().rev().take(streak).all(|r| *r == 1)
    }
}

/// Combines the two score rankings the way the global phase does: players are ranked by
/// execution score and by consistency score separately, and the *sum of the two rank
/// positions* decides the game (lowest sum wins). Either criterion can be disabled to
/// reproduce the Fig. 16 ablations.
///
/// Returns the indices of `players` ordered from best (winner) to worst.
pub fn combined_ranking(
    execution_scores: &[f64],
    consistency_scores: &[f64],
    use_execution: bool,
    use_consistency: bool,
) -> Vec<usize> {
    assert_eq!(
        execution_scores.len(),
        consistency_scores.len(),
        "score slices must have equal length"
    );
    let n = execution_scores.len();
    let exec_rank = rank_descending(execution_scores);
    let cons_rank = rank_descending(consistency_scores);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|i| {
        let mut key = 0usize;
        if use_execution {
            key += exec_rank[*i];
        }
        if use_consistency {
            key += cons_rank[*i];
        }
        if !use_execution && !use_consistency {
            // Degenerate ablation: fall back to execution rank so the result is total.
            key = exec_rank[*i];
        }
        // Ties on the summed rank are broken by player index for determinism.
        key * n + *i
    });
    order
}

/// 1-based ranks of values sorted descending (highest value gets rank 1). Ties are broken
/// by index for determinism.
pub fn rank_descending(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|a, b| {
        values[*b]
            .partial_cmp(&values[*a])
            .expect("scores must not be NaN")
            .then(a.cmp(b))
    });
    let mut ranks = vec![0usize; values.len()];
    for (position, index) in order.iter().enumerate() {
        ranks[*index] = position + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_score_matches_paper_example() {
        // Fig. 7: ranks 1, 4, 1, 3 give (1 + 1/4 + 1 + 1/3) / 4.
        let mut board = ScoreBoard::new();
        for (score, rank) in [(1.0, 1), (0.4, 4), (1.0, 1), (0.6, 3)] {
            board.record_game(score, rank);
        }
        let expected = (1.0 + 0.25 + 1.0 + 1.0 / 3.0) / 4.0;
        assert!((board.consistency_score() - expected).abs() < 1e-12);
        assert_eq!(board.wins(), 2);
    }

    #[test]
    fn empty_board_is_zero() {
        let board = ScoreBoard::new();
        assert_eq!(board.average_execution_score(), 0.0);
        assert_eq!(board.consistency_score(), 0.0);
        assert_eq!(board.games_played(), 0);
        assert!(!board.winning_streak(1));
    }

    #[test]
    fn winning_streak_requires_consecutive_wins() {
        let mut board = ScoreBoard::new();
        board.record_game(1.0, 1);
        board.record_game(0.8, 2);
        board.record_game(1.0, 1);
        assert!(!board.winning_streak(2));
        board.record_game(1.0, 1);
        assert!(board.winning_streak(2));
        assert!(!board.winning_streak(3));
    }

    #[test]
    fn rank_descending_is_one_based_and_tie_stable() {
        let ranks = rank_descending(&[0.5, 0.9, 0.5, 0.1]);
        assert_eq!(ranks, vec![2, 1, 3, 4]);
    }

    #[test]
    fn combined_ranking_sums_both_criteria() {
        // Player 0: best execution, poor consistency. Player 1: decent on both.
        // Player 2: poor on both.
        let execution = [1.0, 0.9, 0.5];
        let consistency = [0.3, 0.9, 0.4];
        let order = combined_ranking(&execution, &consistency, true, true);
        assert_eq!(
            order[0], 1,
            "balanced player should win the combined ranking"
        );
        assert_eq!(order[2], 2);
    }

    #[test]
    fn combined_ranking_respects_ablation_flags() {
        let execution = [1.0, 0.9];
        let consistency = [0.1, 0.9];
        let exec_only = combined_ranking(&execution, &consistency, true, false);
        assert_eq!(exec_only[0], 0);
        let consistency_only = combined_ranking(&execution, &consistency, false, true);
        assert_eq!(consistency_only[0], 1);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_execution_score_rejected() {
        ScoreBoard::new().record_game(1.5, 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_rank_rejected() {
        ScoreBoard::new().record_game(0.5, 0);
    }
}
