//! Tournament players.

use crate::score::ScoreBoard;
use dg_workloads::ConfigId;
use serde::{Deserialize, Serialize};

/// A player in the tournament: one tuning configuration plus its score history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Player {
    config: ConfigId,
    origin_region: Option<usize>,
    scores: ScoreBoard,
}

impl Player {
    /// Creates a player for a configuration, optionally remembering which search-space
    /// region it came from (used by the global phase to build diverse groups).
    pub fn new(config: ConfigId, origin_region: Option<usize>) -> Self {
        Self {
            config,
            origin_region,
            scores: ScoreBoard::new(),
        }
    }

    /// The configuration this player represents.
    pub fn config(&self) -> ConfigId {
        self.config
    }

    /// The search-space region the player was drawn from, if known.
    pub fn origin_region(&self) -> Option<usize> {
        self.origin_region
    }

    /// The player's score history.
    pub fn scores(&self) -> &ScoreBoard {
        &self.scores
    }

    /// Mutable access to the score history (used by the game driver).
    pub fn scores_mut(&mut self) -> &mut ScoreBoard {
        &mut self.scores
    }

    /// Average execution score over all games played.
    pub fn average_execution_score(&self) -> f64 {
        self.scores.average_execution_score()
    }

    /// Consistency score over all games played.
    pub fn consistency_score(&self) -> f64 {
        self.scores.consistency_score()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_player_has_no_history() {
        let player = Player::new(42, Some(3));
        assert_eq!(player.config(), 42);
        assert_eq!(player.origin_region(), Some(3));
        assert_eq!(player.scores().games_played(), 0);
        assert_eq!(player.average_execution_score(), 0.0);
    }

    #[test]
    fn scores_accumulate_through_mutable_access() {
        let mut player = Player::new(7, None);
        player.scores_mut().record_game(1.0, 1);
        player.scores_mut().record_game(0.5, 2);
        assert_eq!(player.scores().games_played(), 2);
        assert!((player.average_execution_score() - 0.75).abs() < 1e-12);
        assert!((player.consistency_score() - 0.75).abs() < 1e-12);
    }
}
