//! Phase II: the global phase, played in double-elimination style.
//!
//! Regional winners are grouped into multi-player games; within each round, groups are
//! built to mix players from different regions (diversity). Group winners stay in the
//! main bracket; everyone else drops into the loser bracket instead of being eliminated.
//! Games are judged by the *sum* of each player's execution-score rank and
//! consistency-score rank, so that only configurations that are both fast and repeatable
//! advance. When the main bracket is small enough, the best players of the loser bracket
//! play one game whose winner receives a wild-card entry into the playoffs.

use crate::config::TournamentConfig;
use crate::game::{play_game, play_games, GameOptions};
use crate::player::Player;
use crate::score::combined_ranking;
use dg_exec::ExecutionBackend;
use dg_obs::{emit_with, ObsEvent};
use dg_workloads::{ConfigId, Workload};
use serde::{Deserialize, Serialize};

/// The result of the global phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalOutcome {
    /// Main-bracket survivors that advance to the playoffs.
    pub finalists: Vec<Player>,
    /// The loser-bracket wild card, if double elimination is enabled and anyone lost.
    pub wildcard: Option<Player>,
    /// Number of games played in this phase.
    pub games_played: usize,
    /// Number of rounds played in the main bracket.
    pub rounds: usize,
}

impl GlobalOutcome {
    /// All players advancing to the playoffs (finalists plus the wild card).
    pub fn playoff_players(&self) -> Vec<Player> {
        let mut players = self.finalists.clone();
        if let Some(wildcard) = &self.wildcard {
            if !players.iter().any(|p| p.config() == wildcard.config()) {
                players.push(wildcard.clone());
            }
        }
        players
    }
}

/// Runs the global phase on the main tuning VM.
pub fn run_global_phase(
    exec: &mut dyn ExecutionBackend,
    workload: &Workload,
    mut players: Vec<Player>,
    config: &TournamentConfig,
) -> GlobalOutcome {
    let players_per_game = config.effective_players_per_game(exec.vm().vcpus());
    let game_options = GameOptions {
        early_termination: config.ablation.early_termination,
        work_done_deviation: config.work_done_deviation,
        min_leader_progress: config.min_leader_progress,
    };

    let mut games_played = 0usize;
    let mut rounds = 0usize;
    let mut loser_bracket: Vec<Player> = Vec::new();

    if !config.ablation.global_phase {
        // Ablation "w/o global": a single game among (up to P of) the regional winners
        // chooses the playoff players directly.
        players.sort_by(|a, b| {
            b.average_execution_score()
                .partial_cmp(&a.average_execution_score())
                .expect("scores are not NaN")
                .then(a.config().cmp(&b.config()))
        });
        players.truncate(players_per_game.max(2));
        if players.len() >= 2 {
            let configs: Vec<ConfigId> = players.iter().map(Player::config).collect();
            let result = play_game(exec, workload, &configs, game_options);
            exec.commit(&result.play);
            games_played += 1;
            for (slot, player) in players.iter_mut().enumerate() {
                player
                    .scores_mut()
                    .record_game(result.execution_scores[slot], result.ranks[slot]);
            }
            let standings = result.standings();
            let keep = config.main_bracket_target.min(standings.len());
            let finalists: Vec<Player> = standings[..keep]
                .iter()
                .map(|i| players[*i].clone())
                .collect();
            return GlobalOutcome {
                finalists,
                wildcard: None,
                games_played,
                rounds: 1,
            };
        }
        return GlobalOutcome {
            finalists: players,
            wildcard: None,
            games_played,
            rounds: 0,
        };
    }

    while players.len() > config.main_bracket_target {
        rounds += 1;
        let groups = build_diverse_groups(&players, players_per_game, config.main_bracket_target);
        let mut winners: Vec<Player> = Vec::with_capacity(groups.len());
        let mut round_outcomes = Vec::with_capacity(groups.len());

        // A round's games are independent (groups are disjoint), so the whole round
        // goes to the backend as one batch: games still execute in group order with
        // identical outcomes, but the backend can hoist per-round work. Deferring the
        // score recording below until after the batch is safe for the same
        // disjointness reason — no group's ranking inputs depend on another group's
        // results from this round.
        let round_games: Vec<Vec<ConfigId>> = groups
            .iter()
            .filter(|group| group.len() > 1)
            .map(|group| group.iter().map(|i| players[*i].config()).collect())
            .collect();
        let results = play_games(exec, workload, &round_games, game_options);
        games_played += results.len();
        emit_with(|| ObsEvent::Round {
            phase: "global".into(),
            round: rounds - 1,
            games: results.len(),
        });
        let mut results = results.into_iter();

        for group in &groups {
            if group.len() == 1 {
                // A lone player advances without playing.
                winners.push(players[group[0]].clone());
                continue;
            }
            let result = results.next().expect("one result per multi-player group");

            // Record scores and decide the group winner by the combined ranking.
            for (slot, player_index) in group.iter().enumerate() {
                players[*player_index]
                    .scores_mut()
                    .record_game(result.execution_scores[slot], result.ranks[slot]);
            }
            let consistency: Vec<f64> = group
                .iter()
                .map(|i| players[*i].consistency_score())
                .collect();
            let order = combined_ranking(
                &result.execution_scores,
                &consistency,
                config.ablation.execution_score,
                config.ablation.consistency_score,
            );
            let winner_slot = order[0];
            winners.push(players[group[winner_slot]].clone());
            for slot in order.into_iter().skip(1) {
                if config.ablation.double_elimination {
                    loser_bracket.push(players[group[slot]].clone());
                }
            }
            round_outcomes.push(result.play);
        }

        // Games within a round run on parallel VMs of the same type.
        exec.commit_parallel(&round_outcomes);

        if winners.len() >= players.len() {
            // No reduction is possible (degenerate small input); stop to guarantee
            // termination.
            players = winners;
            break;
        }
        players = winners;
    }

    // Wild card from the loser bracket.
    let wildcard = if config.ablation.double_elimination && loser_bracket.len() >= 2 {
        loser_bracket.sort_by(|a, b| {
            let score_a = a.average_execution_score() + a.consistency_score();
            let score_b = b.average_execution_score() + b.consistency_score();
            score_b
                .partial_cmp(&score_a)
                .expect("scores are not NaN")
                .then(a.config().cmp(&b.config()))
        });
        loser_bracket.truncate(players_per_game);
        let configs: Vec<ConfigId> = loser_bracket.iter().map(Player::config).collect();
        let result = play_game(exec, workload, &configs, game_options);
        exec.commit(&result.play);
        games_played += 1;
        for (slot, player) in loser_bracket.iter_mut().enumerate() {
            player
                .scores_mut()
                .record_game(result.execution_scores[slot], result.ranks[slot]);
        }
        Some(loser_bracket[result.winner].clone())
    } else if config.ablation.double_elimination {
        loser_bracket.first().cloned()
    } else {
        None
    };

    GlobalOutcome {
        finalists: players,
        wildcard,
        games_played,
        rounds,
    }
}

/// Splits `players` into groups of at most `players_per_game`, mixing origin regions so
/// that configurations from the same part of the search space do not only compete with
/// each other. When few players remain, the number of groups is chosen so the round still
/// narrows the field toward `main_bracket_target`.
fn build_diverse_groups(
    players: &[Player],
    players_per_game: usize,
    main_bracket_target: usize,
) -> Vec<Vec<usize>> {
    let n = players.len();
    let group_count = if n > players_per_game {
        n.div_ceil(players_per_game)
    } else {
        main_bracket_target.min(n / 2).max(1)
    };

    // Sort player indices by origin region, then deal them round-robin across groups so
    // each group mixes regions.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|i| (players[*i].origin_region().unwrap_or(usize::MAX), *i));
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); group_count];
    for (position, player_index) in order.into_iter().enumerate() {
        groups[position % group_count].push(player_index);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    fn setup() -> (Workload, CloudEnvironment, TournamentConfig) {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 23);
        let mut config = TournamentConfig::scaled(16, 7);
        config.players_per_game = Some(8);
        (workload, cloud, config)
    }

    fn players_from_spread(workload: &Workload, count: usize) -> Vec<Player> {
        (0..count)
            .map(|i| {
                let id = (i as u64 * (workload.size() / count as u64)).min(workload.size() - 1);
                Player::new(id, Some(i % 5))
            })
            .collect()
    }

    #[test]
    fn global_phase_narrows_to_main_bracket_target() {
        let (workload, mut cloud, config) = setup();
        let players = players_from_spread(&workload, 24);
        let outcome = run_global_phase(&mut cloud, &workload, players, &config);
        assert!(outcome.finalists.len() <= config.main_bracket_target);
        assert!(!outcome.finalists.is_empty());
        assert!(outcome.games_played >= 1);
        assert!(outcome.rounds >= 1);
    }

    #[test]
    fn double_elimination_produces_a_wildcard() {
        let (workload, mut cloud, config) = setup();
        let players = players_from_spread(&workload, 20);
        let outcome = run_global_phase(&mut cloud, &workload, players, &config);
        assert!(outcome.wildcard.is_some());
        let playoff = outcome.playoff_players();
        assert!(playoff.len() >= outcome.finalists.len());
    }

    #[test]
    fn without_double_elimination_no_wildcard() {
        let (workload, mut cloud, mut config) = setup();
        config.ablation.double_elimination = false;
        let players = players_from_spread(&workload, 20);
        let outcome = run_global_phase(&mut cloud, &workload, players, &config);
        assert!(outcome.wildcard.is_none());
    }

    #[test]
    fn without_global_phase_a_single_game_selects_playoff_players() {
        let (workload, mut cloud, mut config) = setup();
        config.ablation.global_phase = false;
        let players = players_from_spread(&workload, 20);
        let outcome = run_global_phase(&mut cloud, &workload, players, &config);
        assert_eq!(outcome.games_played, 1);
        assert!(outcome.finalists.len() <= config.main_bracket_target);
    }

    #[test]
    fn small_fields_pass_through_without_games() {
        let (workload, mut cloud, config) = setup();
        let players = players_from_spread(&workload, 2);
        let outcome = run_global_phase(&mut cloud, &workload, players, &config);
        assert_eq!(outcome.finalists.len(), 2);
        assert_eq!(outcome.rounds, 0);
    }

    #[test]
    fn groups_mix_origin_regions() {
        let players: Vec<Player> = (0..16)
            .map(|i| Player::new(i as u64, Some(i / 4)))
            .collect();
        let groups = build_diverse_groups(&players, 4, 3);
        assert_eq!(groups.len(), 4);
        for group in &groups {
            let regions: std::collections::BTreeSet<_> = group
                .iter()
                .map(|i| players[*i].origin_region().unwrap())
                .collect();
            assert!(regions.len() >= 2, "groups should span multiple regions");
        }
    }

    #[test]
    fn finalists_carry_score_history() {
        let (workload, mut cloud, config) = setup();
        let players = players_from_spread(&workload, 24);
        let outcome = run_global_phase(&mut cloud, &workload, players, &config);
        for finalist in &outcome.finalists {
            assert!(finalist.scores().games_played() > 0);
        }
    }
}
