//! Tournament reports.

use dg_tuners::{SampleRecord, TuningOutcome};
use dg_workloads::ConfigId;
use serde::{Deserialize, Serialize};

/// Summary of one tournament phase, for logging and the examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name ("regional", "global", "playoffs+final").
    pub name: String,
    /// Number of players entering the phase.
    pub players_in: usize,
    /// Number of players leaving the phase.
    pub players_out: usize,
    /// Number of games played in the phase.
    pub games: usize,
    /// Core-hours consumed by the phase.
    pub core_hours: f64,
}

/// The full result of a DarwinGame tournament.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentReport {
    /// The winning tuning configuration.
    pub champion: ConfigId,
    /// The configuration that lost the final, if a final was played.
    pub runner_up: Option<ConfigId>,
    /// Observed execution time of the champion in the final game (seconds).
    pub champion_observed_time: f64,
    /// Number of regional winners that entered the global phase.
    pub regional_winners: usize,
    /// Total number of games played across all phases.
    pub games_played: usize,
    /// Total core-hours consumed by the tournament.
    pub core_hours: f64,
    /// Total wall-clock seconds of tuning (phases in parallel counted once).
    pub wall_clock_seconds: f64,
    /// Per-phase summaries, in play order.
    pub phases: Vec<PhaseSummary>,
}

impl TournamentReport {
    /// Converts the report into the common [`TuningOutcome`] shape used by every tuner,
    /// so DarwinGame can be compared head-to-head with the baselines.
    pub fn to_outcome(&self) -> TuningOutcome {
        TuningOutcome {
            tuner: "DarwinGame".to_string(),
            chosen: self.champion,
            believed_time: self.champion_observed_time,
            samples: self.games_played,
            core_hours: self.core_hours,
            wall_clock_seconds: self.wall_clock_seconds,
            history: vec![SampleRecord {
                config: self.champion,
                observed_time: self.champion_observed_time,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_converts_to_outcome() {
        let report = TournamentReport {
            champion: 99,
            runner_up: Some(7),
            champion_observed_time: 245.0,
            regional_winners: 12,
            games_played: 40,
            core_hours: 55.0,
            wall_clock_seconds: 4000.0,
            phases: vec![PhaseSummary {
                name: "regional".into(),
                players_in: 320,
                players_out: 12,
                games: 30,
                core_hours: 40.0,
            }],
        };
        let outcome = report.to_outcome();
        assert_eq!(outcome.tuner, "DarwinGame");
        assert_eq!(outcome.chosen, 99);
        assert_eq!(outcome.samples, 40);
        assert_eq!(outcome.core_hours, 55.0);
        assert_eq!(outcome.history.len(), 1);
    }
}
