//! DarwinGame: tournament-based performance tuning for noisy, interference-prone cloud
//! environments.
//!
//! This crate implements the paper's primary contribution. Instead of trusting individual
//! noisy measurements, DarwinGame **co-locates multiple copies of the application with
//! different tuning configurations on the same node** so that all competitors experience
//! the same background interference, and ranks them relatively by the work each completes
//! ("playing games"). Games are organised into a four-phase tournament:
//!
//! 1. **Regional phase** (Swiss style): the search space is divided into regions;
//!    multi-player games with early termination quickly surface each region's most
//!    promising configurations.
//! 2. **Global phase** (double elimination): regional winners are re-tested in diverse
//!    groups and judged on execution *and* consistency scores; losers drop to a loser
//!    bracket instead of being eliminated.
//! 3. **Playoffs** (barrage) and 4. **Final**: two-player games without early termination
//!    decide the champion.
//!
//! The champion is the tuning configuration DarwinGame recommends: fast *and* stable
//! under interference. [`HybridDarwinGame`] additionally integrates the tournament with
//! an existing tuner's outer search loop (BLISS or ActiveHarmony style), one subspace at
//! a time.
//!
//! # Quick example
//!
//! ```
//! use darwin_core::{DarwinGame, TournamentConfig};
//! use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
//! use dg_workloads::{Application, Workload};
//!
//! // Reduced-scale Redis workload and a small tournament so the example runs quickly.
//! let workload = Workload::scaled(Application::Redis, 4_000);
//! let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 7);
//! let mut config = TournamentConfig::scaled(8, 1);
//! config.players_per_game = Some(8);
//!
//! let report = DarwinGame::new(config).run(&workload, &mut cloud);
//! println!("champion: {}", workload.space().describe(report.champion));
//! assert!(report.games_played > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod game;
mod global;
mod hybrid;
mod player;
mod playoffs;
mod regional;
mod report;
mod score;
mod tournament;

pub use config::{AblationConfig, TournamentConfig};
pub use game::{play_game, play_games, GameOptions, GameResult};
pub use global::{run_global_phase, GlobalOutcome};
pub use hybrid::{
    BlissSubspaceStrategy, HarmonySubspaceStrategy, HybridDarwinGame, SubspaceStrategy,
};
pub use player::Player;
pub use playoffs::{run_playoffs, PlayoffOutcome};
pub use regional::{run_region, run_regional_phase, RegionalOutcome};
pub use report::{PhaseSummary, TournamentReport};
pub use score::{combined_ranking, rank_descending, ScoreBoard};
pub use tournament::DarwinGame;
