//! Tournament configuration and ablation switches.

use serde::{Deserialize, Serialize};

/// Which design elements of the tournament are enabled.
///
/// Every switch corresponds to one bar of the Fig. 16 ablation study; the default is the
/// full DarwinGame design. The ablation benchmark drives these flags against the *same*
/// tournament code rather than separate re-implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Play the regional phase at all (`w/o regional` when false: the global phase starts
    /// from one random player per region).
    pub regional_phase: bool,
    /// Promote only a single winner per region (`one-win regional` when true).
    pub single_regional_winner: bool,
    /// Play the regional phase in Swiss style (`w/o Swiss` when false: a single game per
    /// region decides its winners).
    pub swiss_regional: bool,
    /// Play the global phase at all (`w/o global` when false: one game among all regional
    /// winners selects the playoff players).
    pub global_phase: bool,
    /// Keep a loser bracket in the global phase (`w/o double eli.` when false).
    pub double_elimination: bool,
    /// Play the playoffs in barrage style (`w/o barrage` when false: a single game ranks
    /// the playoff players).
    pub barrage_playoffs: bool,
    /// Use the consistency score when ranking global-phase games (`w/o consistency score`
    /// when false).
    pub consistency_score: bool,
    /// Use the execution score when ranking global-phase games (`w/o exe. score` when
    /// false).
    pub execution_score: bool,
    /// Allow more than two players per game in the early phases (`all 2-player games`
    /// when false).
    pub multiplayer_games: bool,
    /// Allow early termination of games (`w/o early termination` when false).
    pub early_termination: bool,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            regional_phase: true,
            single_regional_winner: false,
            swiss_regional: true,
            global_phase: true,
            double_elimination: true,
            barrage_playoffs: true,
            consistency_score: true,
            execution_score: true,
            multiplayer_games: true,
            early_termination: true,
        }
    }
}

impl AblationConfig {
    /// The full DarwinGame design.
    pub fn full() -> Self {
        Self::default()
    }

    /// The full design followed by the ten single-element ablations of Fig. 16, each
    /// with its display name, in the paper's order. The single source of truth for the
    /// ablation example and the Fig. 16 bench, so the two can never drift apart.
    pub fn paper_variants() -> Vec<(&'static str, AblationConfig)> {
        let full = Self::full();
        vec![
            ("full DarwinGame", full),
            (
                "w/o regional",
                AblationConfig {
                    regional_phase: false,
                    ..full
                },
            ),
            (
                "one-win regional",
                AblationConfig {
                    single_regional_winner: true,
                    ..full
                },
            ),
            (
                "w/o Swiss",
                AblationConfig {
                    swiss_regional: false,
                    ..full
                },
            ),
            (
                "w/o global",
                AblationConfig {
                    global_phase: false,
                    ..full
                },
            ),
            (
                "w/o double elimination",
                AblationConfig {
                    double_elimination: false,
                    ..full
                },
            ),
            (
                "w/o barrage",
                AblationConfig {
                    barrage_playoffs: false,
                    ..full
                },
            ),
            (
                "w/o consistency score",
                AblationConfig {
                    consistency_score: false,
                    ..full
                },
            ),
            (
                "w/o execution score",
                AblationConfig {
                    execution_score: false,
                    ..full
                },
            ),
            (
                "all 2-player games",
                AblationConfig {
                    multiplayer_games: false,
                    ..full
                },
            ),
            (
                "w/o early termination",
                AblationConfig {
                    early_termination: false,
                    ..full
                },
            ),
        ]
    }
}

/// All knobs of a DarwinGame tournament.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TournamentConfig {
    /// Number of regions the search space is divided into (`n_r`, Sec. 3.3). The paper
    /// uses 10,000 on multi-million-point spaces; reduced-scale experiments use
    /// proportionally fewer.
    pub regions: usize,
    /// Number of players that play a game together in the regional and global phases
    /// (`P`). `None` uses the VM's vCPU count, as in the paper.
    pub players_per_game: Option<usize>,
    /// Work-done deviation percentage `d` (default 10%), used both for early termination
    /// and for deciding which regional players advance.
    pub work_done_deviation: f64,
    /// Minimum work fraction the leader must have completed before a game may be
    /// terminated early (default 25%).
    pub min_leader_progress: f64,
    /// Maximum number of Swiss rounds per region; a safety cap in addition to the
    /// paper's termination conditions.
    pub max_regional_rounds: usize,
    /// The global phase ends when the main bracket has at most this many players
    /// (default 3).
    pub main_bracket_target: usize,
    /// Seed controlling every random decision of the tournament.
    pub seed: u64,
    /// Run regional tournaments on parallel worker threads (one simulated VM per region
    /// either way; this only affects host-side wall-clock, not results).
    pub parallel_regions: bool,
    /// Restrict the tournament to the half-open configuration-index range
    /// `[start, end)`. `None` plays over the whole search space. Used by the hybrid
    /// integration (Sec. 3.6), where an outer tuner assigns DarwinGame one subspace at a
    /// time.
    pub search_range: Option<(u64, u64)>,
    /// Enabled/disabled design elements.
    pub ablation: AblationConfig,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        Self {
            regions: 10_000,
            players_per_game: None,
            work_done_deviation: 0.10,
            min_leader_progress: 0.25,
            max_regional_rounds: 8,
            main_bracket_target: 3,
            seed: 0x0da2,
            parallel_regions: true,
            search_range: None,
            ablation: AblationConfig::default(),
        }
    }
}

impl TournamentConfig {
    /// A configuration sized for reduced-scale experiments: `regions` regions and the
    /// given seed, everything else at paper defaults.
    pub fn scaled(regions: usize, seed: u64) -> Self {
        Self {
            regions,
            seed,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of its meaningful range.
    pub fn validate(&self) {
        assert!(self.regions > 0, "at least one region is required");
        assert!(
            self.work_done_deviation > 0.0 && self.work_done_deviation < 1.0,
            "work_done_deviation must be in (0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&self.min_leader_progress),
            "min_leader_progress must be in [0, 1)"
        );
        assert!(self.max_regional_rounds > 0, "at least one regional round");
        assert!(
            self.main_bracket_target >= 1,
            "the main bracket must keep at least one player"
        );
        if let Some(p) = self.players_per_game {
            assert!(p >= 2, "games need at least two players");
        }
        if let Some((start, end)) = self.search_range {
            assert!(
                start < end,
                "search_range must be a non-empty half-open range"
            );
        }
    }

    /// The effective number of players per game for a VM with `vcpus` cores, honouring
    /// the `multiplayer_games` ablation.
    pub fn effective_players_per_game(&self, vcpus: usize) -> usize {
        if !self.ablation.multiplayer_games {
            return 2;
        }
        self.players_per_game.unwrap_or(vcpus).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let config = TournamentConfig::default();
        assert_eq!(config.regions, 10_000);
        assert!((config.work_done_deviation - 0.10).abs() < 1e-12);
        assert!((config.min_leader_progress - 0.25).abs() < 1e-12);
        assert_eq!(config.main_bracket_target, 3);
        config.validate();
    }

    #[test]
    fn effective_players_defaults_to_vcpus() {
        let config = TournamentConfig::default();
        assert_eq!(config.effective_players_per_game(32), 32);
        let mut two_player = config;
        two_player.ablation.multiplayer_games = false;
        assert_eq!(two_player.effective_players_per_game(32), 2);
        let mut fixed = config;
        fixed.players_per_game = Some(8);
        assert_eq!(fixed.effective_players_per_game(32), 8);
    }

    #[test]
    fn scaled_overrides_regions_and_seed() {
        let config = TournamentConfig::scaled(64, 99);
        assert_eq!(config.regions, 64);
        assert_eq!(config.seed, 99);
        config.validate();
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn zero_regions_rejected() {
        let config = TournamentConfig {
            regions: 0,
            ..TournamentConfig::default()
        };
        config.validate();
    }

    #[test]
    #[should_panic(expected = "at least two players")]
    fn one_player_games_rejected() {
        let config = TournamentConfig {
            players_per_game: Some(1),
            ..TournamentConfig::default()
        };
        config.validate();
    }

    #[test]
    fn full_ablation_enables_everything() {
        let ablation = AblationConfig::full();
        assert!(ablation.regional_phase && ablation.global_phase);
        assert!(ablation.consistency_score && ablation.execution_score);
        assert!(ablation.early_termination);
    }

    #[test]
    fn paper_variants_cover_every_switch_exactly_once() {
        let variants = AblationConfig::paper_variants();
        assert_eq!(variants.len(), 11, "full design + 10 ablations");
        assert_eq!(variants[0].0, "full DarwinGame");
        assert_eq!(variants[0].1, AblationConfig::full());
        // Every non-full variant differs from the full design, and all names are unique.
        let mut names: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
        for (name, ablation) in variants.iter().skip(1) {
            assert_ne!(
                *ablation,
                AblationConfig::full(),
                "{name} must disable something"
            );
        }
    }
}
