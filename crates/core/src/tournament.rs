//! The DarwinGame tournament orchestrator (Algorithm 1 of the paper).

use crate::config::TournamentConfig;
use crate::global::run_global_phase;
use crate::player::Player;
use crate::playoffs::run_playoffs;
use crate::regional::run_regional_phase;
use crate::report::{PhaseSummary, TournamentReport};
use dg_cloudsim::{CostTracker, SimRng};
use dg_exec::ExecutionBackend;
use dg_obs::Span;
use dg_tuners::{Tuner, TuningBudget, TuningOutcome};
use dg_workloads::{IndexPartition, Workload};

/// The DarwinGame tuner: a four-phase tournament played among co-located application
/// executions with different tuning configurations.
///
/// ```
/// use darwin_core::{DarwinGame, TournamentConfig};
/// use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
/// use dg_workloads::{Application, Workload};
///
/// let workload = Workload::scaled(Application::Redis, 2_000);
/// let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
/// let mut config = TournamentConfig::scaled(8, 42);
/// config.players_per_game = Some(8);
/// let report = DarwinGame::new(config).run(&workload, &mut cloud);
/// assert!(report.champion < workload.size());
/// ```
#[derive(Debug, Clone)]
pub struct DarwinGame {
    config: TournamentConfig,
}

impl DarwinGame {
    /// Creates a tournament tuner from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`TournamentConfig::validate`]).
    pub fn new(config: TournamentConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Creates a tournament tuner with the paper's default parameters and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(TournamentConfig {
            seed,
            ..TournamentConfig::default()
        })
    }

    /// The tournament configuration.
    pub fn config(&self) -> &TournamentConfig {
        &self.config
    }

    /// Plays the full tournament for `workload` and returns the detailed report.
    ///
    /// The regional phase runs on per-region sub-backends forked from `exec` (same VM
    /// type and interference profile); the global phase, playoffs, and final run on
    /// `exec` itself. Any [`ExecutionBackend`] works: the cloud simulator (the
    /// default), a trace recorder/replayer, or a memoizing wrapper.
    pub fn run(&self, workload: &Workload, exec: &mut dyn ExecutionBackend) -> TournamentReport {
        let config = &self.config;
        let size = workload.size();
        let (offset, span) = match config.search_range {
            Some((start, end)) => {
                let end = end.min(size);
                assert!(start < end, "search_range outside the workload's space");
                (start, end - start)
            }
            None => (0, size),
        };
        let regions = config.regions.min(span as usize).max(1);
        let partition = IndexPartition::new(span, regions);

        let vm = exec.vm();
        let main_start = exec.cost().snapshot();

        // -------- Phase I: regional (Swiss style) --------
        let (entrants, regional_cost, regional_games) = if config.ablation.regional_phase {
            let _span = Span::enter("phase.regional");
            let (outcomes, cost) = run_regional_phase(workload, &partition, offset, exec, config);
            let games = outcomes.iter().map(|o| o.games_played).sum();
            let players: Vec<Player> = outcomes.into_iter().flat_map(|o| o.winners).collect();
            (players, cost, games)
        } else {
            // Ablation "w/o regional": one random configuration per region enters the
            // global phase directly, with no score history.
            let mut rng = SimRng::new(config.seed).derive("no-regional");
            let players: Vec<Player> = (0..partition.parts())
                .map(|region| {
                    Player::new(partition.sample(region, &mut rng) + offset, Some(region))
                })
                .collect();
            (players, CostTracker::new(), 0)
        };

        // Safety net: if the regional phase produced nothing (degenerate tiny spaces),
        // fall back to one random player per region.
        let entrants = if entrants.is_empty() {
            let mut rng = SimRng::new(config.seed).derive("regional-fallback");
            (0..partition.parts())
                .map(|region| {
                    Player::new(partition.sample(region, &mut rng) + offset, Some(region))
                })
                .collect()
        } else {
            entrants
        };
        let regional_winner_count = entrants.len();

        // -------- Phase II: global (double elimination) --------
        let global_start = exec.cost().snapshot();
        let global = {
            let _span = Span::enter("phase.global");
            run_global_phase(exec, workload, entrants, config)
        };
        let global_core_hours = global_start.delta(exec.cost()).core_hours;

        // -------- Phases III & IV: playoffs (barrage) and final --------
        let playoff_players = global.playoff_players();
        let playoff_entrants = playoff_players.len();
        let playoffs_start = exec.cost().snapshot();
        let playoffs = {
            let _span = Span::enter("phase.playoffs");
            run_playoffs(exec, workload, playoff_players, config)
        };
        let playoffs_core_hours = playoffs_start.delta(exec.cost()).core_hours;

        let main_delta = main_start.delta(exec.cost());

        TournamentReport {
            champion: playoffs.champion.config(),
            runner_up: playoffs.runner_up.as_ref().map(Player::config),
            champion_observed_time: playoffs.champion_observed_time,
            regional_winners: regional_winner_count,
            games_played: regional_games + global.games_played + playoffs.games_played,
            core_hours: regional_cost.core_hours() + main_delta.core_hours,
            wall_clock_seconds: regional_cost.wall_clock_seconds() + main_delta.wall_clock_seconds,
            phases: vec![
                PhaseSummary {
                    name: "regional".into(),
                    players_in: regions * config.effective_players_per_game(vm.vcpus()),
                    players_out: regional_winner_count,
                    games: regional_games,
                    core_hours: regional_cost.core_hours(),
                },
                PhaseSummary {
                    name: "global".into(),
                    players_in: regional_winner_count,
                    players_out: playoff_entrants,
                    games: global.games_played,
                    core_hours: global_core_hours,
                },
                PhaseSummary {
                    name: "playoffs+final".into(),
                    players_in: playoff_entrants,
                    players_out: 1,
                    games: playoffs.games_played,
                    core_hours: playoffs_core_hours,
                },
            ],
        }
    }
}

impl Tuner for DarwinGame {
    fn name(&self) -> &str {
        "DarwinGame"
    }

    /// Runs the tournament. The evaluation budget is ignored: DarwinGame's sampling
    /// effort is determined by its tournament structure (`regions`, players per game,
    /// round caps), not by a per-sample budget.
    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        _budget: TuningBudget,
    ) -> TuningOutcome {
        self.run(workload, exec).to_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    fn small_config(regions: usize, seed: u64) -> TournamentConfig {
        let mut config = TournamentConfig::scaled(regions, seed);
        config.players_per_game = Some(8);
        config.max_regional_rounds = 4;
        config.parallel_regions = false;
        config
    }

    fn cloud(seed: u64) -> CloudEnvironment {
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed)
    }

    #[test]
    fn full_tournament_finds_a_fast_configuration() {
        let workload = Workload::scaled(Application::Redis, 20_000);
        let mut cloud = cloud(3);
        let report = DarwinGame::new(small_config(24, 5)).run(&workload, &mut cloud);

        let champion_time = workload.base_time(report.champion);
        let best = workload.application().surface_config().best_time;
        let worst = workload.application().surface_config().worst_time;
        assert!(
            champion_time < best + 0.35 * (worst - best),
            "champion ({champion_time}s) should be well into the fast tail"
        );
        assert!(report.games_played > 10);
        assert!(report.core_hours > 0.0);
        assert_eq!(report.phases.len(), 3);
    }

    #[test]
    fn tournament_is_deterministic() {
        let workload = Workload::scaled(Application::Ffmpeg, 8_000);
        let run = || {
            let mut cloud = cloud(9);
            DarwinGame::new(small_config(12, 21))
                .run(&workload, &mut cloud)
                .champion
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_can_pick_different_champions_but_all_fast() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let config = workload.application().surface_config();
        for seed in 0..3u64 {
            let mut env = cloud(100 + seed);
            let report = DarwinGame::new(small_config(12, seed)).run(&workload, &mut env);
            let time = workload.base_time(report.champion);
            assert!(
                time < (config.best_time + config.worst_time) / 2.0,
                "seed {seed}: champion too slow ({time}s)"
            );
        }
    }

    #[test]
    fn search_range_restricts_the_champion() {
        let workload = Workload::scaled(Application::Lammps, 10_000);
        let mut env = cloud(7);
        let mut config = small_config(8, 13);
        let start = workload.size() / 2;
        let end = workload.size();
        config.search_range = Some((start, end));
        let report = DarwinGame::new(config).run(&workload, &mut env);
        assert!(report.champion >= start && report.champion < end);
    }

    #[test]
    fn tuner_trait_reports_darwin_game_outcome() {
        let workload = Workload::scaled(Application::Gromacs, 8_000);
        let mut env = cloud(11);
        let mut tuner = DarwinGame::new(small_config(8, 2));
        let outcome = tuner.tune(&workload, &mut env, TuningBudget::evaluations(10));
        assert_eq!(outcome.tuner, "DarwinGame");
        assert!(outcome.core_hours > 0.0);
        assert!(outcome.believed_time > 0.0);
    }

    #[test]
    fn report_phase_cost_sums_to_total() {
        let workload = Workload::scaled(Application::Redis, 8_000);
        let mut env = cloud(17);
        let report = DarwinGame::new(small_config(10, 3)).run(&workload, &mut env);
        let phase_total: f64 = report.phases.iter().map(|p| p.core_hours).sum();
        assert!((phase_total - report.core_hours).abs() / report.core_hours < 0.05);
    }

    #[test]
    fn report_totals_are_consistent_across_seeds_and_region_counts() {
        let workload = Workload::scaled(Application::Redis, 12_000);
        for seed in [1u64, 9, 42] {
            for regions in [4usize, 10, 24] {
                let mut env = cloud(100 + seed * 7 + regions as u64);
                let report = DarwinGame::new(small_config(regions, seed)).run(&workload, &mut env);
                let label = format!("seed {seed}, {regions} regions");

                assert_eq!(
                    report.phases.len(),
                    3,
                    "{label}: expected 3 phase summaries"
                );
                let phase_games: usize = report.phases.iter().map(|p| p.games).sum();
                assert_eq!(
                    phase_games, report.games_played,
                    "{label}: phase games must sum to the report total"
                );
                let phase_hours: f64 = report.phases.iter().map(|p| p.core_hours).sum();
                assert!(
                    (phase_hours - report.core_hours).abs() <= 1e-9 * report.core_hours,
                    "{label}: phase core-hours {phase_hours} vs total {}",
                    report.core_hours
                );
                // Phase hand-offs line up: regional winners enter the global phase, the
                // global phase's survivors enter the playoffs, one champion leaves.
                assert_eq!(
                    report.phases[0].players_out, report.regional_winners,
                    "{label}"
                );
                assert_eq!(
                    report.phases[1].players_in, report.regional_winners,
                    "{label}"
                );
                assert_eq!(
                    report.phases[1].players_out, report.phases[2].players_in,
                    "{label}"
                );
                assert_eq!(report.phases[2].players_out, 1, "{label}");
                assert!(report.core_hours > 0.0, "{label}");
            }
        }
    }

    #[test]
    fn ablated_tournament_without_regional_phase_still_completes() {
        let workload = Workload::scaled(Application::Redis, 8_000);
        let mut env = cloud(19);
        let mut config = small_config(10, 23);
        config.ablation.regional_phase = false;
        let report = DarwinGame::new(config).run(&workload, &mut env);
        assert!(report.champion < workload.size());
        assert_eq!(report.phases[0].games, 0);
    }
}
