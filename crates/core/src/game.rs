//! Playing a single game: a co-located execution of several configurations.

use crate::score::rank_descending;
use dg_exec::{ExecutionBackend, GamePlay};
use dg_workloads::{ConfigId, Workload};
use serde::{Deserialize, Serialize};

/// How a game should be driven. This is the backend-level [`dg_exec::GameRules`] type:
/// the tournament layer decides the rules, the execution backend enforces them while
/// the game runs.
pub use dg_exec::GameRules as GameOptions;

/// The result of one game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameResult {
    /// The configurations that played, in player order.
    pub configs: Vec<ConfigId>,
    /// Execution score of every player (work done relative to the fastest player).
    pub execution_scores: Vec<f64>,
    /// 1-based rank of every player by execution score.
    pub ranks: Vec<usize>,
    /// Index (into `configs`) of the winning player.
    pub winner: usize,
    /// Wall-clock seconds the game occupied its node.
    pub elapsed: f64,
    /// Whether the game was stopped by the early-termination rule.
    pub early_terminated: bool,
    /// The raw backend-level play (the committable unit of accounting).
    pub play: GamePlay,
}

impl GameResult {
    /// Player indices ordered from best to worst execution score.
    pub fn standings(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.configs.len()).collect();
        order.sort_by_key(|i| self.ranks[*i]);
        order
    }

    /// The winning configuration.
    pub fn winning_config(&self) -> ConfigId {
        self.configs[self.winner]
    }
}

/// Plays one game among `configs` on the given execution backend.
///
/// The game runs until the fastest player completes its work, or — when early termination
/// is enabled and the leader has completed at least `min_leader_progress` of its work —
/// until the work-done gap between the leader and the runner-up exceeds
/// `work_done_deviation`.
///
/// The game's cost is **not** committed to the backend; the tournament phases decide
/// whether games in a round are accounted serially or in parallel.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn play_game(
    exec: &mut dyn ExecutionBackend,
    workload: &Workload,
    configs: &[ConfigId],
    options: GameOptions,
) -> GameResult {
    assert!(!configs.is_empty(), "a game needs at least one player");
    let specs: Vec<_> = configs.iter().map(|id| workload.spec(*id)).collect();
    let play = exec.play_game(&specs, &options);

    let execution_scores = play.execution_scores.clone();
    let ranks = rank_descending(&execution_scores);
    let winner = ranks
        .iter()
        .position(|r| *r == 1)
        .expect("exactly one player holds rank 1");
    GameResult {
        configs: configs.to_vec(),
        execution_scores,
        ranks,
        winner,
        elapsed: play.elapsed,
        early_terminated: play.early_terminated,
        play,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    fn setup() -> (Workload, CloudEnvironment) {
        (
            Workload::scaled(Application::Redis, 10_000),
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 5),
        )
    }

    /// Finds a pair (fast, slow) of configurations with a large dedicated-time gap.
    fn fast_and_slow(workload: &Workload) -> (ConfigId, ConfigId) {
        let fast = workload.oracle_index(2_000);
        let slow = (0..workload.size())
            .step_by((workload.size() / 500).max(1) as usize)
            .max_by(|a, b| {
                workload
                    .base_time(*a)
                    .partial_cmp(&workload.base_time(*b))
                    .unwrap()
            })
            .unwrap();
        (fast, slow)
    }

    #[test]
    fn clearly_faster_config_wins() {
        let (workload, mut cloud) = setup();
        let (fast, slow) = fast_and_slow(&workload);
        let result = play_game(&mut cloud, &workload, &[slow, fast], GameOptions::default());
        assert_eq!(result.winning_config(), fast);
        assert_eq!(result.ranks[result.winner], 1);
    }

    #[test]
    fn early_termination_shortens_lopsided_games() {
        let (workload, mut cloud) = setup();
        let (fast, slow) = fast_and_slow(&workload);

        let with_early = play_game(&mut cloud, &workload, &[fast, slow], GameOptions::default());
        let without_early = play_game(&mut cloud, &workload, &[fast, slow], GameOptions::playoff());
        assert!(with_early.early_terminated);
        assert!(!without_early.early_terminated);
        assert!(with_early.elapsed < without_early.elapsed);
    }

    #[test]
    fn execution_scores_are_relative_to_winner() {
        let (workload, mut cloud) = setup();
        let configs: Vec<ConfigId> = (0..8).map(|i| i * (workload.size() / 9)).collect();
        let result = play_game(&mut cloud, &workload, &configs, GameOptions::default());
        let winner_score = result.execution_scores[result.winner];
        assert!((winner_score - 1.0).abs() < 1e-9);
        assert!(result
            .execution_scores
            .iter()
            .all(|s| (0.0..=1.0 + 1e-9).contains(s)));
    }

    #[test]
    fn standings_are_consistent_with_ranks() {
        let (workload, mut cloud) = setup();
        let configs: Vec<ConfigId> = (0..6).map(|i| i * (workload.size() / 7)).collect();
        let result = play_game(&mut cloud, &workload, &configs, GameOptions::default());
        let standings = result.standings();
        assert_eq!(standings.len(), configs.len());
        assert_eq!(standings[0], result.winner);
        for pair in standings.windows(2) {
            assert!(result.ranks[pair[0]] < result.ranks[pair[1]]);
        }
    }

    #[test]
    fn games_are_not_committed_to_the_environment() {
        let (workload, mut cloud) = setup();
        let before = cloud.cost().core_hours();
        let _ = play_game(&mut cloud, &workload, &[0, 1], GameOptions::default());
        assert_eq!(cloud.cost().core_hours(), before);
    }

    #[test]
    fn play_carries_the_accounting_triple() {
        let (workload, mut cloud) = setup();
        let result = play_game(&mut cloud, &workload, &[0, 1], GameOptions::default());
        assert_eq!(result.play.players(), 2);
        assert_eq!(result.play.elapsed, result.elapsed);
        assert_eq!(result.play.execution_scores, result.execution_scores);
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn empty_game_rejected() {
        let (workload, mut cloud) = setup();
        play_game(&mut cloud, &workload, &[], GameOptions::default());
    }
}
