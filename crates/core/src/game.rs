//! Playing a single game: a co-located execution of several configurations.

use crate::score::rank_descending;
use dg_exec::{ExecutionBackend, GameBatchItem, GamePlay};
use dg_workloads::{ConfigId, Workload};
use serde::{Deserialize, Serialize};

/// How a game should be driven. This is the backend-level [`dg_exec::GameRules`] type:
/// the tournament layer decides the rules, the execution backend enforces them while
/// the game runs.
pub use dg_exec::GameRules as GameOptions;

/// The result of one game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameResult {
    /// The configurations that played, in player order.
    pub configs: Vec<ConfigId>,
    /// Execution score of every player (work done relative to the fastest player).
    pub execution_scores: Vec<f64>,
    /// 1-based rank of every player by execution score.
    pub ranks: Vec<usize>,
    /// Index (into `configs`) of the winning player.
    pub winner: usize,
    /// Wall-clock seconds the game occupied its node.
    pub elapsed: f64,
    /// Whether the game was stopped by the early-termination rule.
    pub early_terminated: bool,
    /// The raw backend-level play (the committable unit of accounting).
    pub play: GamePlay,
}

impl GameResult {
    /// Player indices ordered from best to worst execution score.
    pub fn standings(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.configs.len()).collect();
        order.sort_by_key(|i| self.ranks[*i]);
        order
    }

    /// The winning configuration.
    pub fn winning_config(&self) -> ConfigId {
        self.configs[self.winner]
    }
}

/// Plays one game among `configs` on the given execution backend.
///
/// The game runs until the fastest player completes its work, or — when early termination
/// is enabled and the leader has completed at least `min_leader_progress` of its work —
/// until the work-done gap between the leader and the runner-up exceeds
/// `work_done_deviation`.
///
/// The game's cost is **not** committed to the backend; the tournament phases decide
/// whether games in a round are accounted serially or in parallel.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn play_game(
    exec: &mut dyn ExecutionBackend,
    workload: &Workload,
    configs: &[ConfigId],
    options: GameOptions,
) -> GameResult {
    assert!(!configs.is_empty(), "a game needs at least one player");
    let specs: Vec<_> = configs.iter().map(|id| workload.spec(*id)).collect();
    let play = exec.play_game(&specs, &options);

    let execution_scores = play.execution_scores.clone();
    let ranks = rank_descending(&execution_scores);
    let winner = ranks
        .iter()
        .position(|r| *r == 1)
        .expect("exactly one player holds rank 1");
    GameResult {
        configs: configs.to_vec(),
        execution_scores,
        ranks,
        winner,
        elapsed: play.elapsed,
        early_terminated: play.early_terminated,
        play,
    }
}

/// Plays one round's worth of games as a single backend batch.
///
/// Games execute in slot order through [`dg_exec::ExecutionBackend::play_games_batch`],
/// so outcomes, costs, and the backend's noise stream are identical to calling
/// [`play_game`] once per entry — backends merely get the whole round at once, which
/// lets them hoist per-round work (scenario load lookups, scratch reuse) out of the
/// per-game path. Nothing is committed; the caller decides serial vs parallel
/// accounting exactly as with [`play_game`].
///
/// # Panics
///
/// Panics if any game in `games` is empty.
pub fn play_games(
    exec: &mut dyn ExecutionBackend,
    workload: &Workload,
    games: &[Vec<ConfigId>],
    options: GameOptions,
) -> Vec<GameResult> {
    // One flat spec buffer for the whole round; each batch item borrows its slice.
    let mut specs = Vec::with_capacity(games.iter().map(Vec::len).sum());
    let mut bounds = Vec::with_capacity(games.len());
    for configs in games {
        assert!(!configs.is_empty(), "a game needs at least one player");
        let start = specs.len();
        specs.extend(configs.iter().map(|id| workload.spec(*id)));
        bounds.push(start..specs.len());
    }
    let items: Vec<GameBatchItem<'_>> = bounds
        .iter()
        .map(|range| GameBatchItem {
            specs: &specs[range.clone()],
        })
        .collect();
    let plays = exec.play_games_batch(&items, &options);
    games
        .iter()
        .zip(plays)
        .map(|(configs, play)| {
            let execution_scores = play.execution_scores.clone();
            let ranks = rank_descending(&execution_scores);
            let winner = ranks
                .iter()
                .position(|r| *r == 1)
                .expect("exactly one player holds rank 1");
            GameResult {
                configs: configs.clone(),
                execution_scores,
                ranks,
                winner,
                elapsed: play.elapsed,
                early_terminated: play.early_terminated,
                play,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    fn setup() -> (Workload, CloudEnvironment) {
        (
            Workload::scaled(Application::Redis, 10_000),
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 5),
        )
    }

    /// Finds a pair (fast, slow) of configurations with a large dedicated-time gap.
    fn fast_and_slow(workload: &Workload) -> (ConfigId, ConfigId) {
        let fast = workload.oracle_index(2_000);
        let slow = (0..workload.size())
            .step_by((workload.size() / 500).max(1) as usize)
            .max_by(|a, b| {
                workload
                    .base_time(*a)
                    .partial_cmp(&workload.base_time(*b))
                    .unwrap()
            })
            .unwrap();
        (fast, slow)
    }

    #[test]
    fn clearly_faster_config_wins() {
        let (workload, mut cloud) = setup();
        let (fast, slow) = fast_and_slow(&workload);
        let result = play_game(&mut cloud, &workload, &[slow, fast], GameOptions::default());
        assert_eq!(result.winning_config(), fast);
        assert_eq!(result.ranks[result.winner], 1);
    }

    #[test]
    fn early_termination_shortens_lopsided_games() {
        let (workload, mut cloud) = setup();
        let (fast, slow) = fast_and_slow(&workload);

        let with_early = play_game(&mut cloud, &workload, &[fast, slow], GameOptions::default());
        let without_early = play_game(&mut cloud, &workload, &[fast, slow], GameOptions::playoff());
        assert!(with_early.early_terminated);
        assert!(!without_early.early_terminated);
        assert!(with_early.elapsed < without_early.elapsed);
    }

    #[test]
    fn execution_scores_are_relative_to_winner() {
        let (workload, mut cloud) = setup();
        let configs: Vec<ConfigId> = (0..8).map(|i| i * (workload.size() / 9)).collect();
        let result = play_game(&mut cloud, &workload, &configs, GameOptions::default());
        let winner_score = result.execution_scores[result.winner];
        assert!((winner_score - 1.0).abs() < 1e-9);
        assert!(result
            .execution_scores
            .iter()
            .all(|s| (0.0..=1.0 + 1e-9).contains(s)));
    }

    #[test]
    fn standings_are_consistent_with_ranks() {
        let (workload, mut cloud) = setup();
        let configs: Vec<ConfigId> = (0..6).map(|i| i * (workload.size() / 7)).collect();
        let result = play_game(&mut cloud, &workload, &configs, GameOptions::default());
        let standings = result.standings();
        assert_eq!(standings.len(), configs.len());
        assert_eq!(standings[0], result.winner);
        for pair in standings.windows(2) {
            assert!(result.ranks[pair[0]] < result.ranks[pair[1]]);
        }
    }

    #[test]
    fn games_are_not_committed_to_the_environment() {
        let (workload, mut cloud) = setup();
        let before = cloud.cost().core_hours();
        let _ = play_game(&mut cloud, &workload, &[0, 1], GameOptions::default());
        assert_eq!(cloud.cost().core_hours(), before);
    }

    #[test]
    fn play_carries_the_accounting_triple() {
        let (workload, mut cloud) = setup();
        let result = play_game(&mut cloud, &workload, &[0, 1], GameOptions::default());
        assert_eq!(result.play.players(), 2);
        assert_eq!(result.play.elapsed, result.elapsed);
        assert_eq!(result.play.execution_scores, result.execution_scores);
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn empty_game_rejected() {
        let (workload, mut cloud) = setup();
        play_game(&mut cloud, &workload, &[], GameOptions::default());
    }

    #[test]
    fn batched_round_matches_sequential_games_bit_for_bit() {
        let (workload, mut looped) = setup();
        let (_, mut batched) = setup();
        let step = workload.size() / 16;
        let round: Vec<Vec<ConfigId>> = vec![
            vec![0, step, 2 * step, 3 * step],
            vec![4 * step, 5 * step],
            vec![6 * step, 7 * step, 8 * step],
        ];
        let expected: Vec<GameResult> = round
            .iter()
            .map(|configs| play_game(&mut looped, &workload, configs, GameOptions::default()))
            .collect();
        let got = play_games(&mut batched, &workload, &round, GameOptions::default());
        assert_eq!(expected, got);
        for (a, b) in expected.iter().zip(&got) {
            assert_eq!(
                a.execution_scores
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                b.execution_scores
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
            );
            assert_eq!(a.play.elapsed.to_bits(), b.play.elapsed.to_bits());
        }
    }
}
