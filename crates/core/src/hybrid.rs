//! Integration of DarwinGame with existing tuners (Sec. 3.6).
//!
//! The search space is divided into coarse *subspaces*. An outer search strategy — the
//! "existing tuner's optimisation logic" — decides which subspace to look at next,
//! treating each subspace as a single point whose value is the performance of the
//! configuration DarwinGame's tournament finds inside it. The tournament result is both a
//! better and a *more stable* estimate of a subspace's potential than a single noisy
//! sample, which is where the improvement of Fig. 13/14 comes from.

use crate::config::TournamentConfig;
use crate::tournament::DarwinGame;
use dg_cloudsim::SimRng;
use dg_exec::ExecutionBackend;
use dg_tuners::{GaussianProcess, SampleRecord, Tuner, TuningBudget, TuningOutcome};
use dg_workloads::Workload;

/// The outer-loop logic of an existing tuner, operating at subspace granularity.
pub trait SubspaceStrategy {
    /// A short name used to build the hybrid tuner's display name.
    fn name(&self) -> &'static str;

    /// Chooses the next subspace to explore, given `(subspace, observed champion time)`
    /// pairs for every subspace explored so far. Must return an index in
    /// `[0, total_subspaces)`; strategies should avoid repeating explored subspaces.
    fn next_subspace(
        &mut self,
        history: &[(usize, f64)],
        total_subspaces: usize,
        rng: &mut SimRng,
    ) -> usize;
}

fn unexplored(history: &[(usize, f64)], total: usize) -> Vec<usize> {
    (0..total)
        .filter(|s| !history.iter().any(|(seen, _)| seen == s))
        .collect()
}

/// BLISS-style outer loop: a Gaussian process over the (normalised) subspace index picks
/// the unexplored subspace with the highest expected improvement.
#[derive(Debug, Clone, Default)]
pub struct BlissSubspaceStrategy;

impl SubspaceStrategy for BlissSubspaceStrategy {
    fn name(&self) -> &'static str {
        "BLISS"
    }

    fn next_subspace(
        &mut self,
        history: &[(usize, f64)],
        total_subspaces: usize,
        rng: &mut SimRng,
    ) -> usize {
        let candidates = unexplored(history, total_subspaces);
        if candidates.is_empty() {
            return rng.index(total_subspaces);
        }
        if history.len() < 2 {
            return candidates[rng.index(candidates.len())];
        }
        let normalise = |s: usize| vec![s as f64 / (total_subspaces.max(2) - 1) as f64];
        let inputs: Vec<Vec<f64>> = history.iter().map(|(s, _)| normalise(*s)).collect();
        let targets: Vec<f64> = history.iter().map(|(_, t)| *t).collect();
        let best = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let mut gp = GaussianProcess::new(0.25, 1e-3);
        gp.fit(&inputs, &targets);
        candidates
            .into_iter()
            .max_by(|a, b| {
                gp.expected_improvement(&normalise(*a), best)
                    .partial_cmp(&gp.expected_improvement(&normalise(*b), best))
                    .expect("EI is not NaN")
            })
            .expect("candidates is non-empty")
    }
}

/// ActiveHarmony-style outer loop: local (neighbourhood) search around the best subspace
/// found so far, falling back to random unexplored subspaces.
#[derive(Debug, Clone, Default)]
pub struct HarmonySubspaceStrategy;

impl SubspaceStrategy for HarmonySubspaceStrategy {
    fn name(&self) -> &'static str {
        "ActiveHarmony"
    }

    fn next_subspace(
        &mut self,
        history: &[(usize, f64)],
        total_subspaces: usize,
        rng: &mut SimRng,
    ) -> usize {
        let candidates = unexplored(history, total_subspaces);
        if candidates.is_empty() {
            return rng.index(total_subspaces);
        }
        let best = history
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are not NaN"));
        if let Some((best_subspace, _)) = best {
            // Prefer the nearest unexplored neighbour of the incumbent subspace.
            if let Some(neighbour) = candidates
                .iter()
                .min_by_key(|c| (**c as isize - *best_subspace as isize).unsigned_abs())
            {
                return *neighbour;
            }
        }
        candidates[rng.index(candidates.len())]
    }
}

/// DarwinGame integrated with an existing tuner's outer search logic.
#[derive(Debug, Clone)]
pub struct HybridDarwinGame<S: SubspaceStrategy> {
    name: String,
    strategy: S,
    subspaces: usize,
    explorations: usize,
    tournament: TournamentConfig,
}

impl HybridDarwinGame<BlissSubspaceStrategy> {
    /// BLISS + DarwinGame (Fig. 13/14).
    pub fn bliss(seed: u64) -> Self {
        Self::with_strategy(BlissSubspaceStrategy, seed)
    }
}

impl HybridDarwinGame<HarmonySubspaceStrategy> {
    /// ActiveHarmony + DarwinGame (Fig. 13/14).
    pub fn active_harmony(seed: u64) -> Self {
        Self::with_strategy(HarmonySubspaceStrategy, seed)
    }
}

impl<S: SubspaceStrategy> HybridDarwinGame<S> {
    /// Builds a hybrid tuner around an arbitrary outer-loop strategy.
    pub fn with_strategy(strategy: S, seed: u64) -> Self {
        let mut tournament = TournamentConfig {
            seed,
            // Inside one subspace a much smaller regional phase suffices; this is what
            // makes the hybrid cheaper than the stand-alone tournament (Fig. 14), while
            // still sampling each subspace densely enough to surface its robust
            // near-optimal configurations.
            regions: 24,
            parallel_regions: false,
            ..TournamentConfig::default()
        };
        tournament.players_per_game = Some(16);
        tournament.max_regional_rounds = 6;
        Self {
            name: format!("{}+DarwinGame", strategy.name()),
            strategy,
            subspaces: 16,
            explorations: 6,
            tournament,
        }
    }

    /// Sets how many subspaces the search space is divided into.
    ///
    /// # Panics
    ///
    /// Panics if `subspaces == 0`.
    pub fn with_subspaces(mut self, subspaces: usize) -> Self {
        assert!(subspaces > 0, "at least one subspace is required");
        self.subspaces = subspaces;
        self
    }

    /// Sets how many subspaces the outer loop explores.
    ///
    /// # Panics
    ///
    /// Panics if `explorations == 0`.
    pub fn with_explorations(mut self, explorations: usize) -> Self {
        assert!(explorations > 0, "at least one exploration is required");
        self.explorations = explorations;
        self
    }

    /// Overrides the template configuration used for the per-subspace tournaments.
    pub fn with_tournament_config(mut self, tournament: TournamentConfig) -> Self {
        tournament.validate();
        self.tournament = tournament;
        self
    }
}

impl<S: SubspaceStrategy> Tuner for HybridDarwinGame<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        _budget: TuningBudget,
    ) -> TuningOutcome {
        let partition = workload.subspaces(self.subspaces);
        let mut rng = SimRng::new(self.tournament.seed).derive("hybrid");
        let mut history: Vec<(usize, f64)> = Vec::new();
        let mut samples = Vec::new();
        let mut best: Option<(u64, f64)> = None;
        let mut core_hours = 0.0;
        let mut wall_clock = 0.0;
        let mut games = 0usize;

        let explorations = self.explorations.min(partition.parts());
        for exploration in 0..explorations {
            let subspace = self
                .strategy
                .next_subspace(&history, partition.parts(), &mut rng)
                .min(partition.parts() - 1);
            let range = partition.range(subspace);
            let mut tournament = self.tournament;
            tournament.search_range = Some((range.start, range.end));
            tournament.seed = dg_cloudsim::mix(self.tournament.seed, exploration as u64);
            let report = DarwinGame::new(tournament).run(workload, exec);

            history.push((subspace, report.champion_observed_time));
            samples.push(SampleRecord {
                config: report.champion,
                observed_time: report.champion_observed_time,
            });
            core_hours += report.core_hours;
            wall_clock += report.wall_clock_seconds;
            games += report.games_played;
            if best.map_or(true, |(_, t)| report.champion_observed_time < t) {
                best = Some((report.champion, report.champion_observed_time));
            }
        }

        let (chosen, believed_time) = best.expect("at least one subspace is explored");
        TuningOutcome {
            tuner: self.name.clone(),
            chosen,
            believed_time,
            samples: games,
            core_hours,
            wall_clock_seconds: wall_clock,
            history: samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    fn cloud(seed: u64) -> CloudEnvironment {
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed)
    }

    #[test]
    fn bliss_hybrid_finds_a_fast_configuration() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let mut env = cloud(3);
        let mut tuner = HybridDarwinGame::bliss(7)
            .with_subspaces(8)
            .with_explorations(4);
        let outcome = tuner.tune(&workload, &mut env, TuningBudget::default());
        assert_eq!(outcome.tuner, "BLISS+DarwinGame");
        let surface = workload.application().surface_config();
        assert!(
            workload.base_time(outcome.chosen) < (surface.best_time + surface.worst_time) / 2.0
        );
        assert!(outcome.core_hours > 0.0);
        assert_eq!(outcome.history.len(), 4);
    }

    #[test]
    fn harmony_hybrid_explores_distinct_subspaces() {
        let workload = Workload::scaled(Application::Ffmpeg, 8_000);
        let mut env = cloud(5);
        let mut tuner = HybridDarwinGame::active_harmony(11)
            .with_subspaces(6)
            .with_explorations(6);
        let outcome = tuner.tune(&workload, &mut env, TuningBudget::default());
        assert_eq!(outcome.tuner, "ActiveHarmony+DarwinGame");
        // Exploring 6 subspaces of 6 must touch champions from 6 tournaments.
        assert_eq!(outcome.history.len(), 6);
    }

    #[test]
    fn strategies_avoid_repeating_subspaces() {
        let mut rng = SimRng::new(1);
        let mut bliss = BlissSubspaceStrategy;
        let mut history: Vec<(usize, f64)> = Vec::new();
        for _ in 0..8 {
            let s = bliss.next_subspace(&history, 8, &mut rng);
            assert!(!history.iter().any(|(seen, _)| *seen == s));
            history.push((s, 300.0 + s as f64));
        }

        let mut harmony = HarmonySubspaceStrategy;
        let mut history: Vec<(usize, f64)> = Vec::new();
        for _ in 0..8 {
            let s = harmony.next_subspace(&history, 8, &mut rng);
            assert!(!history.iter().any(|(seen, _)| *seen == s));
            history.push((s, 300.0 - s as f64));
        }
    }

    #[test]
    fn harmony_strategy_prefers_neighbours_of_the_best_subspace() {
        let mut rng = SimRng::new(2);
        let mut harmony = HarmonySubspaceStrategy;
        // Subspace 4 is clearly the best so far; its neighbours should be explored next.
        let history = vec![(0, 500.0), (4, 250.0), (9, 480.0)];
        let next = harmony.next_subspace(&history, 10, &mut rng);
        assert!(
            next == 3 || next == 5,
            "expected a neighbour of 4, got {next}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one subspace")]
    fn zero_subspaces_rejected() {
        let _ = HybridDarwinGame::bliss(1).with_subspaces(0);
    }
}
