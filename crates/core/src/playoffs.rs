//! Phases III & IV: barrage-style playoffs and the final.
//!
//! Only a handful of promising, consistent configurations reach this stage. To maximise
//! accuracy the games are now strictly two-player and run until the faster player
//! completes (no early termination). The playoffs follow the barrage format: the two
//! best players meet first and the winner goes straight to the final; the loser gets a
//! second chance against the winner of the remaining players; the final is a single
//! head-to-head game decided purely by who finishes first.

use crate::config::TournamentConfig;
use crate::game::{play_game, GameOptions};
use crate::player::Player;
use dg_exec::ExecutionBackend;
use dg_workloads::{ConfigId, Workload};
use serde::{Deserialize, Serialize};

/// The result of the playoffs and final.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlayoffOutcome {
    /// The tournament champion: DarwinGame's chosen tuning configuration.
    pub champion: Player,
    /// The losing finalist, if there was more than one playoff player.
    pub runner_up: Option<Player>,
    /// The champion's observed execution time in the final game (seconds).
    pub champion_observed_time: f64,
    /// Number of games played in the playoffs and final.
    pub games_played: usize,
}

/// Runs the playoffs (barrage style) and the final on the main tuning VM.
///
/// # Panics
///
/// Panics if `players` is empty.
pub fn run_playoffs(
    exec: &mut dyn ExecutionBackend,
    workload: &Workload,
    mut players: Vec<Player>,
    config: &TournamentConfig,
) -> PlayoffOutcome {
    assert!(!players.is_empty(), "the playoffs need at least one player");
    let mut games_played = 0usize;

    if players.len() == 1 {
        let champion = players.remove(0);
        let observed = exec
            .run_single(workload.spec(champion.config()))
            .observed_time;
        return PlayoffOutcome {
            champion_observed_time: observed,
            champion,
            runner_up: None,
            games_played,
        };
    }

    // Rank playoff players by their average execution score so far.
    players.sort_by(|a, b| {
        b.average_execution_score()
            .partial_cmp(&a.average_execution_score())
            .expect("scores are not NaN")
            .then(a.config().cmp(&b.config()))
    });

    let two_player_game = |exec: &mut dyn ExecutionBackend,
                           a: &mut Player,
                           b: &mut Player,
                           games_played: &mut usize|
     -> (bool, f64) {
        let configs = [a.config(), b.config()];
        let result = play_game(exec, workload, &configs, GameOptions::playoff());
        exec.commit(&result.play);
        *games_played += 1;
        a.scores_mut()
            .record_game(result.execution_scores[0], result.ranks[0]);
        b.scores_mut()
            .record_game(result.execution_scores[1], result.ranks[1]);
        let winner_time = result.play.observed_times[result.winner];
        (result.winner == 0, winner_time)
    };

    let (mut finalist_a, mut finalist_b);

    if !config.ablation.barrage_playoffs {
        // Ablation "w/o barrage": a single multi-player game ranks the playoff players
        // and the top two go to the final.
        let configs: Vec<ConfigId> = players.iter().map(Player::config).collect();
        let game_options = GameOptions {
            early_termination: false,
            work_done_deviation: config.work_done_deviation,
            min_leader_progress: config.min_leader_progress,
        };
        let result = play_game(exec, workload, &configs, game_options);
        exec.commit(&result.play);
        games_played += 1;
        for (slot, player) in players.iter_mut().enumerate() {
            player
                .scores_mut()
                .record_game(result.execution_scores[slot], result.ranks[slot]);
        }
        let standings = result.standings();
        finalist_a = players[standings[0]].clone();
        finalist_b = players[standings[1]].clone();
    } else if players.len() == 2 {
        finalist_a = players[0].clone();
        finalist_b = players[1].clone();
    } else if players.len() == 3 {
        // Game 1: the two best players; the winner goes to the final.
        let mut p0 = players[0].clone();
        let mut p1 = players[1].clone();
        let (first_won, _) = two_player_game(exec, &mut p0, &mut p1, &mut games_played);
        let (game1_winner, game1_loser) = if first_won { (p0, p1) } else { (p1, p0) };
        // Game 2: the loser of game 1 against the remaining player.
        let mut loser = game1_loser;
        let mut p2 = players[2].clone();
        let (loser_won, _) = two_player_game(exec, &mut loser, &mut p2, &mut games_played);
        finalist_a = game1_winner;
        finalist_b = if loser_won { loser } else { p2 };
    } else {
        // Four or more players: classic barrage with the top four.
        let mut p0 = players[0].clone();
        let mut p1 = players[1].clone();
        let mut p2 = players[2].clone();
        let mut p3 = players[3].clone();
        // Game 1: top two; winner straight to the final.
        let (first_won, _) = two_player_game(exec, &mut p0, &mut p1, &mut games_played);
        let (game1_winner, game1_loser) = if first_won { (p0, p1) } else { (p1, p0) };
        // Game 2: bottom two; loser eliminated.
        let (third_won, _) = two_player_game(exec, &mut p2, &mut p3, &mut games_played);
        let game2_winner = if third_won { p2 } else { p3 };
        // Game 3: loser of game 1 vs winner of game 2; winner is the second finalist.
        let mut loser = game1_loser;
        let mut challenger = game2_winner;
        let (loser_won, _) = two_player_game(exec, &mut loser, &mut challenger, &mut games_played);
        finalist_a = game1_winner;
        finalist_b = if loser_won { loser } else { challenger };
    }

    // The final: a single head-to-head game; whoever finishes first wins.
    let (a_won, winner_time) =
        two_player_game(exec, &mut finalist_a, &mut finalist_b, &mut games_played);
    let (champion, runner_up) = if a_won {
        (finalist_a, finalist_b)
    } else {
        (finalist_b, finalist_a)
    };

    PlayoffOutcome {
        champion,
        runner_up: Some(runner_up),
        champion_observed_time: winner_time,
        games_played,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    fn setup() -> (Workload, CloudEnvironment, TournamentConfig) {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 31);
        (workload, cloud, TournamentConfig::scaled(16, 3))
    }

    fn player(config: ConfigId, seed_scores: &[(f64, usize)]) -> Player {
        let mut p = Player::new(config, None);
        for (score, rank) in seed_scores {
            p.scores_mut().record_game(*score, *rank);
        }
        p
    }

    #[test]
    fn four_player_barrage_plays_four_games() {
        let (workload, mut cloud, config) = setup();
        let step = workload.size() / 5;
        let players: Vec<Player> = (0..4)
            .map(|i| player(i as u64 * step, &[(1.0 - 0.1 * i as f64, i + 1)]))
            .collect();
        let outcome = run_playoffs(&mut cloud, &workload, players, &config);
        // Three barrage games plus the final.
        assert_eq!(outcome.games_played, 4);
        assert!(outcome.runner_up.is_some());
        assert!(outcome.champion_observed_time > 0.0);
    }

    #[test]
    fn champion_is_a_fast_configuration() {
        let (workload, mut cloud, config) = setup();
        // One clearly excellent configuration among three mediocre ones.
        let good = workload.oracle_index(2_000);
        let step = workload.size() / 4;
        let players = vec![
            player(good, &[(1.0, 1)]),
            player(step, &[(0.8, 2)]),
            player(2 * step, &[(0.7, 3)]),
            player(3 * step, &[(0.6, 4)]),
        ];
        let outcome = run_playoffs(&mut cloud, &workload, players, &config);
        let champion_time = workload.base_time(outcome.champion.config());
        let median_time = workload.base_time(2 * step);
        assert!(champion_time <= median_time);
    }

    #[test]
    fn two_players_go_straight_to_the_final() {
        let (workload, mut cloud, config) = setup();
        let players = vec![
            player(0, &[(1.0, 1)]),
            player(workload.size() / 2, &[(0.9, 2)]),
        ];
        let outcome = run_playoffs(&mut cloud, &workload, players, &config);
        assert_eq!(outcome.games_played, 1);
    }

    #[test]
    fn three_players_play_two_playoff_games_plus_final() {
        let (workload, mut cloud, config) = setup();
        let step = workload.size() / 4;
        let players = vec![
            player(0, &[(1.0, 1)]),
            player(step, &[(0.9, 2)]),
            player(2 * step, &[(0.8, 3)]),
        ];
        let outcome = run_playoffs(&mut cloud, &workload, players, &config);
        assert_eq!(outcome.games_played, 3);
    }

    #[test]
    fn single_player_is_champion_without_playoff_games() {
        let (workload, mut cloud, config) = setup();
        let players = vec![player(42, &[(1.0, 1)])];
        let outcome = run_playoffs(&mut cloud, &workload, players, &config);
        assert_eq!(outcome.champion.config(), 42);
        assert!(outcome.runner_up.is_none());
        assert_eq!(outcome.games_played, 0);
    }

    #[test]
    fn without_barrage_a_single_group_game_selects_finalists() {
        let (workload, mut cloud, mut config) = setup();
        config.ablation.barrage_playoffs = false;
        let step = workload.size() / 5;
        let players: Vec<Player> = (0..4)
            .map(|i| player(i as u64 * step, &[(1.0 - 0.1 * i as f64, i + 1)]))
            .collect();
        let outcome = run_playoffs(&mut cloud, &workload, players, &config);
        // One group game plus the final.
        assert_eq!(outcome.games_played, 2);
    }

    #[test]
    fn playoff_cost_is_committed_to_the_environment() {
        let (workload, mut cloud, config) = setup();
        let before = cloud.cost().core_hours();
        let players = vec![
            player(0, &[(1.0, 1)]),
            player(workload.size() / 2, &[(0.9, 2)]),
        ];
        let _ = run_playoffs(&mut cloud, &workload, players, &config);
        assert!(cloud.cost().core_hours() > before);
    }
}
