//! Phase I: the regional phase, played in Swiss style.
//!
//! The search space is divided into `n_r` regions; inside each region multi-player games
//! are played for several rounds. Half of each round's players are drawn from the pool
//! that has never played (new players) and half are drawn probabilistically from players
//! that already have an execution score — so increasingly promising configurations meet
//! each other, which is the Swiss-style progression of Fig. 6. A region ends when one
//! configuration has won two games in a row, when there are no new players left to
//! introduce, or when the round cap is reached; every player within the work-done
//! deviation of the regional best advances to the global phase.

use crate::config::TournamentConfig;
use crate::game::{play_game, GameOptions};
use crate::player::Player;
use dg_cloudsim::{CostTracker, SimRng};
use dg_exec::ExecutionBackend;
use dg_obs::{emit_with, ObsEvent};
use dg_workloads::{ConfigId, IndexPartition, Workload};
use serde::{Deserialize, Serialize};

/// The result of playing one region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionalOutcome {
    /// Which region (partition part) this outcome belongs to.
    pub region: usize,
    /// Players that advance to the global phase, score history included.
    pub winners: Vec<Player>,
    /// Number of games played inside the region.
    pub games_played: usize,
    /// Core-hours consumed by the region's games.
    pub core_hours: f64,
    /// Wall-clock seconds the region's (dedicated) VM was busy.
    pub wall_clock_seconds: f64,
}

/// The deterministic seed of one region's sub-environment.
fn region_seed(config: &TournamentConfig, region: usize) -> u64 {
    dg_cloudsim::mix(config.seed, 0x4e67 ^ region as u64)
}

/// Plays the Swiss-style tournament inside one region, on its own execution backend.
///
/// Regions are independent by construction (the paper runs them on separate VMs in
/// parallel), so each plays on a backend forked from the main one with a seed derived
/// from the tournament seed and the region index — see
/// [`run_regional_phase`], which performs the forking. `exec` must be a fresh fork (its
/// cost tracker becomes the region's bill).
pub fn run_region(
    workload: &Workload,
    partition: &IndexPartition,
    region: usize,
    offset: u64,
    exec: &mut dyn ExecutionBackend,
    config: &TournamentConfig,
) -> RegionalOutcome {
    let mut rng = SimRng::new(exec.seed()).derive("regional");
    let players_per_game = config.effective_players_per_game(exec.vm().vcpus());

    let game_options = GameOptions {
        early_termination: config.ablation.early_termination,
        work_done_deviation: config.work_done_deviation,
        min_leader_progress: config.min_leader_progress,
    };

    // Candidate pool: enough distinct configurations to feed every possible round.
    let pool_size =
        players_per_game + (players_per_game / 2) * config.max_regional_rounds.saturating_sub(1);
    let candidates: Vec<ConfigId> = partition
        .sample_distinct(region, pool_size, &mut rng)
        .into_iter()
        .map(|id| id + offset)
        .collect();

    let mut players: Vec<Player> = candidates
        .iter()
        .map(|id| Player::new(*id, Some(region)))
        .collect();
    let mut unplayed: Vec<usize> = (0..players.len()).collect();
    rng.shuffle(&mut unplayed);

    let mut games_played = 0usize;
    let mut last_winner: Option<ConfigId> = None;
    let mut consecutive_wins = 0usize;

    let rounds = if config.ablation.swiss_regional {
        config.max_regional_rounds
    } else {
        // Ablation "w/o Swiss": a single game among the sampled players decides winners.
        1
    };

    // Round scratch, reused so the per-round loop allocates nothing for selection.
    let mut participants: Vec<usize> = Vec::with_capacity(players_per_game);
    let mut configs: Vec<ConfigId> = Vec::with_capacity(players_per_game);

    for round in 0..rounds {
        // Select this round's participants.
        participants.clear();
        if round == 0 || !config.ablation.swiss_regional {
            // First round (or non-Swiss single game): random players from the pool.
            while participants.len() < players_per_game && !unplayed.is_empty() {
                participants.push(unplayed.pop().expect("unplayed is non-empty"));
            }
        } else {
            // Half new players, half high-scoring veterans selected probabilistically.
            let new_slots = (players_per_game / 2).min(unplayed.len());
            for _ in 0..new_slots {
                participants.push(unplayed.pop().expect("unplayed is non-empty"));
            }
            let veteran_indices: Vec<usize> = (0..players.len())
                .filter(|i| players[*i].scores().games_played() > 0 && !participants.contains(i))
                .collect();
            let veteran_slots = (players_per_game - participants.len()).min(veteran_indices.len());
            let mut weights: Vec<f64> = veteran_indices
                .iter()
                .map(|i| players[*i].average_execution_score().max(0.01))
                .collect();
            let mut remaining = veteran_indices;
            for _ in 0..veteran_slots {
                let pick = rng.weighted_index(&weights);
                participants.push(remaining.swap_remove(pick));
                weights.swap_remove(pick);
            }
        }
        if participants.len() < 2 {
            break;
        }

        configs.clear();
        configs.extend(participants.iter().map(|i| players[*i].config()));
        let result = play_game(exec, workload, &configs, game_options);
        exec.commit(&result.play);
        games_played += 1;
        emit_with(|| ObsEvent::Round {
            phase: "regional".into(),
            round,
            games: 1,
        });

        for (slot, player_index) in participants.iter().enumerate() {
            players[*player_index]
                .scores_mut()
                .record_game(result.execution_scores[slot], result.ranks[slot]);
        }

        // Track consecutive wins of the same configuration for the termination rule.
        let winning_config = result.winning_config();
        if Some(winning_config) == last_winner {
            consecutive_wins += 1;
        } else {
            last_winner = Some(winning_config);
            consecutive_wins = 1;
        }
        if config.ablation.swiss_regional && consecutive_wins >= 2 {
            break;
        }
        if unplayed.is_empty() {
            break;
        }
    }

    // Decide who advances: everyone within the work-done deviation of the best player's
    // average execution score (or only the single best, under the ablation). Winners
    // are selected by index and *moved* out of the pool — their score histories were
    // grown in place all region long and never need copying.
    let mut veterans: Vec<usize> = (0..players.len())
        .filter(|i| players[*i].scores().games_played() > 0)
        .collect();
    veterans.sort_by(|a, b| {
        players[*b]
            .average_execution_score()
            .partial_cmp(&players[*a].average_execution_score())
            .expect("scores are not NaN")
            .then(players[*a].config().cmp(&players[*b].config()))
    });
    if veterans.is_empty() {
        // No games were played (degenerate pool): nobody advances.
    } else if config.ablation.single_regional_winner {
        veterans.truncate(1);
    } else {
        let best_score = players[veterans[0]].average_execution_score();
        let threshold = best_score * (1.0 - config.work_done_deviation);
        veterans.retain(|i| players[*i].average_execution_score() >= threshold);
    }
    let mut pool: Vec<Option<Player>> = players.into_iter().map(Some).collect();
    let winners: Vec<Player> = veterans
        .iter()
        .map(|i| pool[*i].take().expect("winner indices are distinct"))
        .collect();

    RegionalOutcome {
        region,
        winners,
        games_played,
        core_hours: exec.cost().core_hours(),
        wall_clock_seconds: exec.cost().wall_clock_seconds(),
    }
}

/// Runs every region and aggregates the results.
///
/// Every region plays on its own sub-backend, forked from `exec` with a seed derived
/// from the tournament seed and the region index (forking happens up front, in region
/// order, so recording backends assign stream keys deterministically).
/// `parallel_regions` only controls whether the host uses worker threads, not the
/// simulated cost model (regions are always charged as if they ran concurrently on
/// separate VMs, so the aggregate wall clock is the longest region, per Fig. 6's
/// "played in parallel").
pub fn run_regional_phase(
    workload: &Workload,
    partition: &IndexPartition,
    offset: u64,
    exec: &mut dyn ExecutionBackend,
    config: &TournamentConfig,
) -> (Vec<RegionalOutcome>, CostTracker) {
    let vm = exec.vm();
    let backends: Vec<Box<dyn ExecutionBackend>> = (0..partition.parts())
        .map(|region| exec.fork(region_seed(config, region)))
        .collect();
    let regions: Vec<(usize, Box<dyn ExecutionBackend>)> =
        backends.into_iter().enumerate().collect();

    let outcomes: Vec<RegionalOutcome> = if config.parallel_regions && regions.len() > 1 {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(regions.len());
        let chunk_size = regions.len().div_ceil(threads);
        let mut results: Vec<Option<RegionalOutcome>> = vec![None; regions.len()];
        let mut chunks: Vec<Vec<(usize, Box<dyn ExecutionBackend>)>> = Vec::new();
        {
            let mut regions = regions;
            while !regions.is_empty() {
                let take = chunk_size.min(regions.len());
                chunks.push(regions.drain(..take).collect());
            }
        }
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (chunk_index, chunk) in chunks.into_iter().enumerate() {
                handles.push((
                    chunk_index,
                    scope.spawn(move |_| {
                        chunk
                            .into_iter()
                            .map(|(region, mut backend)| {
                                run_region(
                                    workload,
                                    partition,
                                    region,
                                    offset,
                                    backend.as_mut(),
                                    config,
                                )
                            })
                            .collect::<Vec<_>>()
                    }),
                ));
            }
            for (chunk_index, handle) in handles {
                let chunk_results = handle.join().expect("regional worker thread panicked");
                for (i, outcome) in chunk_results.into_iter().enumerate() {
                    results[chunk_index * chunk_size + i] = Some(outcome);
                }
            }
        })
        .expect("crossbeam scope failed");
        results
            .into_iter()
            .map(|r| r.expect("every region produces an outcome"))
            .collect()
    } else {
        regions
            .into_iter()
            .map(|(region, mut backend)| {
                run_region(
                    workload,
                    partition,
                    region,
                    offset,
                    backend.as_mut(),
                    config,
                )
            })
            .collect()
    };

    // Regions run concurrently on separate VMs: core-hours add up, wall-clock is the max.
    let mut cost = CostTracker::new();
    let elapsed: Vec<f64> = outcomes.iter().map(|o| o.wall_clock_seconds).collect();
    cost.charge_parallel(vm, &elapsed);
    (outcomes, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    fn setup(regions: usize) -> (Workload, IndexPartition, TournamentConfig) {
        let workload = Workload::scaled(Application::Redis, 5_000);
        let partition = IndexPartition::new(workload.size(), regions);
        let mut config = TournamentConfig::scaled(regions, 11);
        config.players_per_game = Some(8);
        config.parallel_regions = false;
        (workload, partition, config)
    }

    /// A fresh region backend, forked the way `run_regional_phase` does it.
    fn region_backend(config: &TournamentConfig, region: usize) -> Box<dyn ExecutionBackend> {
        let mut main = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
        ExecutionBackend::fork(&mut main, region_seed(config, region))
    }

    #[test]
    fn region_produces_winners_with_score_history() {
        let (workload, partition, config) = setup(16);
        let mut exec = region_backend(&config, 3);
        let outcome = run_region(&workload, &partition, 3, 0, exec.as_mut(), &config);
        assert!(!outcome.winners.is_empty());
        assert!(outcome.games_played >= 1);
        assert!(outcome.core_hours > 0.0);
        for winner in &outcome.winners {
            assert!(winner.scores().games_played() > 0);
            assert_eq!(winner.origin_region(), Some(3));
            let range = partition.range(3);
            assert!(range.contains(&winner.config()));
        }
    }

    #[test]
    fn single_winner_ablation_limits_winners() {
        let (workload, partition, mut config) = setup(16);
        config.ablation.single_regional_winner = true;
        let mut exec = region_backend(&config, 0);
        let outcome = run_region(&workload, &partition, 0, 0, exec.as_mut(), &config);
        assert_eq!(outcome.winners.len(), 1);
    }

    #[test]
    fn non_swiss_ablation_plays_single_game() {
        let (workload, partition, mut config) = setup(16);
        config.ablation.swiss_regional = false;
        let mut exec = region_backend(&config, 1);
        let outcome = run_region(&workload, &partition, 1, 0, exec.as_mut(), &config);
        assert_eq!(outcome.games_played, 1);
    }

    #[test]
    fn regional_winners_are_better_than_region_average() {
        let (workload, partition, config) = setup(8);
        let mut exec = region_backend(&config, 2);
        let outcome = run_region(&workload, &partition, 2, 0, exec.as_mut(), &config);
        let winner_best = outcome
            .winners
            .iter()
            .map(|p| workload.base_time(p.config()))
            .fold(f64::INFINITY, f64::min);
        // Compare against the average dedicated time of a sample from the region.
        let range = partition.range(2);
        let sample: Vec<f64> = range
            .clone()
            .step_by(((range.end - range.start) / 64).max(1) as usize)
            .map(|id| workload.base_time(id))
            .collect();
        assert!(winner_best < dg_stats::mean(&sample));
    }

    #[test]
    fn phase_aggregates_cost_in_parallel() {
        let (workload, partition, config) = setup(4);
        let mut main = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
        let (outcomes, cost) = run_regional_phase(&workload, &partition, 0, &mut main, &config);
        assert_eq!(outcomes.len(), 4);
        let total_region_hours: f64 = outcomes.iter().map(|o| o.core_hours).sum();
        assert!((cost.core_hours() - total_region_hours).abs() / total_region_hours < 0.05);
        let longest = outcomes
            .iter()
            .map(|o| o.wall_clock_seconds)
            .fold(0.0_f64, f64::max);
        assert!((cost.wall_clock_seconds() - longest).abs() < 1e-6);
        // The regions' games never touch the main backend's own accounting.
        assert_eq!(main.cost().core_hours(), 0.0);
    }

    #[test]
    fn parallel_and_sequential_regions_agree() {
        let (workload, partition, mut config) = setup(4);
        let run_phase = |config: &TournamentConfig| {
            let mut main =
                CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
            run_regional_phase(&workload, &partition, 0, &mut main, config).0
        };
        config.parallel_regions = false;
        let sequential = run_phase(&config);
        config.parallel_regions = true;
        let parallel = run_phase(&config);
        let winners = |outcomes: &[RegionalOutcome]| -> Vec<ConfigId> {
            outcomes
                .iter()
                .flat_map(|o| o.winners.iter().map(Player::config))
                .collect()
        };
        assert_eq!(winners(&sequential), winners(&parallel));
        // Threading must not change how much work each region did either: identical
        // game counts and identical (bitwise) cost accounting, region by region.
        for (s, p) in sequential.iter().zip(parallel.iter()) {
            assert_eq!(s.region, p.region);
            assert_eq!(s.games_played, p.games_played);
            assert_eq!(s.core_hours.to_bits(), p.core_hours.to_bits());
            assert_eq!(
                s.wall_clock_seconds.to_bits(),
                p.wall_clock_seconds.to_bits()
            );
        }
    }
}
