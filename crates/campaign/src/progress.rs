//! Live progress metering over the campaign executor's observability events.
//!
//! The executor emits `campaign_start` / `cell_start` / `cell_finish` /
//! `campaign_finish` events through `dg-obs` (see `Campaign::execute`), each cell
//! event stamped with its deterministic **claim sequence** — the cell's 0-based
//! position in schedule order, identical for every worker count. A
//! [`ProgressMeter`] folds that stream into completion state and an ETA:
//!
//! * the *deterministic* coordinates — cells completed, estimated cost completed,
//!   total cost — derive purely from the events and the spec's per-cell budget
//!   estimates (the same quantities [`ShardPlan`](crate::ShardPlan) balances
//!   shards on), so they are identical across runs and worker counts;
//! * the *wall-clock* ETA extrapolates the observed completion rate, so it is
//!   display-only and never belongs in a canonical artifact.
//!
//! `examples/campaign_progress.rs` wires a meter to an event sink for a live
//! progress display and replays the recorded JSONL to prove 1-vs-N-worker
//! sequence equality.

use crate::spec::CampaignSpec;
use dg_obs::ObsEvent;
use std::collections::HashMap;
use std::time::Instant;

/// The per-cell cost estimates a progress stream prices cells with: each cell's
/// tuner evaluation budget, exactly as [`ShardPlan::new`](crate::ShardPlan::new)
/// costs cells when balancing shards. Indexed like [`CampaignSpec::cells`].
pub fn cell_cost_estimates(spec: &CampaignSpec) -> Vec<f64> {
    spec.cells()
        .iter()
        .map(|cell| spec.budget_for(&cell.tuner) as f64)
        .collect()
}

/// A progress update produced by [`ProgressMeter::observe`] after a cell finished.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressUpdate {
    /// The finished cell's stable grid index.
    pub index: usize,
    /// Whether the cell's backend latched a failure.
    pub failed: bool,
    /// Cells finished so far (including this one).
    pub completed_cells: usize,
    /// Cells the run scheduled.
    pub total_cells: usize,
    /// Estimated cost finished so far, in budgeted evaluations.
    pub completed_cost: f64,
    /// Total estimated cost of the scheduled cells.
    pub total_cost: f64,
    /// `completed_cost / total_cost` in `[0, 1]` (1.0 when the total is zero).
    pub fraction: f64,
    /// Wall-clock seconds remaining, extrapolated from the observed completion
    /// rate. `None` until the first cell finishes. Display-only: wall-clock derived,
    /// so never part of a canonical artifact.
    pub eta_seconds: Option<f64>,
}

/// Folds the executor's observability events into live completion state.
///
/// Feed it every event a sink receives (it ignores the ones it does not care
/// about); each `cell_finish` yields a [`ProgressUpdate`].
#[derive(Debug)]
pub struct ProgressMeter {
    total_cells: usize,
    total_cost: f64,
    completed_cells: usize,
    completed_cost: f64,
    failed_cells: usize,
    /// Estimated cost of in-flight cells, keyed by claim sequence (`cell_start`
    /// carries the estimate; `cell_finish` settles it).
    in_flight: HashMap<u64, f64>,
    started: Instant,
}

impl ProgressMeter {
    /// A meter for a whole-grid run of `spec`, pricing cells with
    /// [`cell_cost_estimates`].
    pub fn for_spec(spec: &CampaignSpec) -> Self {
        let costs = cell_cost_estimates(spec);
        Self::with_totals(costs.len(), costs.iter().sum())
    }

    /// A meter with explicit totals (e.g. one shard's cell subset).
    pub fn with_totals(total_cells: usize, total_cost: f64) -> Self {
        Self {
            total_cells,
            total_cost,
            completed_cells: 0,
            completed_cost: 0.0,
            failed_cells: 0,
            in_flight: HashMap::new(),
            started: Instant::now(),
        }
    }

    /// Cells finished so far.
    pub fn completed_cells(&self) -> usize {
        self.completed_cells
    }

    /// Cells that finished with a latched backend failure.
    pub fn failed_cells(&self) -> usize {
        self.failed_cells
    }

    /// Cells started but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Feeds one event; returns an update when it was a `cell_finish`.
    ///
    /// A `campaign_start` event re-anchors the totals (and the wall clock) to the
    /// run that actually started, which is how a meter built with placeholder
    /// totals locks onto a shard's subset.
    pub fn observe(&mut self, event: &ObsEvent) -> Option<ProgressUpdate> {
        match event {
            ObsEvent::CampaignStart {
                cells, total_cost, ..
            } => {
                self.total_cells = *cells;
                self.total_cost = *total_cost;
                self.started = Instant::now();
                None
            }
            ObsEvent::CellStart {
                cell_seq, est_cost, ..
            } => {
                self.in_flight.insert(*cell_seq, *est_cost);
                None
            }
            ObsEvent::CellFinish {
                cell_seq,
                index,
                failed,
                ..
            } => {
                let est_cost = self.in_flight.remove(cell_seq).unwrap_or(0.0);
                self.completed_cells += 1;
                self.completed_cost += est_cost;
                if *failed {
                    self.failed_cells += 1;
                }
                let fraction = if self.total_cost > 0.0 {
                    (self.completed_cost / self.total_cost).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let eta_seconds = if self.completed_cost > 0.0 {
                    let elapsed = self.started.elapsed().as_secs_f64();
                    let remaining = (self.total_cost - self.completed_cost).max(0.0);
                    Some(elapsed * remaining / self.completed_cost)
                } else {
                    None
                };
                Some(ProgressUpdate {
                    index: *index,
                    failed: *failed,
                    completed_cells: self.completed_cells,
                    total_cells: self.total_cells,
                    completed_cost: self.completed_cost,
                    total_cost: self.total_cost,
                    fraction,
                    eta_seconds,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    fn spec() -> CampaignSpec {
        let mut spec = CampaignSpec::single("progress-test", "RandomSearch", 2);
        spec.scale = ExperimentScale::smoke();
        spec
    }

    #[test]
    fn cost_estimates_match_the_shard_plan_inputs() {
        let spec = spec();
        let costs = cell_cost_estimates(&spec);
        assert_eq!(costs.len(), spec.cells().len());
        for (cell, cost) in spec.cells().iter().zip(&costs) {
            assert_eq!(*cost, spec.budget_for(&cell.tuner) as f64);
        }
    }

    #[test]
    fn meter_tracks_cost_completion_and_failures() {
        let spec = spec();
        let mut meter = ProgressMeter::for_spec(&spec);
        let costs = cell_cost_estimates(&spec);
        assert_eq!(meter.completed_cells(), 0);
        meter.observe(&ObsEvent::CampaignStart {
            campaign: "progress-test".into(),
            cells: 2,
            total_cost: costs.iter().sum(),
        });
        meter.observe(&ObsEvent::CellStart {
            campaign: "progress-test".into(),
            cell_seq: 0,
            index: 0,
            tuner: "RandomSearch".into(),
            vm: "m5.8xlarge".into(),
            est_cost: costs[0],
        });
        assert_eq!(meter.in_flight(), 1);
        let update = meter
            .observe(&ObsEvent::CellFinish {
                campaign: "progress-test".into(),
                cell_seq: 0,
                index: 0,
                core_hours: 0.5,
                mean_time: 100.0,
                failed: true,
            })
            .expect("finish yields an update");
        assert_eq!(update.completed_cells, 1);
        assert_eq!(update.total_cells, 2);
        assert_eq!(update.completed_cost, costs[0]);
        assert!((update.fraction - 0.5).abs() < 1e-12);
        assert!(update.failed);
        assert!(update.eta_seconds.is_some());
        assert_eq!(meter.failed_cells(), 1);
        assert_eq!(meter.in_flight(), 0);
    }

    #[test]
    fn non_cell_events_are_ignored() {
        let mut meter = ProgressMeter::with_totals(1, 1.0);
        assert!(meter
            .observe(&ObsEvent::Round {
                phase: "regional".into(),
                round: 0,
                games: 4,
            })
            .is_none());
        assert_eq!(meter.completed_cells(), 0);
    }
}
