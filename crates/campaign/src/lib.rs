//! Parallel experiment campaigns for the DarwinGame reproduction.
//!
//! The paper's evaluation is not one tournament but thousands: sweeps over tuners,
//! applications, VM types, interference profiles, cloud scenarios, and seeds
//! (Figs. 10–16, Table 1). This crate turns "run one tuning session" into "run a
//! campaign":
//!
//! * [`CampaignSpec`] declares the cross-product grid plus per-axis budget overrides
//!   and optional budget caps; its scenario axis (`dg-scenario`'s [`ScenarioSpec`])
//!   sweeps the same grid across dynamic cloud regimes — preemptions, diurnal load,
//!   regime shifts, heterogeneous fleets — with the default `steady` scenario
//!   reproducing scenario-less campaigns byte-identically;
//! * [`Campaign`] fans the cells out across worker threads (a shared-cursor
//!   work-stealing pool over the `crossbeam` scoped-thread shim) while keeping results
//!   **deterministic**: every cell derives its RNG streams from
//!   [`CampaignSpec::cell_seed`] (built on [`dg_cloudsim::mix`]) and results are
//!   collected in stable grid order, so the report is byte-identical whether it ran on
//!   one worker or thirty-two (the best-effort `max_core_hours` cap is the one
//!   scheduling-dependent feature; see [`CampaignSpec`]);
//! * results stream into `dg-stats` online accumulators per `(tuner, application, vm,
//!   profile)` group and land in a [`CampaignReport`] with canonical JSON emission
//!   ([`CampaignReport::to_json`]) and a compact text summary
//!   ([`CampaignReport::summary_table`]);
//! * campaigns also shard across OS processes or hosts: a [`ShardPlan`] deterministically
//!   partitions the cell index space, [`Campaign::run_shard`] produces a [`ShardReport`]
//!   (canonical JSON in both directions), and [`CampaignReport::merge`] reassembles the
//!   shards into a report byte-identical to a single-host run (see the [`shard`
//!   module](crate::ShardPlan) docs);
//! * campaigns resume: a [`CampaignLab`] is a persistent directory that flushes every
//!   completed cell as a single-cell [`ShardReport`] the moment it finishes, so a
//!   killed run ([`Campaign::run_lab_session`]) resumes by skipping completed cells —
//!   real-process backends launch zero processes for them — and the final merged
//!   report is byte-identical to an uninterrupted run.
//!
//! # Quick example
//!
//! ```
//! use dg_campaign::{Campaign, CampaignSpec, ExperimentScale};
//!
//! let mut spec = CampaignSpec::single("demo", "RandomSearch", 2);
//! spec.scale = ExperimentScale::smoke();
//! let report = Campaign::new(spec).run_with_workers(2);
//! assert_eq!(report.completed_cells(), 2);
//! assert!(report.to_json().contains("\"tuner\":\"RandomSearch\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod lab;
mod progress;
mod report;
mod retune;
mod scale;
mod shard;
mod spec;

pub use dg_exec::{BackendProvider, ExecutionTrace, SurrogateConfig, TraceError};
pub use dg_scenario::{ScenarioBackend, ScenarioEvent, ScenarioProvider, ScenarioSpec};
pub use executor::{default_workers, register_darwin_variant, standard_registry, Campaign};
pub use lab::{CampaignLab, LabError, LabOutcome};
pub use progress::{cell_cost_estimates, ProgressMeter, ProgressUpdate};
pub use report::{CampaignReport, CellResult, GroupSummary};
pub use retune::{
    RetuneCellCoord, RetuneCellResult, RetunePolicy, RetuneReport, RetuneScenarioSummary,
    RetuneSpec,
};
pub use scale::ExperimentScale;
pub use shard::{MergeError, PlanError, ShardParseError, ShardPlan, ShardReport, ShardStrategy};
pub use spec::{profile_label, CampaignSpec, CellCoord};
