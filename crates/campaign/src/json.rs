//! Canonical JSON emission.
//!
//! The vendored `serde` is a no-op shim (see `vendor/README.md`), so campaign reports
//! serialize through this small hand-rolled writer instead. The output is *canonical*:
//! fixed key order, no whitespace, and floats rendered with Rust's shortest-round-trip
//! `Display` — so two reports with identical contents produce byte-identical strings,
//! which the campaign determinism tests (1 worker vs N workers) rely on.

use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub(crate) fn push_str_literal(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `value`; non-finite values become `null` (JSON has no
/// representation for them).
pub(crate) fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        // Rust's f64 Display is the shortest decimal string that round-trips, never in
        // scientific notation — both JSON-valid and deterministic.
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

/// Appends `"key":` to an object body, handling the leading comma.
pub(crate) fn push_key(out: &mut String, first: &mut bool, key: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_str_literal(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn control_characters_use_unicode_escapes() {
        let mut out = String::new();
        push_str_literal(&mut out, "\u{01}");
        assert_eq!(out, "\"\\u0001\"");
    }

    #[test]
    fn floats_render_shortest_round_trip() {
        let mut out = String::new();
        push_f64(&mut out, 245.3);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "245.3 null null");
    }

    #[test]
    fn keys_are_comma_separated() {
        let mut out = String::from("{");
        let mut first = true;
        push_key(&mut out, &mut first, "a");
        out.push('1');
        push_key(&mut out, &mut first, "b");
        out.push('2');
        out.push('}');
        assert_eq!(out, r#"{"a":1,"b":2}"#);
    }
}
