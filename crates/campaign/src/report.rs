//! Campaign results: per-cell records, per-group streaming aggregates, JSON emission,
//! and compact text summaries.

use dg_exec::json::{push_f64, push_key, push_str_literal};
use dg_stats::{Column, EmpiricalCdf, OnlineStats, Table};
use serde::{Deserialize, Serialize};

/// The result of one completed campaign cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Position in the campaign grid.
    pub index: usize,
    /// Tuner-axis name (the registry name, which may differ from the tuner's own
    /// display name for registered variants).
    pub tuner: String,
    /// Application name.
    pub application: String,
    /// VM-type name.
    pub vm: String,
    /// Interference-profile label.
    pub profile: String,
    /// Scenario name (`"steady"` for the default pass-through scenario).
    pub scenario: String,
    /// Seed-axis value (replicate id).
    pub seed: u64,
    /// The configuration the tuner selected.
    pub chosen: u64,
    /// Mean execution time of the chosen configuration over the repeated later
    /// measurements (seconds).
    pub mean_time: f64,
    /// Coefficient of variation of those measurements (%).
    pub cov_percent: f64,
    /// Number of configuration evaluations the tuner performed.
    pub samples: usize,
    /// Core-hours consumed by tuning this cell.
    pub core_hours: f64,
    /// Simulated wall-clock seconds of tuning this cell.
    pub wall_clock_seconds: f64,
    /// Evaluations answered by the cell's surrogate model (see
    /// `dg_exec::SurrogateBackend`) instead of the real backend: cost-free model
    /// serves of solo evaluations plus observations. `0` for cells run without an
    /// active surrogate, which serialize without a `model_evals` key — pre-surrogate
    /// reports stay byte-identical.
    pub model_evals: u64,
    /// The execution backend's permanent failure, if the cell's backend hit one (see
    /// `ExecutionBackend::failure`) — real-process cells whose command crashed, timed
    /// out, or skipped its completion marker land here with `f64::INFINITY`-poisoned
    /// metrics instead of being dropped, so resumed campaigns skip them. `None` cells
    /// serialize without a `failure` key (pre-ProcessBackend byte compatibility).
    pub failure: Option<String>,
}

/// The scenario label of the default pass-through scenario. Cells and groups carrying
/// it serialize without a `scenario` key, so default-axis reports stay byte-identical
/// to reports produced before the scenario axis existed; parsers treat a missing key
/// as this label.
pub(crate) const STEADY_SCENARIO: &str = "steady";

impl CellResult {
    fn group_key(&self) -> (&str, &str, &str, &str, &str) {
        (
            &self.tuner,
            &self.application,
            &self.vm,
            &self.profile,
            &self.scenario,
        )
    }

    pub(crate) fn to_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        push_key(out, &mut first, "index");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", self.index));
        push_key(out, &mut first, "tuner");
        push_str_literal(out, &self.tuner);
        push_key(out, &mut first, "application");
        push_str_literal(out, &self.application);
        push_key(out, &mut first, "vm");
        push_str_literal(out, &self.vm);
        push_key(out, &mut first, "profile");
        push_str_literal(out, &self.profile);
        if self.scenario != STEADY_SCENARIO {
            push_key(out, &mut first, "scenario");
            push_str_literal(out, &self.scenario);
        }
        push_key(out, &mut first, "seed");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", self.seed));
        push_key(out, &mut first, "chosen");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", self.chosen));
        push_key(out, &mut first, "mean_time");
        push_f64(out, self.mean_time);
        push_key(out, &mut first, "cov_percent");
        push_f64(out, self.cov_percent);
        push_key(out, &mut first, "samples");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", self.samples));
        push_key(out, &mut first, "core_hours");
        push_f64(out, self.core_hours);
        push_key(out, &mut first, "wall_clock_seconds");
        push_f64(out, self.wall_clock_seconds);
        if self.model_evals > 0 {
            push_key(out, &mut first, "model_evals");
            let _ = std::fmt::Write::write_fmt(out, format_args!("{}", self.model_evals));
        }
        if let Some(failure) = &self.failure {
            push_key(out, &mut first, "failure");
            push_str_literal(out, failure);
        }
        out.push('}');
    }
}

/// Streaming aggregate over all completed cells that share a `(tuner, application, vm,
/// profile, scenario)` coordinate — i.e. over the seed axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Tuner-axis name.
    pub tuner: String,
    /// Application name.
    pub application: String,
    /// VM-type name.
    pub vm: String,
    /// Interference-profile label.
    pub profile: String,
    /// Scenario name (`"steady"` for the default pass-through scenario).
    pub scenario: String,
    /// Number of completed cells in the group.
    pub cells: usize,
    /// Mean over the group's per-cell mean execution times (seconds).
    pub mean_time: f64,
    /// Coefficient of variation across the group's per-cell mean times (%): run-to-run
    /// tuner instability, the quantity behind Fig. 3.
    pub across_seed_cov_percent: f64,
    /// Mean of the per-cell CoV (%): within-choice measurement variability.
    pub mean_cov_percent: f64,
    /// Median of the per-cell mean times (seconds).
    pub p50_time: f64,
    /// 90th percentile of the per-cell mean times (seconds).
    pub p90_time: f64,
    /// Total tuning core-hours of the group.
    pub core_hours: f64,
}

impl GroupSummary {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        push_key(out, &mut first, "tuner");
        push_str_literal(out, &self.tuner);
        push_key(out, &mut first, "application");
        push_str_literal(out, &self.application);
        push_key(out, &mut first, "vm");
        push_str_literal(out, &self.vm);
        push_key(out, &mut first, "profile");
        push_str_literal(out, &self.profile);
        if self.scenario != STEADY_SCENARIO {
            push_key(out, &mut first, "scenario");
            push_str_literal(out, &self.scenario);
        }
        push_key(out, &mut first, "cells");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", self.cells));
        push_key(out, &mut first, "mean_time");
        push_f64(out, self.mean_time);
        push_key(out, &mut first, "across_seed_cov_percent");
        push_f64(out, self.across_seed_cov_percent);
        push_key(out, &mut first, "mean_cov_percent");
        push_f64(out, self.mean_cov_percent);
        push_key(out, &mut first, "p50_time");
        push_f64(out, self.p50_time);
        push_key(out, &mut first, "p90_time");
        push_f64(out, self.p90_time);
        push_key(out, &mut first, "core_hours");
        push_f64(out, self.core_hours);
        out.push('}');
    }
}

/// One-pass accumulator behind a [`GroupSummary`].
struct GroupAccumulator {
    tuner: String,
    application: String,
    vm: String,
    profile: String,
    scenario: String,
    times: OnlineStats,
    covs: OnlineStats,
    hours_sum: f64,
    mean_times: Vec<f64>,
}

impl GroupAccumulator {
    fn new(cell: &CellResult) -> Self {
        Self {
            tuner: cell.tuner.clone(),
            application: cell.application.clone(),
            vm: cell.vm.clone(),
            profile: cell.profile.clone(),
            scenario: cell.scenario.clone(),
            times: OnlineStats::new(),
            covs: OnlineStats::new(),
            hours_sum: 0.0,
            mean_times: Vec::new(),
        }
    }

    fn push(&mut self, cell: &CellResult) {
        self.times.push(cell.mean_time);
        self.covs.push(cell.cov_percent);
        self.hours_sum += cell.core_hours;
        self.mean_times.push(cell.mean_time);
    }

    fn finish(self) -> GroupSummary {
        let cdf = EmpiricalCdf::from_samples(&self.mean_times);
        GroupSummary {
            tuner: self.tuner,
            application: self.application,
            vm: self.vm,
            profile: self.profile,
            scenario: self.scenario,
            cells: self.times.count() as usize,
            mean_time: self.times.mean(),
            across_seed_cov_percent: self.times.coefficient_of_variation(),
            mean_cov_percent: self.covs.mean(),
            p50_time: cdf.quantile(0.5),
            p90_time: cdf.quantile(0.9),
            core_hours: self.hours_sum,
        }
    }
}

/// The full result of one campaign run.
///
/// The report deliberately records nothing about the host — no worker count, no host
/// wall-clock — so an uncapped (or `max_cells`-capped) spec serializes to byte-identical
/// JSON whether it ran on one worker or thirty-two. A `max_core_hours`-capped run may
/// complete a scheduling-dependent set of cells, but the report always describes exactly
/// that completed set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name, copied from the spec.
    pub name: String,
    /// Size of the full cross-product grid.
    pub grid_cells: usize,
    /// Cells scheduled after the deterministic `max_cells` cap.
    pub scheduled_cells: usize,
    /// True when the core-hour budget cap stopped the campaign before every scheduled
    /// cell ran.
    pub budget_exhausted: bool,
    /// Total tuning core-hours over all completed cells.
    pub total_core_hours: f64,
    /// Every completed cell, in stable grid order.
    pub cells: Vec<CellResult>,
    /// Per-`(tuner, application, vm, profile, scenario)` aggregates over the seed
    /// axis, in first-appearance (grid) order.
    pub groups: Vec<GroupSummary>,
}

impl CampaignReport {
    /// Assembles a report from completed cells (already in stable grid order).
    pub(crate) fn from_cells(
        name: String,
        grid_cells: usize,
        scheduled_cells: usize,
        budget_exhausted: bool,
        cells: Vec<CellResult>,
    ) -> Self {
        let mut accumulators: Vec<GroupAccumulator> = Vec::new();
        let mut total_core_hours = 0.0;
        for cell in &cells {
            total_core_hours += cell.core_hours;
            match accumulators.iter_mut().find(|a| {
                (
                    a.tuner.as_str(),
                    a.application.as_str(),
                    a.vm.as_str(),
                    a.profile.as_str(),
                    a.scenario.as_str(),
                ) == cell.group_key()
            }) {
                Some(accumulator) => accumulator.push(cell),
                None => {
                    let mut accumulator = GroupAccumulator::new(cell);
                    accumulator.push(cell);
                    accumulators.push(accumulator);
                }
            }
        }
        Self {
            name,
            grid_cells,
            scheduled_cells,
            budget_exhausted,
            total_core_hours,
            cells,
            groups: accumulators
                .into_iter()
                .map(GroupAccumulator::finish)
                .collect(),
        }
    }

    /// Number of completed cells.
    pub fn completed_cells(&self) -> usize {
        self.cells.len()
    }

    /// Canonical JSON serialization: fixed key order, no whitespace, shortest
    /// round-trip float rendering. Byte-identical for identical reports.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 256);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "name");
        push_str_literal(&mut out, &self.name);
        push_key(&mut out, &mut first, "grid_cells");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.grid_cells));
        push_key(&mut out, &mut first, "scheduled_cells");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.scheduled_cells));
        push_key(&mut out, &mut first, "completed_cells");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.cells.len()));
        push_key(&mut out, &mut first, "budget_exhausted");
        out.push_str(if self.budget_exhausted {
            "true"
        } else {
            "false"
        });
        push_key(&mut out, &mut first, "total_core_hours");
        push_f64(&mut out, self.total_core_hours);
        push_key(&mut out, &mut first, "cells");
        out.push('[');
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            cell.to_json(&mut out);
        }
        out.push(']');
        push_key(&mut out, &mut first, "groups");
        out.push('[');
        for (i, group) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            group.to_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// A compact text table over the group aggregates, one row per group.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(vec![
            Column::left("tuner"),
            Column::left("application"),
            Column::left("VM"),
            Column::left("profile"),
            Column::left("scenario"),
            Column::right("cells"),
            Column::right("mean time (s)"),
            Column::right("seed CoV (%)"),
            Column::right("meas. CoV (%)"),
            Column::right("core-hours"),
        ]);
        for group in &self.groups {
            table.push_row(vec![
                group.tuner.clone(),
                group.application.clone(),
                group.vm.clone(),
                group.profile.clone(),
                group.scenario.clone(),
                format!("{}", group.cells),
                format!("{:.1}", group.mean_time),
                format!("{:.2}", group.across_seed_cov_percent),
                format!("{:.2}", group.mean_cov_percent),
                format!("{:.1}", group.core_hours),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(index: usize, tuner: &str, seed: u64, mean_time: f64) -> CellResult {
        CellResult {
            index,
            tuner: tuner.into(),
            application: "Redis".into(),
            vm: "m5.8xlarge".into(),
            profile: "typical".into(),
            scenario: STEADY_SCENARIO.into(),
            seed,
            chosen: 42,
            mean_time,
            cov_percent: 1.0,
            samples: 10,
            core_hours: 2.0,
            wall_clock_seconds: 600.0,
            model_evals: 0,
            failure: None,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport::from_cells(
            "unit".into(),
            4,
            4,
            false,
            vec![
                cell(0, "Random", 0, 100.0),
                cell(1, "Random", 1, 110.0),
                cell(2, "BLISS", 0, 90.0),
                cell(3, "BLISS", 1, 95.0),
            ],
        )
    }

    #[test]
    fn groups_aggregate_over_the_seed_axis() {
        let report = report();
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.groups[0].tuner, "Random");
        assert_eq!(report.groups[0].cells, 2);
        assert!((report.groups[0].mean_time - 105.0).abs() < 1e-9);
        assert!(report.groups[0].across_seed_cov_percent > 0.0);
        assert!((report.groups[1].mean_time - 92.5).abs() < 1e-9);
        assert!((report.total_core_hours - 8.0).abs() < 1e-12);
        assert!((report.groups[0].core_hours - 4.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_come_from_the_group_cdf() {
        let report = report();
        let g = &report.groups[0];
        assert_eq!(g.p50_time.min(g.p90_time), g.p50_time);
        assert!(g.p50_time >= 100.0 && g.p90_time <= 110.0);
    }

    #[test]
    fn json_is_stable_and_contains_every_section() {
        let a = report().to_json();
        let b = report().to_json();
        assert_eq!(a, b, "identical reports must serialize identically");
        assert!(a.starts_with('{') && a.ends_with('}'));
        for key in [
            "\"name\":\"unit\"",
            "\"grid_cells\":4",
            "\"completed_cells\":4",
            "\"budget_exhausted\":false",
            "\"cells\":[",
            "\"groups\":[",
            "\"tuner\":\"Random\"",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
    }

    #[test]
    fn scenarios_split_groups_and_only_non_steady_labels_serialize() {
        let mut shifted = cell(2, "Random", 0, 130.0);
        shifted.scenario = "regime-shift".into();
        let report = CampaignReport::from_cells(
            "scenario-split".into(),
            3,
            3,
            false,
            vec![
                cell(0, "Random", 0, 100.0),
                cell(1, "Random", 1, 110.0),
                shifted,
            ],
        );
        assert_eq!(
            report.groups.len(),
            2,
            "different scenarios must not share a group"
        );
        assert_eq!(report.groups[0].scenario, "steady");
        assert_eq!(report.groups[1].scenario, "regime-shift");
        let json = report.to_json();
        assert_eq!(
            json.matches("\"scenario\":\"regime-shift\"").count(),
            2,
            "one cell + one group carry the label"
        );
        assert!(
            !json.contains("\"scenario\":\"steady\""),
            "steady cells serialize without a scenario key (pre-axis byte compatibility)"
        );
    }

    #[test]
    fn model_evals_serialize_only_when_present() {
        let plain = cell(0, "Random", 0, 100.0);
        let mut out = String::new();
        plain.to_json(&mut out);
        assert!(
            !out.contains("model_evals"),
            "surrogate-less cells must keep the pre-surrogate schema: {out}"
        );

        let mut served = cell(1, "NTBEA", 0, 90.0);
        served.model_evals = 17;
        let mut out = String::new();
        served.to_json(&mut out);
        assert!(
            out.contains("\"wall_clock_seconds\":600,\"model_evals\":17}"),
            "model_evals sits after wall_clock_seconds: {out}"
        );
    }

    #[test]
    fn summary_table_has_one_row_per_group() {
        let report = report();
        let table = report.summary_table();
        assert_eq!(table.len(), 2);
        let rendered = table.render();
        assert!(rendered.contains("Random") && rendered.contains("BLISS"));
    }

    #[test]
    fn empty_report_is_valid() {
        let report = CampaignReport::from_cells("empty".into(), 4, 2, true, Vec::new());
        assert_eq!(report.completed_cells(), 0);
        assert!(report.groups.is_empty());
        assert!(report.budget_exhausted);
        let json = report.to_json();
        assert!(json.contains("\"cells\":[]"));
    }
}
