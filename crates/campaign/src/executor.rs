//! The parallel campaign executor.
//!
//! Cells are independent by construction — each derives every RNG stream from its own
//! [`CampaignSpec::cell_seed`] — so the executor can fan them out across worker threads
//! with a shared atomic cursor (work stealing degenerates to "take the next unstarted
//! cell", which is optimal when cells are independent and of similar cost). Results are
//! collected into a slot per grid position and assembled in stable grid order, so for
//! uncapped (and `max_cells`-capped) campaigns the [`CampaignReport`] is byte-for-byte
//! identical no matter how many workers ran or in which order cells completed. The one
//! exception is the *best-effort* `max_core_hours` cap: which cells are still in flight
//! when it trips depends on scheduling, so a capped run's completed set can vary with
//! worker count — the report always describes exactly the cells that completed.

use crate::lab::{CampaignLab, LabError, LabOutcome};
use crate::report::{CampaignReport, CellResult};
use crate::scale::ExperimentScale;
use crate::shard::{ShardPlan, ShardReport};
use crate::spec::{profile_label, CampaignSpec, CellCoord};
use darwin_core::{AblationConfig, DarwinGame, TournamentConfig};
use dg_exec::{
    BackendProvider, ExecutionTrace, SimProvider, SurrogateBackend, SurrogateStats, TraceError,
    TraceRecorder, TraceReplayer,
};
use dg_obs::{emit_with, ObsEvent};
use dg_scenario::ScenarioBackend;
use dg_tuners::{TunerRegistry, TuningBudget};
use dg_workloads::Workload;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A registry with everything the standard experiments sweep over: the `dg-tuners`
/// baselines plus `"DarwinGame"` configured from `scale` (regions, players per game
/// clamped to the cell's VM).
///
/// The registered DarwinGame runs its regional phase serially: the campaign executor
/// already saturates the host across cells, so nested per-region threads would only
/// oversubscribe it.
pub fn standard_registry(scale: &ExperimentScale) -> TunerRegistry {
    let mut registry = TunerRegistry::baselines();
    register_darwin_variant(&mut registry, "DarwinGame", scale, AblationConfig::full());
    registry
}

/// Registers a DarwinGame variant with the given ablation switches under `name`.
/// Used by the ablation campaigns (Fig. 16), where each variant is one tuner-axis entry.
pub fn register_darwin_variant(
    registry: &mut TunerRegistry,
    name: impl Into<String>,
    scale: &ExperimentScale,
    ablation: AblationConfig,
) {
    let scale = *scale;
    registry.register(name, move |seed, vm| {
        let mut config = TournamentConfig::scaled(scale.regions, seed);
        config.players_per_game = Some(scale.players_per_game.min(vm.vcpus()).max(2));
        config.parallel_regions = false;
        config.ablation = ablation;
        Box::new(DarwinGame::new(config))
    });
}

/// The per-cell completion callback [`Campaign::execute`] drives: the finished cell
/// plus its claim sequence (its 0-based position in schedule order).
type CellCallback<'a> = &'a (dyn Fn(&CellResult, u64) + Sync);

/// A campaign ready to run: a validated spec plus the tuner registry resolving its
/// tuner axis.
pub struct Campaign {
    spec: CampaignSpec,
    registry: TunerRegistry,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("spec", &self.spec.name)
            .field("grid_cells", &self.spec.grid_size())
            .finish()
    }
}

impl Campaign {
    /// Creates a campaign over the [`standard_registry`] for the spec's scale.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or names a tuner the standard registry lacks.
    pub fn new(spec: CampaignSpec) -> Self {
        let registry = standard_registry(&spec.scale);
        Self::with_registry(spec, registry)
    }

    /// Creates a campaign over a custom registry (ablation variants, hybrid tuners,
    /// user-registered factories).
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or names a tuner the registry lacks.
    pub fn with_registry(spec: CampaignSpec, registry: TunerRegistry) -> Self {
        spec.validate();
        for tuner in &spec.tuners {
            assert!(
                registry.contains(tuner),
                "tuner {tuner:?} is not in the registry (registered: {:?})",
                registry.names()
            );
        }
        Self { spec, registry }
    }

    /// The campaign's spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Runs the campaign on one worker per available CPU.
    pub fn run(&self) -> CampaignReport {
        self.run_with_workers(default_workers())
    }

    /// Runs the campaign while recording every backend outcome, returning the report
    /// plus an [`ExecutionTrace`] that [`replay`](Self::replay) can turn back into the
    /// byte-identical report with zero resimulation.
    pub fn record(&self) -> (CampaignReport, ExecutionTrace) {
        self.record_with_workers(default_workers())
    }

    /// [`record`](Self::record) on exactly `workers` worker threads.
    pub fn record_with_workers(&self, workers: usize) -> (CampaignReport, ExecutionTrace) {
        let recorder = TraceRecorder::new(
            Box::new(SimProvider),
            self.spec.name.clone(),
            self.spec.fingerprint(),
        );
        let report = self.run_with_provider(&recorder, workers);
        (report, recorder.finish())
    }

    /// Replays a recorded campaign: every cell's outcomes are answered from `trace`
    /// instead of the simulator, which turns repeated sweeps into near-instant
    /// replays. The report is byte-identical to the recorded (live) run.
    ///
    /// For a `max_core_hours`-capped campaign the trace's recorded cell set *is* the
    /// cap decision (the live run recorded exactly the cells that completed), so
    /// replay runs precisely those cells with the cap itself disabled — the recorded
    /// subset replays byte-identically no matter how the live run was scheduled.
    ///
    /// # Errors
    ///
    /// Returns a typed [`TraceError`] when the trace does not belong to this campaign:
    /// a different spec fingerprint, a different campaign name, or (for uncapped
    /// specs, where every scheduled cell must have run) missing cell streams.
    pub fn replay(
        &self,
        trace: impl Into<Arc<ExecutionTrace>>,
    ) -> Result<CampaignReport, TraceError> {
        self.replay_with_workers(trace, default_workers())
    }

    /// [`replay`](Self::replay) on exactly `workers` worker threads.
    ///
    /// Accepts the trace by value or as an `Arc` — repeated replays of one parsed
    /// trace should pass `Arc` clones so nothing is deep-copied per replay.
    pub fn replay_with_workers(
        &self,
        trace: impl Into<Arc<ExecutionTrace>>,
        workers: usize,
    ) -> Result<CampaignReport, TraceError> {
        let trace: Arc<ExecutionTrace> = trace.into();
        let expected = self.spec.fingerprint();
        if trace.fingerprint != expected {
            return Err(TraceError::FingerprintMismatch {
                expected,
                found: trace.fingerprint,
            });
        }
        if trace.campaign != self.spec.name {
            return Err(TraceError::CampaignMismatch {
                expected: self.spec.name.clone(),
                found: trace.campaign.clone(),
            });
        }
        // A capped live run legitimately skips cells (and records no stream for
        // them); replay exactly the recorded subset. Without a cap, every scheduled
        // cell must have a stream — a gap means the trace is truncated or foreign.
        let capped = self.spec.max_core_hours.is_some();
        let scheduled: Vec<CellCoord> = self.spec.cells();
        let mut recorded: Vec<CellCoord> = Vec::with_capacity(scheduled.len());
        for cell in scheduled.iter().cloned() {
            let stream = cell_stream(&cell);
            if trace.stream(&stream).is_some() {
                recorded.push(cell);
            } else if !capped {
                return Err(TraceError::MissingStream { stream });
            }
        }
        let replayer = TraceReplayer::new(trace);
        // The cap is not re-applied: replayed costs are bitwise-identical, and which
        // cells the cap allowed is already encoded in the recorded subset. A capped
        // run completed fewer cells than scheduled if and only if the cap stopped it,
        // which is exactly the live report's `budget_exhausted` condition.
        let (completed, _stopped) = self.execute(&replayer, &recorded, workers, None, None);
        let budget_exhausted = completed.len() < scheduled.len();
        Ok(CampaignReport::from_cells(
            self.spec.name.clone(),
            self.spec.grid_size(),
            scheduled.len(),
            budget_exhausted,
            completed,
        ))
    }

    /// Runs the campaign on exactly `workers` worker threads.
    ///
    /// Without a `max_core_hours` cap the report is identical (byte-for-byte in its
    /// JSON form) for every `workers` value; only host wall-clock time changes. With
    /// the cap, the completed cell set can depend on scheduling (cells already in
    /// flight when the cap trips still finish), but the report always lists exactly
    /// the completed cells.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn run_with_workers(&self, workers: usize) -> CampaignReport {
        self.run_with_provider(&SimProvider, workers)
    }

    /// Runs the campaign with every cell's backend supplied by `provider` — the
    /// extension point record/replay, memoization, and future real-process or
    /// surrogate backends plug into.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn run_with_provider(
        &self,
        provider: &dyn BackendProvider,
        workers: usize,
    ) -> CampaignReport {
        let cells = self.spec.cells();
        let scheduled = cells.len();
        let (completed, stopped) =
            self.execute(provider, &cells, workers, self.spec.max_core_hours, None);
        // The cap may trip on the very last scheduled cell; that run is complete, not
        // truncated, so `budget_exhausted` additionally requires unfinished cells.
        let budget_exhausted = stopped && completed.len() < scheduled;
        CampaignReport::from_cells(
            self.spec.name.clone(),
            self.spec.grid_size(),
            scheduled,
            budget_exhausted,
            completed,
        )
    }

    /// Runs one shard of a sharded campaign on one worker per available CPU.
    ///
    /// See [`run_shard_with_workers`](Self::run_shard_with_workers).
    pub fn run_shard(&self, plan: &ShardPlan, shard: usize) -> ShardReport {
        self.run_shard_with_workers(plan, shard, default_workers())
    }

    /// Runs exactly the cells `plan` assigns to `shard`, on `workers` threads, and
    /// returns the [`ShardReport`] the merging process consumes.
    ///
    /// Each cell derives every RNG stream from its stable grid index, so the per-cell
    /// results are identical to what a whole-campaign run would have produced for the
    /// same indices — [`CampaignReport::merge`] exploits that to reassemble a report
    /// that is byte-identical to the single-host one. A `max_core_hours` cap applies
    /// *per shard process* in a sharded run (each process only sees its own spend).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, if `shard` is out of range, or if `plan` was built
    /// from a spec with a different [`fingerprint`](CampaignSpec::fingerprint) than
    /// this campaign's.
    pub fn run_shard_with_workers(
        &self,
        plan: &ShardPlan,
        shard: usize,
        workers: usize,
    ) -> ShardReport {
        assert_eq!(
            plan.fingerprint(),
            self.spec.fingerprint(),
            "shard plan was built from a different campaign spec"
        );
        let all = self.spec.cells();
        let indices = plan.indices(shard);
        let cells: Vec<CellCoord> = indices.iter().map(|i| all[*i].clone()).collect();
        let (completed, stopped) = self.execute(
            &SimProvider,
            &cells,
            workers,
            self.spec.max_core_hours,
            None,
        );
        ShardReport {
            campaign: self.spec.name.clone(),
            fingerprint: plan.fingerprint(),
            shard,
            shard_count: plan.shard_count(),
            strategy: plan.strategy().name().to_string(),
            grid_cells: self.spec.grid_size(),
            scheduled_cells: plan.scheduled_cells(),
            assigned: indices.to_vec(),
            budget_exhausted: stopped && completed.len() < indices.len(),
            cells: completed,
        }
    }

    /// Runs the campaign incrementally inside `lab` on the simulation provider, one
    /// worker per CPU, with no session cap. See
    /// [`run_lab_session`](Self::run_lab_session).
    ///
    /// # Errors
    ///
    /// Returns a [`LabError`] when the lab cannot be read or written.
    pub fn run_lab(&self, lab: &CampaignLab) -> Result<LabOutcome, LabError> {
        self.run_lab_session(lab, &SimProvider, default_workers(), None)
    }

    /// Runs one **lab session**: loads the completed cells already in `lab`, executes
    /// only the missing ones (at most `max_new_cells` of them, all when `None`) with
    /// backends from `provider`, and flushes each cell to disk the moment it
    /// completes — a killed session loses only the cells in flight.
    ///
    /// Completed cells are *never* re-run: a real-process provider launches zero
    /// processes for them on resume. When the session leaves the lab complete, the
    /// returned [`LabOutcome::report`] is the merged [`CampaignReport`], byte-identical
    /// (in its JSON form) to an uninterrupted single-session run — or to any other
    /// kill/resume schedule. The spec's `max_core_hours` cap does not apply to lab
    /// sessions; `max_new_cells` is the session-sizing knob.
    ///
    /// # Errors
    ///
    /// Returns a [`LabError`] when the lab cannot be read, a cell fails to flush, or
    /// the completed cells fail to merge.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `lab` was opened for a spec with a different
    /// [`fingerprint`](CampaignSpec::fingerprint).
    pub fn run_lab_session(
        &self,
        lab: &CampaignLab,
        provider: &dyn BackendProvider,
        workers: usize,
        max_new_cells: Option<usize>,
    ) -> Result<LabOutcome, LabError> {
        assert_eq!(
            lab.fingerprint(),
            self.spec.fingerprint(),
            "lab was opened for a different campaign spec"
        );
        let (on_disk, discarded_cells) = lab.load_cells()?;
        let all = self.spec.cells();
        let mut missing: Vec<CellCoord> = all
            .iter()
            .filter(|cell| !on_disk.contains_key(&cell.index))
            .cloned()
            .collect();
        if let Some(cap) = max_new_cells {
            missing.truncate(cap);
        }
        let loaded_cells = on_disk.len();
        let fresh_cells = missing.len();
        emit_with(|| ObsEvent::LabSession {
            campaign: self.spec.name.clone(),
            loaded: loaded_cells,
            fresh: fresh_cells,
            discarded: discarded_cells,
        });
        if !missing.is_empty() {
            // Workers flush from their own threads; only the first flush error is
            // kept (later ones are almost certainly the same full disk).
            let flush_error: Mutex<Option<LabError>> = Mutex::new(None);
            let flush = |result: &CellResult, _cell_seq: u64| {
                if let Err(error) = lab.flush_cell(result) {
                    let mut slot = flush_error.lock().expect("flush error lock poisoned");
                    if slot.is_none() {
                        *slot = Some(error);
                    }
                }
            };
            let _ = self.execute(provider, &missing, workers, None, Some(&flush));
            if let Some(error) = flush_error.into_inner().expect("flush error lock poisoned") {
                return Err(error);
            }
        }
        // Re-read from disk rather than trusting in-memory results: the files are the
        // source of truth a resumed session will see.
        let report = lab.merge_if_complete()?;
        Ok(LabOutcome {
            report,
            loaded_cells,
            fresh_cells,
            discarded_cells,
        })
    }

    /// The shared worker pool: runs `cells` (any subset of the grid, in any order)
    /// across `workers` threads and returns the completed results in the same order as
    /// `cells`, plus whether the `max_core_hours` cap tripped. The cap is passed
    /// explicitly because replay disables it (the recorded cell set already embodies
    /// the live cap decision). `on_cell` is invoked on the worker thread as soon as
    /// each cell completes — the campaign lab uses it to flush results to disk before
    /// the run finishes, so an interrupted run loses at most the cells in flight.
    ///
    /// The callback's second argument is the cell's **claim sequence**: the value of
    /// the shared cursor when a worker claimed the cell, i.e. its 0-based position in
    /// schedule order. Completion (and therefore callback) order is racy across
    /// workers, but the claim sequence is identical for every worker count, so a
    /// progress stream sorted by it reproduces the single-worker sequence exactly.
    /// The executor also emits `campaign_start` / `cell_start` / `cell_finish` /
    /// `campaign_finish` events through `dg-obs` (a no-op unless observability is
    /// active), stamping cell events with the same claim sequence.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    fn execute(
        &self,
        provider: &dyn BackendProvider,
        cells: &[CellCoord],
        workers: usize,
        max_core_hours: Option<f64>,
        on_cell: Option<CellCallback<'_>>,
    ) -> (Vec<CellResult>, bool) {
        assert!(workers > 0, "at least one worker is required");
        let scheduled = cells.len();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let spent_core_hours = Mutex::new(0.0_f64);
        let slots: Vec<Mutex<Option<CellResult>>> =
            (0..scheduled).map(|_| Mutex::new(None)).collect();
        emit_with(|| ObsEvent::CampaignStart {
            campaign: self.spec.name.clone(),
            cells: scheduled,
            total_cost: cells
                .iter()
                .map(|cell| self.spec.budget_for(&cell.tuner) as f64)
                .sum(),
        });

        let worker_loop = || loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let i = next.fetch_add(1, Ordering::SeqCst);
            if i >= scheduled {
                break;
            }
            let cell_seq = i as u64;
            emit_with(|| ObsEvent::CellStart {
                campaign: self.spec.name.clone(),
                cell_seq,
                index: cells[i].index,
                tuner: cells[i].tuner.clone(),
                vm: cells[i].vm.name().to_string(),
                est_cost: self.spec.budget_for(&cells[i].tuner) as f64,
            });
            let result = run_cell(provider, &self.spec, &self.registry, &cells[i]);
            emit_with(|| ObsEvent::CellFinish {
                campaign: self.spec.name.clone(),
                cell_seq,
                index: result.index,
                core_hours: result.core_hours,
                mean_time: result.mean_time,
                failed: result.failure.is_some(),
            });
            if let Some(callback) = on_cell {
                callback(&result, cell_seq);
            }
            let hours = result.core_hours;
            *slots[i].lock().expect("cell slot poisoned") = Some(result);
            if let Some(cap) = max_core_hours {
                let mut spent = spent_core_hours.lock().expect("budget lock poisoned");
                *spent += hours;
                if *spent >= cap {
                    stop.store(true, Ordering::SeqCst);
                }
            }
        };

        let worker_count = workers.min(scheduled.max(1));
        if worker_count <= 1 {
            // Single-worker runs stay on the caller's thread: no spawn overhead, and the
            // serial reference measured by the fig15 bench is exactly this path.
            worker_loop();
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|_| scope.spawn(|_| worker_loop()))
                    .collect();
                for handle in handles {
                    handle.join().expect("campaign worker panicked");
                }
            })
            .expect("campaign scope failed");
        }

        let completed: Vec<CellResult> = slots
            .into_iter()
            .filter_map(|slot| slot.into_inner().expect("cell slot poisoned"))
            .collect();
        let stopped = stop.load(Ordering::SeqCst);
        emit_with(|| ObsEvent::CampaignFinish {
            campaign: self.spec.name.clone(),
            completed: completed.len(),
            stopped,
        });
        (completed, stopped)
    }
}

/// One worker per available CPU (at least one).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The trace-stream key of a campaign cell, shared by recording and replaying.
fn cell_stream(cell: &CellCoord) -> String {
    format!("cell-{}", cell.index)
}

/// Runs a single campaign cell: build the workload and a fresh execution backend from
/// the provider, tune, then re-measure the chosen configuration with repeated later
/// executions.
fn run_cell(
    provider: &dyn BackendProvider,
    spec: &CampaignSpec,
    registry: &TunerRegistry,
    cell: &CellCoord,
) -> CellResult {
    // `seed_index` equals `index` unless the spec pairs tuners, in which case cells
    // differing only in tuner share it (and therefore the environment's noise).
    let root = spec.cell_rng(cell.seed_index);
    // The seed-axis value folds into both sub-streams so replicates differ even if two
    // grid positions were ever given the same index-derived root.
    let env_seed = root.derive("env").derive_index(cell.seed).seed();
    let tuner_seed = root.derive("tuner").derive_index(cell.seed).seed();

    // Cells share one cached workload per (application, size): the surface is a pure
    // function of those arguments and regenerating it per cell is a fixed tax on every
    // grid cell (legacy behaviour, preserved under DG_FORCE_UNBATCHED=1).
    let workload = Workload::scaled_cached(cell.application, spec.scale.space_size);
    // The scenario may override the cell's interference profile; the provider sees the
    // effective profile (it is what trace stream headers record and replay validates).
    let profile = cell.scenario.profile.as_ref().unwrap_or(&cell.profile);
    let mut exec = provider.backend(&cell_stream(cell), cell.vm, profile, env_seed);
    if !cell.scenario.is_passthrough() {
        // The scenario wraps *outside* the provider's backend, so recording captures
        // raw inner outcomes and replay re-applies the same deterministic timeline —
        // record→replay stays byte-identical with zero resimulation. Pass-through
        // scenarios run unwrapped, bit-identical to pre-scenario campaigns.
        exec = Box::new(ScenarioBackend::new(exec, cell.scenario.clone(), env_seed));
    }
    // The surrogate wraps outermost (outside the scenario) so model-served answers
    // skip the whole stack — scenario expansion, simulation, recording — and the model
    // trains on scenario-shaped observations, the ones the tuner actually acts on. The
    // surrogate is a pure deterministic function of the request sequence and the inner
    // results, so record→replay and 1-vs-N-worker byte-identity are preserved.
    let surrogate_stats = SurrogateStats::new();
    if spec.surrogate_active() {
        let config = spec.surrogate.expect("active implies present");
        exec = Box::new(SurrogateBackend::with_stats(
            exec,
            config,
            surrogate_stats.clone(),
        ));
    }
    let mut tuner = registry
        .build(&cell.tuner, tuner_seed, cell.vm)
        .expect("tuner axis validated at construction");
    let budget = TuningBudget::evaluations(spec.budget_for(&cell.tuner));
    let outcome = tuner.tune(&workload, exec.as_mut(), budget);

    let runs = exec.observe_repeated(
        workload.spec(outcome.chosen),
        spec.scale.evaluation_runs,
        spec.scale.evaluation_spacing,
    );
    CellResult {
        index: cell.index,
        tuner: cell.tuner.clone(),
        application: cell.application.name().to_string(),
        vm: cell.vm.name().to_string(),
        profile: profile_label(&cell.profile),
        scenario: cell.scenario.name.clone(),
        seed: cell.seed,
        chosen: outcome.chosen,
        mean_time: dg_stats::mean(&runs),
        cov_percent: dg_stats::coefficient_of_variation(&runs),
        samples: outcome.samples,
        core_hours: outcome.core_hours,
        wall_clock_seconds: outcome.wall_clock_seconds,
        model_evals: surrogate_stats.model_served(),
        // Real-process backends latch the first evaluation error here; simulation
        // backends always report None.
        failure: exec.failure(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::single("executor-smoke", "RandomSearch", 2);
        spec.scale = ExperimentScale::smoke();
        spec.base_seed = 11;
        spec
    }

    #[test]
    fn single_tuner_campaign_completes_every_cell() {
        let report = Campaign::new(smoke_spec()).run_with_workers(1);
        assert_eq!(report.completed_cells(), 2);
        assert_eq!(report.groups.len(), 1);
        assert!(!report.budget_exhausted);
        assert!(report.total_core_hours > 0.0);
        assert!(report.cells.iter().all(|c| c.mean_time > 0.0));
    }

    #[test]
    fn cells_arrive_in_grid_order_regardless_of_workers() {
        let report = Campaign::new(smoke_spec()).run_with_workers(2);
        let indices: Vec<usize> = report.cells.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 1]);
    }

    #[test]
    fn darwin_game_runs_as_a_campaign_tuner() {
        let mut spec = smoke_spec();
        spec.tuners = vec!["DarwinGame".into()];
        spec.seeds = vec![0];
        let report = Campaign::new(spec).run_with_workers(1);
        assert_eq!(report.completed_cells(), 1);
        assert_eq!(report.cells[0].tuner, "DarwinGame");
        assert!(report.cells[0].samples > 0);
    }

    #[test]
    fn paired_tuners_see_identical_noise() {
        use dg_tuners::RandomSearch;
        // Two names for the same underlying tuner: with pairing, their cells share
        // every RNG stream, so the results must be identical apart from the label.
        let mut spec = smoke_spec();
        spec.tuners = vec!["A".into(), "B".into()];
        spec.seeds = vec![0];
        spec.paired_tuners = true;
        let mut registry = TunerRegistry::new();
        registry.register("A", |seed, _vm| Box::new(RandomSearch::new(seed)));
        registry.register("B", |seed, _vm| Box::new(RandomSearch::new(seed)));
        let report = Campaign::with_registry(spec, registry).run_with_workers(1);
        assert_eq!(report.cells[0].chosen, report.cells[1].chosen);
        assert_eq!(
            report.cells[0].mean_time.to_bits(),
            report.cells[1].mean_time.to_bits()
        );
        assert_eq!(report.cells[0].tuner, "A");
        assert_eq!(report.cells[1].tuner, "B");
    }

    #[test]
    fn shard_runs_cover_the_whole_grid() {
        use crate::shard::{ShardPlan, ShardStrategy};
        let campaign = Campaign::new(smoke_spec());
        let plan = ShardPlan::new(campaign.spec(), 2, ShardStrategy::Strided);
        let a = campaign.run_shard_with_workers(&plan, 0, 1);
        let b = campaign.run_shard_with_workers(&plan, 1, 1);
        assert_eq!(a.cells.len() + b.cells.len(), 2);
        assert!(!a.budget_exhausted && !b.budget_exhausted);
        let merged = CampaignReport::merge(vec![b, a]).expect("shards merge");
        let whole = campaign.run_with_workers(1);
        assert_eq!(merged.to_json(), whole.to_json());
    }

    #[test]
    #[should_panic(expected = "different campaign spec")]
    fn shard_plan_from_another_spec_rejected() {
        use crate::shard::{ShardPlan, ShardStrategy};
        let campaign = Campaign::new(smoke_spec());
        let mut other = smoke_spec();
        other.base_seed = 99;
        let plan = ShardPlan::new(&other, 2, ShardStrategy::Contiguous);
        let _ = campaign.run_shard_with_workers(&plan, 0, 1);
    }

    #[test]
    #[should_panic(expected = "not in the registry")]
    fn unknown_tuner_rejected_at_construction() {
        let mut spec = smoke_spec();
        spec.tuners = vec!["NoSuchTuner".into()];
        let _ = Campaign::new(spec);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Campaign::new(smoke_spec()).run_with_workers(0);
    }
}
