//! Experiment scale parameters.

use serde::{Deserialize, Serialize};

/// How large the reproduced experiments are.
///
/// The paper's experiments use multi-million-point search spaces, 10,000 regions, and
/// real hours of cloud time. The reproduction preserves the *relative* proportions that
/// matter — DarwinGame's sampling coverage is orders of magnitude higher than the
/// baselines', while its per-sample cost is far lower thanks to co-location and early
/// termination — at a size that runs in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Upper bound on the search-space size used for each application.
    pub space_size: u64,
    /// Number of regions in DarwinGame's regional phase.
    pub regions: usize,
    /// Players per game in the regional and global phases.
    pub players_per_game: usize,
    /// Evaluation budget of the model-based baselines (BLISS, OpenTuner, ActiveHarmony,
    /// RandomSearch).
    pub baseline_budget: usize,
    /// Evaluation budget of the exhaustive-search baseline (covers the whole space when
    /// the space is smaller than this).
    pub exhaustive_budget: usize,
    /// Number of repeated cloud executions used to measure the mean execution time and
    /// coefficient of variation of a chosen configuration.
    pub evaluation_runs: usize,
    /// Seconds of simulated time between those repeated executions.
    pub evaluation_spacing: f64,
    /// Number of times tuning is repeated (with different seeds) when an experiment
    /// reports a range or stability statistic. Only the hand-rolled harness loops in
    /// `dg-bench` read this; campaigns replicate through their *seed axis* instead
    /// (`CampaignSpec::seeds`), and the campaign executor ignores this field.
    pub tuning_repeats: usize,
}

impl ExperimentScale {
    /// The scale used by the committed benchmark outputs (minutes of runtime).
    pub fn default_scale() -> Self {
        Self {
            space_size: 160_000,
            regions: 256,
            players_per_game: 16,
            baseline_budget: 200,
            exhaustive_budget: 20_000,
            evaluation_runs: 60,
            evaluation_spacing: 1_800.0,
            tuning_repeats: 5,
        }
    }

    /// A tiny scale used by unit/integration tests of the harness itself (seconds).
    pub fn smoke() -> Self {
        Self {
            space_size: 6_000,
            regions: 16,
            players_per_game: 8,
            baseline_budget: 40,
            exhaustive_budget: 400,
            evaluation_runs: 15,
            evaluation_spacing: 1_800.0,
            tuning_repeats: 2,
        }
    }

    /// Validates the scale.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero (or non-positive for the spacing).
    pub fn validate(&self) {
        assert!(self.space_size > 0, "space_size must be positive");
        assert!(self.regions > 0, "regions must be positive");
        assert!(
            self.players_per_game >= 2,
            "players_per_game must be at least 2"
        );
        assert!(self.baseline_budget > 0, "baseline_budget must be positive");
        assert!(
            self.exhaustive_budget > 0,
            "exhaustive_budget must be positive"
        );
        assert!(self.evaluation_runs > 0, "evaluation_runs must be positive");
        assert!(
            self.evaluation_spacing > 0.0,
            "evaluation_spacing must be positive"
        );
        assert!(self.tuning_repeats > 0, "tuning_repeats must be positive");
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_valid() {
        ExperimentScale::default_scale().validate();
        ExperimentScale::smoke().validate();
    }

    #[test]
    fn smoke_is_smaller_than_default() {
        let smoke = ExperimentScale::smoke();
        let default = ExperimentScale::default_scale();
        assert!(smoke.space_size < default.space_size);
        assert!(smoke.regions < default.regions);
        assert!(smoke.baseline_budget < default.baseline_budget);
    }
}
