//! Incremental, resumable campaign labs: a persistent on-disk home for a campaign.
//!
//! A **lab** is a directory that accumulates a campaign's results one cell at a time.
//! Each completed cell is flushed immediately — before the run finishes — as a
//! *single-cell [`ShardReport`]* in canonical JSON, so killing the process at any
//! point loses at most the cells still in flight. Reopening the lab and running again
//! skips every completed cell (real-process backends launch **zero** processes for
//! them) and the final merged [`CampaignReport`] is byte-identical to one produced by
//! an uninterrupted run.
//!
//! # Layout
//!
//! ```text
//! lab/
//!   manifest.json          # campaign name, spec fingerprint, grid/scheduled sizes
//!   cells/
//!     cell-0.json          # single-cell ShardReport for scheduled cell 0
//!     cell-7.json
//!     ...
//! ```
//!
//! The cell files *are* the persistence format — no bespoke encoding. Cell `i` is
//! stored as the shard report `{shard: i, shard_count: scheduled_cells, strategy:
//! "lab", assigned: [i], budget_exhausted: false, cells: [<result>]}`, which makes
//! [`CampaignReport::merge`]'s coverage validation the completeness check: the merge
//! succeeds exactly when every scheduled cell is on disk, and reassembles the report
//! byte-identically to a single-host run.
//!
//! Writes are atomic (write to `*.tmp`, then rename), and loading discards — rather
//! than trusting — any cell file that is truncated, unparsable, or belongs to a
//! different spec fingerprint; discarded cells are simply re-run and overwritten.

use crate::report::{CampaignReport, CellResult};
use crate::shard::{MergeError, ShardReport};
use crate::spec::CampaignSpec;
use dg_exec::json::{self, push_key, push_str_literal, JsonValue};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The strategy name recorded in lab cell files (one shard per cell).
const LAB_STRATEGY: &str = "lab";

/// Why a lab could not be opened, written, or merged.
#[derive(Debug)]
pub enum LabError {
    /// A filesystem operation failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
    /// The lab's `manifest.json` exists but cannot be parsed.
    Manifest(String),
    /// The lab belongs to a campaign with a different name.
    CampaignMismatch {
        /// The name the caller's spec declares.
        expected: String,
        /// The name recorded in the lab manifest.
        found: String,
    },
    /// The lab was created from a spec with a different fingerprint — its cells would
    /// silently poison the merged report, so resuming is refused.
    FingerprintMismatch {
        /// The caller's [`CampaignSpec::fingerprint`].
        expected: u64,
        /// The fingerprint recorded in the lab manifest.
        found: u64,
    },
    /// The completed cell files cannot be merged (should be unreachable for a lab
    /// whose files all validated; kept typed rather than panicking).
    Merge(MergeError),
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::Io { path, message } => {
                write!(f, "lab I/O error at {}: {message}", path.display())
            }
            LabError::Manifest(detail) => write!(f, "invalid lab manifest: {detail}"),
            LabError::CampaignMismatch { expected, found } => {
                write!(f, "lab belongs to campaign {found:?}, not {expected:?}")
            }
            LabError::FingerprintMismatch { expected, found } => write!(
                f,
                "lab fingerprint {found:016x} does not match the spec's {expected:016x}"
            ),
            LabError::Merge(error) => write!(f, "lab cells failed to merge: {error}"),
        }
    }
}

impl std::error::Error for LabError {}

impl LabError {
    fn io(path: &Path, error: impl fmt::Display) -> Self {
        LabError::Io {
            path: path.to_path_buf(),
            message: error.to_string(),
        }
    }
}

/// What a lab session accomplished.
#[derive(Debug)]
pub struct LabOutcome {
    /// The merged campaign report — `Some` exactly when every scheduled cell is on
    /// disk (byte-identical to an uninterrupted run), `None` when the session was
    /// capped before completing the grid.
    pub report: Option<CampaignReport>,
    /// Completed cells loaded from disk at the start of the session (skipped, not
    /// re-run).
    pub loaded_cells: usize,
    /// Cells actually executed (and flushed) by this session.
    pub fresh_cells: usize,
    /// Cell files found on disk but discarded as corrupt, truncated, or belonging to
    /// a different spec; their cells were re-run.
    pub discarded_cells: usize,
}

/// A persistent campaign lab directory. See the [module docs](self) for the layout
/// and guarantees.
#[derive(Debug)]
pub struct CampaignLab {
    dir: PathBuf,
    campaign: String,
    fingerprint: u64,
    grid_cells: usize,
    scheduled_cells: usize,
}

impl CampaignLab {
    /// Opens (creating if necessary) the lab at `dir` for `spec`.
    ///
    /// A fresh directory gets a `manifest.json` recording the campaign name, the
    /// [`CampaignSpec::fingerprint`], and the grid/scheduled cell counts. An existing
    /// manifest is validated against `spec`: a name or fingerprint mismatch is a typed
    /// error, never a silent mixing of two campaigns' cells.
    pub fn open(dir: impl Into<PathBuf>, spec: &CampaignSpec) -> Result<Self, LabError> {
        spec.validate();
        let dir = dir.into();
        let cells_dir = dir.join("cells");
        fs::create_dir_all(&cells_dir).map_err(|e| LabError::io(&cells_dir, e))?;
        let lab = Self {
            dir,
            campaign: spec.name.clone(),
            fingerprint: spec.fingerprint(),
            grid_cells: spec.grid_size(),
            scheduled_cells: spec.cells().len(),
        };
        let manifest = lab.dir.join("manifest.json");
        match fs::read_to_string(&manifest) {
            Ok(text) => lab.check_manifest(&text)?,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                write_atomic(&manifest, &lab.manifest_json())?;
            }
            Err(error) => return Err(LabError::io(&manifest, error)),
        }
        Ok(lab)
    }

    /// The lab's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of cells the campaign schedules (the lab is complete when this many
    /// cell files are on disk).
    pub fn scheduled_cells(&self) -> usize {
        self.scheduled_cells
    }

    /// The fingerprint of the spec this lab was opened for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn manifest_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "campaign");
        push_str_literal(&mut out, &self.campaign);
        push_key(&mut out, &mut first, "fingerprint");
        push_str_literal(&mut out, &format!("{:016x}", self.fingerprint));
        push_key(&mut out, &mut first, "grid_cells");
        out.push_str(&self.grid_cells.to_string());
        push_key(&mut out, &mut first, "scheduled_cells");
        out.push_str(&self.scheduled_cells.to_string());
        out.push('}');
        out
    }

    fn check_manifest(&self, text: &str) -> Result<(), LabError> {
        let root = json::parse(text).map_err(LabError::Manifest)?;
        let campaign = root
            .get("campaign")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| LabError::Manifest("missing field \"campaign\"".into()))?;
        let fingerprint_hex = root
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| LabError::Manifest("missing field \"fingerprint\"".into()))?;
        let fingerprint = u64::from_str_radix(fingerprint_hex, 16)
            .map_err(|_| LabError::Manifest(format!("invalid fingerprint {fingerprint_hex:?}")))?;
        if campaign != self.campaign {
            return Err(LabError::CampaignMismatch {
                expected: self.campaign.clone(),
                found: campaign.to_string(),
            });
        }
        if fingerprint != self.fingerprint {
            return Err(LabError::FingerprintMismatch {
                expected: self.fingerprint,
                found: fingerprint,
            });
        }
        Ok(())
    }

    /// Path of the cell file for scheduled cell `index`.
    pub fn cell_path(&self, index: usize) -> PathBuf {
        self.dir.join("cells").join(format!("cell-{index}.json"))
    }

    /// Flushes one completed cell to disk as a single-cell [`ShardReport`], atomically
    /// (write `*.tmp`, rename). Called from worker threads as cells finish.
    pub fn flush_cell(&self, result: &CellResult) -> Result<(), LabError> {
        let report = self.cell_shard(result.clone());
        write_atomic(&self.cell_path(result.index), &report.to_json())
    }

    /// Wraps one cell result in the lab's single-cell shard framing.
    fn cell_shard(&self, result: CellResult) -> ShardReport {
        ShardReport {
            campaign: self.campaign.clone(),
            fingerprint: self.fingerprint,
            shard: result.index,
            shard_count: self.scheduled_cells,
            strategy: LAB_STRATEGY.to_string(),
            grid_cells: self.grid_cells,
            scheduled_cells: self.scheduled_cells,
            assigned: vec![result.index],
            budget_exhausted: false,
            cells: vec![result],
        }
    }

    /// Loads every valid completed cell from disk, keyed by scheduled index, plus the
    /// number of files discarded as corrupt or foreign.
    ///
    /// A file is accepted only when it parses as a [`ShardReport`] whose framing
    /// matches this lab exactly (fingerprint, campaign, sizes, the single-cell shape).
    /// Anything else — a truncated write that lost the rename race, a file from an
    /// older spec revision, a hand-edited report — is counted and ignored; its cell
    /// simply re-runs and overwrites the file.
    pub fn load_cells(&self) -> Result<(BTreeMap<usize, ShardReport>, usize), LabError> {
        let cells_dir = self.dir.join("cells");
        let mut cells = BTreeMap::new();
        let mut discarded = 0usize;
        let entries = fs::read_dir(&cells_dir).map_err(|e| LabError::io(&cells_dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LabError::io(&cells_dir, e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("cell-") || !name.ends_with(".json") {
                continue; // `.tmp` leftovers from a killed writer, editor droppings
            }
            let Ok(text) = fs::read_to_string(&path) else {
                discarded += 1;
                continue;
            };
            let Ok(report) = ShardReport::from_json(&text) else {
                discarded += 1;
                continue;
            };
            if self.validate_cell_shard(&report) {
                cells.insert(report.shard, report);
            } else {
                discarded += 1;
            }
        }
        Ok((cells, discarded))
    }

    /// True when `report` is a well-formed single-cell shard of *this* lab.
    fn validate_cell_shard(&self, report: &ShardReport) -> bool {
        report.fingerprint == self.fingerprint
            && report.campaign == self.campaign
            && report.strategy == LAB_STRATEGY
            && report.grid_cells == self.grid_cells
            && report.scheduled_cells == self.scheduled_cells
            && report.shard_count == self.scheduled_cells
            && report.shard < self.scheduled_cells
            && report.assigned == [report.shard]
            && !report.budget_exhausted
            && report.cells.len() == 1
            && report.cells[0].index == report.shard
    }

    /// Merges the on-disk cells into a [`CampaignReport`] if — and only if — every
    /// scheduled cell is present. Returns `Ok(None)` for an incomplete lab.
    pub fn merge_if_complete(&self) -> Result<Option<CampaignReport>, LabError> {
        let (cells, _discarded) = self.load_cells()?;
        if cells.len() < self.scheduled_cells {
            return Ok(None);
        }
        let shards: Vec<ShardReport> = cells.into_values().collect();
        CampaignReport::merge(shards)
            .map(Some)
            .map_err(LabError::Merge)
    }
}

/// Writes `text` to `path` atomically: the bytes land in `path.tmp` first and are
/// renamed into place, so readers (and resumed sessions) never observe a torn file.
fn write_atomic(path: &Path, text: &str) -> Result<(), LabError> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, text).map_err(|e| LabError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| LabError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    fn lab_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::single("lab-unit", "RandomSearch", 2);
        spec.scale = ExperimentScale::smoke();
        spec.base_seed = 5;
        spec
    }

    fn sample_cell(index: usize) -> CellResult {
        CellResult {
            index,
            tuner: "RandomSearch".into(),
            application: "wordcount".into(),
            vm: "m5.8xlarge".into(),
            profile: "typical".into(),
            scenario: "steady".into(),
            seed: 0,
            chosen: 3,
            mean_time: 100.0 + index as f64,
            cov_percent: 4.5,
            samples: 40,
            core_hours: 1.25,
            wall_clock_seconds: 300.0,
            model_evals: 0,
            failure: None,
        }
    }

    #[test]
    fn open_writes_manifest_and_reopen_validates_it() {
        let dir = std::env::temp_dir().join("dg-lab-unit-manifest");
        let _ = fs::remove_dir_all(&dir);
        let spec = lab_spec();
        let lab = CampaignLab::open(&dir, &spec).expect("fresh lab opens");
        assert_eq!(lab.scheduled_cells(), 2);
        // Reopening with the same spec succeeds; a different spec is refused.
        CampaignLab::open(&dir, &spec).expect("reopen with same spec");
        let mut other = lab_spec();
        other.base_seed = 99;
        match CampaignLab::open(&dir, &other) {
            Err(LabError::FingerprintMismatch { .. }) => {}
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_load_and_merge_round_trip() {
        let dir = std::env::temp_dir().join("dg-lab-unit-flush");
        let _ = fs::remove_dir_all(&dir);
        let spec = lab_spec();
        let lab = CampaignLab::open(&dir, &spec).expect("lab opens");
        lab.flush_cell(&sample_cell(0)).expect("cell 0 flushes");
        let (cells, discarded) = lab.load_cells().expect("load succeeds");
        assert_eq!(cells.len(), 1);
        assert_eq!(discarded, 0);
        assert!(lab.merge_if_complete().expect("merge runs").is_none());
        lab.flush_cell(&sample_cell(1)).expect("cell 1 flushes");
        let report = lab
            .merge_if_complete()
            .expect("merge runs")
            .expect("lab complete");
        assert_eq!(report.completed_cells(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_foreign_cell_files_are_discarded() {
        let dir = std::env::temp_dir().join("dg-lab-unit-corrupt");
        let _ = fs::remove_dir_all(&dir);
        let spec = lab_spec();
        let lab = CampaignLab::open(&dir, &spec).expect("lab opens");
        lab.flush_cell(&sample_cell(0)).expect("cell 0 flushes");
        // Truncate cell 0 mid-token and drop a foreign-fingerprint report at cell 1.
        let good = fs::read_to_string(lab.cell_path(0)).expect("cell file readable");
        fs::write(lab.cell_path(0), &good[..good.len() / 2]).expect("truncate");
        let mut foreign = lab.cell_shard(sample_cell(1));
        foreign.fingerprint ^= 1;
        fs::write(lab.cell_path(1), foreign.to_json()).expect("write foreign");
        let (cells, discarded) = lab.load_cells().expect("load succeeds");
        assert!(cells.is_empty());
        assert_eq!(discarded, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
