//! The `retune` sweep mode: specs and reports for online continuous retuning.
//!
//! A retune sweep measures what the paper's tune-once protocol leaves on the table
//! when the cloud keeps changing after deployment. Each cell of the grid — one
//! `(scenario, seed)` pair — deploys a champion twice over the same simulated horizon:
//!
//! * the **adaptive** leg runs `dg-serve`'s retuning loop (drift monitor plus live
//!   mini-tournaments seeded from the incumbent and a hall of fame), and
//! * the **fixed** leg tunes once, up front, with *exactly the evaluations the
//!   adaptive leg ended up spending* — and never touches the champion again. The only
//!   difference between the legs is *when* the budget is spent, so a cell whose
//!   monitor never fires is a regret tie by construction.
//!
//! Both legs observe the same environment noise (paired seeds), so the difference in
//! **cumulative regret** — deployed time minus the time the dedicated-environment
//! oracle configuration would have taken over the same schedule — isolates the value
//! of retuning. This module holds the declarative spec and the canonical-JSON report;
//! the loop itself lives in `dg-serve`, which depends on this crate.

use crate::spec::profile_label;
use dg_cloudsim::{mix, InterferenceProfile, SimRng, VmType};
use dg_exec::json::{fnv1a, push_f64, push_key, push_str_literal};
use dg_scenario::{ScenarioEvent, ScenarioSpec};
use dg_workloads::Application;
use serde::{Deserialize, Serialize};

/// Policy knobs of the online retuning loop: deployment schedule, drift monitor,
/// and mini-tournament behaviour.
///
/// The defaults are sized for the standard gauntlet ([`RetuneSpec::gauntlet`]): a
/// deployment horizon long enough to cover every event in the scenario pack, a
/// monitor calibrated across several 900-second interference regimes (so steady-state
/// wobble never fires), and small incremental tournaments that keep the total
/// evaluation budget modest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetunePolicy {
    /// Evaluation budget of the initial tuning session.
    pub initial_budget: usize,
    /// Evaluation budget of each incremental mini-tournament.
    pub retune_budget: usize,
    /// Maximum number of mini-tournaments the adaptive leg may run.
    /// [`RetuneSpec::fixed_budget`] is the resulting worst-case per-leg spend.
    pub max_retunes: usize,
    /// Number of paired cost-free probes used to decide whether a mini-tournament's
    /// candidate actually beats the incumbent.
    pub confirm_samples: usize,
    /// Deployment steps between consecutive acceptance probes. The probe window
    /// spans `confirm_samples * confirm_stride_steps` steps of future schedule, so a
    /// candidate must beat the incumbent across the regimes of the coming hours —
    /// not just at the instant the detector fired. Too narrow a window accepts
    /// phase-specialists that rot when a cyclic load turns.
    pub confirm_stride_steps: usize,
    /// Relative improvement the candidate's paired mean must show before the loop
    /// switches champions (the ratchet: switch only on clear evidence).
    pub accept_margin: f64,
    /// Number of deployment observations per leg.
    pub deploy_steps: usize,
    /// Simulated seconds between consecutive deployment observations.
    pub spacing_seconds: f64,
    /// Maximum number of former champions kept as warm-start hints.
    pub hall_of_fame: usize,
    /// Recency weight of the monitor's EWMA tracker.
    pub monitor_alpha: f64,
    /// Minimum EWMA hits before a drift detection is trusted (confidence gate).
    pub monitor_min_hits: u32,
    /// Deviations beyond this many reference standard deviations are held back one
    /// sample; a lone spike is dropped as a transient, a sustained one feeds through.
    pub transient_sigma: f64,
    /// Calibration samples of the CUSUM drift detector.
    pub drift_warmup: u32,
    /// CUSUM slack, in reference standard deviations.
    pub drift_delta: f64,
    /// CUSUM decision threshold.
    pub drift_lambda: f64,
    /// Standard-deviation floor of the detector, relative to the reference mean.
    pub drift_min_rel_std: f64,
}

impl Default for RetunePolicy {
    fn default() -> Self {
        Self {
            initial_budget: 32,
            retune_budget: 4,
            max_retunes: 4,
            confirm_samples: 6,
            confirm_stride_steps: 4,
            accept_margin: 0.02,
            deploy_steps: 128,
            spacing_seconds: 240.0,
            hall_of_fame: 4,
            monitor_alpha: 0.2,
            monitor_min_hits: 8,
            transient_sigma: 4.0,
            drift_warmup: 32,
            drift_delta: 0.75,
            drift_lambda: 20.0,
            drift_min_rel_std: 0.18,
        }
    }
}

impl RetunePolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical knobs (zero budgets or steps, non-finite or negative
    /// thresholds).
    pub fn validate(&self) {
        assert!(self.initial_budget > 0, "initial_budget must be positive");
        assert!(self.retune_budget > 0, "retune_budget must be positive");
        assert!(self.confirm_samples > 0, "confirm_samples must be positive");
        assert!(
            self.confirm_stride_steps > 0,
            "confirm_stride_steps must be positive"
        );
        assert!(self.deploy_steps > 0, "deploy_steps must be positive");
        assert!(
            self.spacing_seconds.is_finite() && self.spacing_seconds > 0.0,
            "spacing_seconds must be positive and finite"
        );
        assert!(
            self.accept_margin.is_finite() && (0.0..1.0).contains(&self.accept_margin),
            "accept_margin must be in [0, 1)"
        );
        assert!(
            self.monitor_alpha > 0.0 && self.monitor_alpha <= 1.0,
            "monitor_alpha must be in (0, 1]"
        );
        assert!(
            self.transient_sigma.is_finite() && self.transient_sigma > 0.0,
            "transient_sigma must be positive and finite"
        );
        assert!(self.drift_warmup >= 2, "drift_warmup must be at least 2");
        for (name, value) in [
            ("drift_delta", self.drift_delta),
            ("drift_lambda", self.drift_lambda),
            ("drift_min_rel_std", self.drift_min_rel_std),
        ] {
            assert!(
                value.is_finite() && value >= 0.0,
                "{name} must be non-negative and finite"
            );
        }
        assert!(self.drift_lambda > 0.0, "drift_lambda must be positive");
    }

    fn encode(&self, push: &mut dyn FnMut(&str)) {
        push(&format!(
            "|policy:{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.initial_budget,
            self.retune_budget,
            self.max_retunes,
            self.confirm_samples,
            self.confirm_stride_steps,
            self.accept_margin.to_bits(),
            self.deploy_steps,
            self.spacing_seconds.to_bits(),
            self.hall_of_fame,
            self.monitor_alpha.to_bits(),
            self.monitor_min_hits,
            self.transient_sigma.to_bits(),
            self.drift_warmup,
            self.drift_delta.to_bits(),
            self.drift_lambda.to_bits(),
            self.drift_min_rel_std.to_bits(),
        ));
    }
}

/// One cell of a retune sweep: a single `(scenario, seed)` pair, in stable grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct RetuneCellCoord {
    /// Position in the grid (scenarios outermost, seeds innermost).
    pub index: usize,
    /// The cloud scenario both legs run under.
    pub scenario: ScenarioSpec,
    /// Seed-axis value (the replicate identifier, not the raw RNG seed).
    pub seed: u64,
}

/// Declarative description of one retune sweep: a scenario axis crossed with a seed
/// axis, one workload/tuner/environment, and the loop policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetuneSpec {
    /// Sweep name, echoed into the report.
    pub name: String,
    /// Registry name of the tuner running both the initial session and every
    /// mini-tournament (warm-started ones benefit most; see `Tuner::warm_start`).
    pub tuner: String,
    /// Application workload.
    pub application: Application,
    /// Configuration-space size the workload is scaled to.
    pub space_size: u64,
    /// VM type of the deployment environment.
    pub vm: VmType,
    /// Interference profile of the deployment environment.
    pub profile: InterferenceProfile,
    /// Scenario axis: each entry is one column of the gauntlet.
    pub scenarios: Vec<ScenarioSpec>,
    /// Seed axis: one replicate per value.
    pub seeds: Vec<u64>,
    /// Base seed all cell seeds are derived from.
    pub base_seed: u64,
    /// Loop policy knobs.
    pub policy: RetunePolicy,
}

impl RetuneSpec {
    /// Creates a spec with the default policy, a single steady scenario, and one seed.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tuner: "RandomSearch".into(),
            application: Application::Redis,
            space_size: 2_000,
            vm: VmType::M5_8xlarge,
            profile: InterferenceProfile::typical(),
            scenarios: vec![ScenarioSpec::steady()],
            seeds: vec![0],
            base_seed: 0x0da7,
            policy: RetunePolicy::default(),
        }
    }

    /// The standard retune gauntlet: `steady` (the control column — the loop must
    /// never fire there) plus the three dynamic scenarios of the scenario pack, with
    /// `replicates` seeds each. The dynamic columns run with full
    /// [`ScenarioSpec::load_coupling`]: load bites through each configuration's
    /// interference sensitivity, so regime changes genuinely reorder the
    /// configuration space — the situation where retuning can beat tune-once at all,
    /// rather than merely re-measuring a uniformly slower world.
    pub fn gauntlet(name: impl Into<String>, replicates: u64) -> Self {
        let dynamic = |scenario: &str| {
            ScenarioSpec::by_name(scenario)
                .expect("pack scenario")
                .with_load_coupling(1.0)
        };
        // The gauntlet's bursty column arrives two hours into the run with sustained
        // bursts: a neighbour present from t=0 is visible to the initial tuning
        // session (which would correctly pick a storm-robust champion, leaving
        // nothing to detect) — drift means the regime the champion was tuned for
        // goes away later. Bursts are stretched to 1800 s so one spans enough
        // monitor samples to be distinguishable from a stationary interference
        // wave, which the monitor is tuned to sit out.
        let mut bursty = dynamic("bursty-neighbor").delayed(7_200.0);
        for event in &mut bursty.events {
            if let ScenarioEvent::StormFront { duration, .. } = event {
                *duration = 1_800.0;
            }
        }
        let mut spec = Self::new(name);
        spec.scenarios = vec![
            ScenarioSpec::steady(),
            dynamic("regime-shift"),
            dynamic("diurnal"),
            bursty,
        ];
        spec.seeds = (0..replicates).collect();
        spec
    }

    /// Worst-case per-leg evaluation budget: the initial session plus everything the
    /// adaptive leg's mini-tournaments could possibly spend. Each cell's fixed leg
    /// spends the adaptive leg's *realized* evaluations, which this value bounds.
    pub fn fixed_budget(&self) -> usize {
        self.policy.initial_budget + self.policy.max_retunes * self.policy.retune_budget
    }

    /// Size of the sweep grid.
    pub fn grid_size(&self) -> usize {
        self.scenarios.len() * self.seeds.len()
    }

    /// The scheduled cells, scenarios outermost and seeds innermost.
    pub fn cells(&self) -> Vec<RetuneCellCoord> {
        let mut cells = Vec::with_capacity(self.grid_size());
        let mut index = 0usize;
        for scenario in &self.scenarios {
            for seed in &self.seeds {
                cells.push(RetuneCellCoord {
                    index,
                    scenario: scenario.clone(),
                    seed: *seed,
                });
                index += 1;
            }
        }
        cells
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if an axis is empty, a scenario is invalid or duplicated, the space is
    /// empty, or the policy is invalid.
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "retune sweep needs a name");
        assert!(!self.tuner.is_empty(), "retune sweep needs a tuner");
        assert!(self.space_size > 0, "space_size must be positive");
        assert!(
            !self.scenarios.is_empty(),
            "retune sweep needs at least one scenario"
        );
        for scenario in &self.scenarios {
            scenario.validate();
        }
        {
            let mut names: Vec<&str> = self.scenarios.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            assert!(
                names.windows(2).all(|w| w[0] != w[1]),
                "scenario names must be unique within a sweep (they key cells and groups)"
            );
        }
        assert!(
            !self.seeds.is_empty(),
            "retune sweep needs at least one seed"
        );
        self.policy.validate();
    }

    /// A stable 64-bit fingerprint of the spec, FNV-1a over a canonical textual
    /// encoding — the same discipline as `CampaignSpec::fingerprint`. Reports carry
    /// it so replays and shards can refuse mismatched grids.
    pub fn fingerprint(&self) -> u64 {
        let mut encoded = String::with_capacity(256);
        let mut push = |part: &str| {
            // Length-prefix every part so concatenations can never collide across
            // field boundaries.
            encoded.push_str(&format!("{}:{part};", part.len()));
        };
        push("retune");
        push(&self.name);
        push(&self.tuner);
        push(self.application.name());
        push(&format!("|space:{}", self.space_size));
        push(self.vm.name());
        push(&profile_label(&self.profile));
        push("|scenarios");
        for scenario in &self.scenarios {
            push(&format!("{:016x}", scenario.fingerprint()));
        }
        push("|seeds");
        for seed in &self.seeds {
            push(&format!("{seed}"));
        }
        push(&format!("|base_seed:{}", self.base_seed));
        self.policy.encode(&mut push);
        fnv1a(&encoded)
    }

    /// The deterministic root seed of cell `index`, derived with the simulator's
    /// [`mix`] so retune sweeps share the campaign seeding discipline.
    pub fn cell_seed(&self, index: usize) -> u64 {
        mix(self.base_seed, index as u64)
    }

    /// The root RNG of cell `index`; the sweep derives the environment and loop
    /// sub-streams from it by label.
    pub fn cell_rng(&self, index: usize) -> SimRng {
        SimRng::new(self.cell_seed(index))
    }
}

/// The measured outcome of one retune cell: both legs over the same horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetuneCellResult {
    /// Scenario name (group key).
    pub scenario: String,
    /// Seed-axis value.
    pub seed: u64,
    /// The adaptive leg's initial champion (before any retune).
    pub adaptive_initial: u64,
    /// The adaptive leg's champion at the end of the horizon.
    pub adaptive_final: u64,
    /// The fixed leg's only champion.
    pub fixed_champion: u64,
    /// Drift detections raised by the monitor (adaptive leg).
    pub detections: usize,
    /// Mini-tournaments actually run (adaptive leg).
    pub retunes: usize,
    /// Champion switches accepted by the paired-probe gate (adaptive leg).
    pub switches: usize,
    /// Total deployed execution time of the adaptive leg, seconds.
    pub adaptive_time: f64,
    /// Total deployed execution time of the fixed leg, seconds.
    pub fixed_time: f64,
    /// Total execution time of the oracle configuration over the same schedule,
    /// seconds (the regret baseline, shared by both legs).
    pub reference_time: f64,
    /// Evaluations the adaptive leg actually spent (initial plus retunes).
    pub adaptive_evals: usize,
    /// Evaluations the fixed leg spent.
    pub fixed_evals: usize,
    /// Core-hours consumed by all tuning in the cell (both legs).
    pub core_hours: f64,
}

impl RetuneCellResult {
    /// Cumulative regret of the adaptive leg, seconds.
    pub fn adaptive_regret(&self) -> f64 {
        self.adaptive_time - self.reference_time
    }

    /// Cumulative regret of the fixed leg, seconds.
    pub fn fixed_regret(&self) -> f64 {
        self.fixed_time - self.reference_time
    }

    /// Canonical JSON: fixed key order, no whitespace, shortest-round-trip floats.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "scenario");
        push_str_literal(&mut out, &self.scenario);
        push_key(&mut out, &mut first, "seed");
        out.push_str(&self.seed.to_string());
        push_key(&mut out, &mut first, "adaptive_initial");
        out.push_str(&self.adaptive_initial.to_string());
        push_key(&mut out, &mut first, "adaptive_final");
        out.push_str(&self.adaptive_final.to_string());
        push_key(&mut out, &mut first, "fixed_champion");
        out.push_str(&self.fixed_champion.to_string());
        push_key(&mut out, &mut first, "detections");
        out.push_str(&self.detections.to_string());
        push_key(&mut out, &mut first, "retunes");
        out.push_str(&self.retunes.to_string());
        push_key(&mut out, &mut first, "switches");
        out.push_str(&self.switches.to_string());
        push_key(&mut out, &mut first, "adaptive_time");
        push_f64(&mut out, self.adaptive_time);
        push_key(&mut out, &mut first, "fixed_time");
        push_f64(&mut out, self.fixed_time);
        push_key(&mut out, &mut first, "reference_time");
        push_f64(&mut out, self.reference_time);
        push_key(&mut out, &mut first, "adaptive_regret");
        push_f64(&mut out, self.adaptive_regret());
        push_key(&mut out, &mut first, "fixed_regret");
        push_f64(&mut out, self.fixed_regret());
        push_key(&mut out, &mut first, "adaptive_evals");
        out.push_str(&self.adaptive_evals.to_string());
        push_key(&mut out, &mut first, "fixed_evals");
        out.push_str(&self.fixed_evals.to_string());
        push_key(&mut out, &mut first, "core_hours");
        push_f64(&mut out, self.core_hours);
        out.push('}');
        out
    }
}

/// Per-scenario aggregate of a retune sweep, summed over its seed replicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetuneScenarioSummary {
    /// Scenario name.
    pub scenario: String,
    /// Number of cells aggregated.
    pub cells: usize,
    /// Summed adaptive regret, seconds.
    pub adaptive_regret: f64,
    /// Summed fixed regret, seconds.
    pub fixed_regret: f64,
    /// Summed drift detections.
    pub detections: usize,
    /// Summed mini-tournaments.
    pub retunes: usize,
    /// Summed accepted switches.
    pub switches: usize,
}

impl RetuneScenarioSummary {
    /// Percentage of the fixed leg's regret the adaptive leg avoided (positive means
    /// retuning won). Zero when the fixed regret is non-positive or non-finite —
    /// a degenerate baseline has no meaningful percentage.
    pub fn regret_reduction_percent(&self) -> f64 {
        if !self.fixed_regret.is_finite() || self.fixed_regret <= 0.0 {
            return 0.0;
        }
        100.0 * (self.fixed_regret - self.adaptive_regret) / self.fixed_regret
    }

    fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "scenario");
        push_str_literal(&mut out, &self.scenario);
        push_key(&mut out, &mut first, "cells");
        out.push_str(&self.cells.to_string());
        push_key(&mut out, &mut first, "adaptive_regret");
        push_f64(&mut out, self.adaptive_regret);
        push_key(&mut out, &mut first, "fixed_regret");
        push_f64(&mut out, self.fixed_regret);
        push_key(&mut out, &mut first, "regret_reduction_percent");
        push_f64(&mut out, self.regret_reduction_percent());
        push_key(&mut out, &mut first, "detections");
        out.push_str(&self.detections.to_string());
        push_key(&mut out, &mut first, "retunes");
        out.push_str(&self.retunes.to_string());
        push_key(&mut out, &mut first, "switches");
        out.push_str(&self.switches.to_string());
        out.push('}');
        out
    }
}

/// The complete result of one retune sweep: cells in stable grid order plus
/// per-scenario aggregates, with canonical JSON emission.
///
/// Like `CampaignReport`, the report records nothing host- or schedule-dependent, so
/// two runs of the same spec are byte-identical regardless of worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetuneReport {
    /// Sweep name, copied from the spec.
    pub campaign: String,
    /// Fingerprint of the producing spec ([`RetuneSpec::fingerprint`]).
    pub fingerprint: u64,
    /// Per-cell results, in grid order.
    pub cells: Vec<RetuneCellResult>,
    /// Per-scenario aggregates, in scenario-axis order.
    pub scenarios: Vec<RetuneScenarioSummary>,
}

impl RetuneReport {
    /// Assembles a report from per-cell results. `cells` must be in grid order
    /// (the sweep guarantees this); scenario aggregates follow the spec's axis order.
    pub fn from_cells(spec: &RetuneSpec, cells: Vec<RetuneCellResult>) -> Self {
        let mut scenarios = Vec::with_capacity(spec.scenarios.len());
        for scenario in &spec.scenarios {
            let mut summary = RetuneScenarioSummary {
                scenario: scenario.name.clone(),
                cells: 0,
                adaptive_regret: 0.0,
                fixed_regret: 0.0,
                detections: 0,
                retunes: 0,
                switches: 0,
            };
            for cell in cells.iter().filter(|c| c.scenario == scenario.name) {
                summary.cells += 1;
                summary.adaptive_regret += cell.adaptive_regret();
                summary.fixed_regret += cell.fixed_regret();
                summary.detections += cell.detections;
                summary.retunes += cell.retunes;
                summary.switches += cell.switches;
            }
            scenarios.push(summary);
        }
        Self {
            campaign: spec.name.clone(),
            fingerprint: spec.fingerprint(),
            cells,
            scenarios,
        }
    }

    /// The aggregate for `scenario`, if present.
    pub fn scenario(&self, scenario: &str) -> Option<&RetuneScenarioSummary> {
        self.scenarios.iter().find(|s| s.scenario == scenario)
    }

    /// Canonical JSON: fixed key order, no whitespace, shortest-round-trip floats;
    /// the fingerprint is rendered as a fixed-width hex string so it survives JSON
    /// consumers that read all numbers as `f64`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.cells.len() * 256);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "campaign");
        push_str_literal(&mut out, &self.campaign);
        push_key(&mut out, &mut first, "fingerprint");
        push_str_literal(&mut out, &format!("{:016x}", self.fingerprint));
        push_key(&mut out, &mut first, "cells");
        out.push('[');
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&cell.to_json());
        }
        out.push(']');
        push_key(&mut out, &mut first, "scenarios");
        out.push('[');
        for (i, summary) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&summary.to_json());
        }
        out.push(']');
        out.push('}');
        out
    }

    /// A compact, aligned text summary of the per-scenario aggregates.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>6} {:>14} {:>14} {:>9} {:>8} {:>8} {:>8}\n",
            "scenario", "cells", "adaptive", "tune-once", "saved%", "detect", "retunes", "switch"
        ));
        for s in &self.scenarios {
            out.push_str(&format!(
                "{:<18} {:>6} {:>14.1} {:>14.1} {:>9.1} {:>8} {:>8} {:>8}\n",
                s.scenario,
                s.cells,
                s.adaptive_regret,
                s.fixed_regret,
                s.regret_reduction_percent(),
                s.detections,
                s.retunes,
                s.switches
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scenario: &str, seed: u64, adaptive: f64, fixed: f64) -> RetuneCellResult {
        RetuneCellResult {
            scenario: scenario.into(),
            seed,
            adaptive_initial: 3,
            adaptive_final: 9,
            fixed_champion: 4,
            detections: 2,
            retunes: 1,
            switches: 1,
            adaptive_time: adaptive,
            fixed_time: fixed,
            reference_time: 100.0,
            adaptive_evals: 32,
            fixed_evals: 56,
            core_hours: 1.25,
        }
    }

    #[test]
    fn gauntlet_covers_steady_and_the_dynamic_pack() {
        let spec = RetuneSpec::gauntlet("g", 3);
        let names: Vec<&str> = spec.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["steady", "regime-shift", "diurnal", "bursty-neighbor"]
        );
        assert_eq!(spec.grid_size(), 12);
        spec.validate();

        let cells = spec.cells();
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].scenario.name, "steady");
        assert_eq!(cells[0].seed, 0);
        assert_eq!(cells[2].seed, 2);
        assert_eq!(cells[3].scenario.name, "regime-shift");
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn fixed_budget_is_evaluation_parity() {
        let spec = RetuneSpec::new("p");
        assert_eq!(
            spec.fixed_budget(),
            spec.policy.initial_budget + spec.policy.max_retunes * spec.policy.retune_budget
        );
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let spec = RetuneSpec::gauntlet("g", 2);
        let seeds: Vec<u64> = (0..spec.grid_size()).map(|i| spec.cell_seed(i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(spec.cell_seed(1), mix(spec.base_seed, 1));
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let spec = RetuneSpec::gauntlet("g", 2);
        assert_eq!(
            spec.fingerprint(),
            RetuneSpec::gauntlet("g", 2).fingerprint()
        );

        let mut renamed = RetuneSpec::gauntlet("g", 2);
        renamed.name = "other".into();
        assert_ne!(spec.fingerprint(), renamed.fingerprint());

        let mut retuned = RetuneSpec::gauntlet("g", 2);
        retuned.policy.drift_lambda += 1.0;
        assert_ne!(spec.fingerprint(), retuned.fingerprint());

        let mut reseeded = RetuneSpec::gauntlet("g", 2);
        reseeded.base_seed ^= 1;
        assert_ne!(spec.fingerprint(), reseeded.fingerprint());

        let mut narrowed = RetuneSpec::gauntlet("g", 2);
        narrowed.scenarios.pop();
        assert_ne!(spec.fingerprint(), narrowed.fingerprint());
    }

    #[test]
    fn regret_is_deployed_minus_reference() {
        let c = cell("diurnal", 0, 180.0, 240.0);
        assert_eq!(c.adaptive_regret(), 80.0);
        assert_eq!(c.fixed_regret(), 140.0);
    }

    #[test]
    fn report_groups_by_scenario_in_axis_order() {
        let mut spec = RetuneSpec::gauntlet("g", 2);
        spec.seeds = vec![0, 1];
        let cells = vec![
            cell("steady", 0, 110.0, 110.0),
            cell("steady", 1, 112.0, 112.0),
            cell("regime-shift", 0, 150.0, 190.0),
            cell("regime-shift", 1, 160.0, 200.0),
            cell("diurnal", 0, 140.0, 180.0),
            cell("diurnal", 1, 150.0, 170.0),
            cell("bursty-neighbor", 0, 130.0, 150.0),
            cell("bursty-neighbor", 1, 135.0, 165.0),
        ];
        let report = RetuneReport::from_cells(&spec, cells);
        assert_eq!(report.campaign, "g");
        assert_eq!(report.fingerprint, spec.fingerprint());
        assert_eq!(report.scenarios.len(), 4);
        assert_eq!(report.scenarios[0].scenario, "steady");
        let shift = report.scenario("regime-shift").unwrap();
        assert_eq!(shift.cells, 2);
        assert_eq!(shift.adaptive_regret, 50.0 + 60.0);
        assert_eq!(shift.fixed_regret, 90.0 + 100.0);
        assert!(shift.regret_reduction_percent() > 0.0);

        let table = report.summary_table();
        assert!(table.contains("regime-shift"));
        assert!(table.contains("tune-once"));
    }

    #[test]
    fn reduction_percent_is_guarded_against_degenerate_baselines() {
        let summary = RetuneScenarioSummary {
            scenario: "steady".into(),
            cells: 1,
            adaptive_regret: 5.0,
            fixed_regret: 0.0,
            detections: 0,
            retunes: 0,
            switches: 0,
        };
        assert_eq!(summary.regret_reduction_percent(), 0.0);
    }

    #[test]
    fn report_json_is_canonical_and_parseable() {
        let spec = RetuneSpec::new("j");
        let report = RetuneReport::from_cells(&spec, vec![cell("steady", 0, 120.5, 130.25)]);
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "emission is deterministic");
        let parsed = dg_exec::json::parse(&json).expect("canonical JSON parses");
        assert_eq!(parsed.get("campaign").and_then(|v| v.as_str()), Some("j"));
        assert_eq!(
            parsed.get("fingerprint").and_then(|v| v.as_str()),
            Some(format!("{:016x}", spec.fingerprint()).as_str())
        );
        let cells = parsed.get("cells").and_then(|v| v.as_array()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(
            cells[0]
                .get("adaptive_regret")
                .and_then(|v| v.number_token()),
            Some("20.5")
        );
        let scenarios = parsed.get("scenarios").and_then(|v| v.as_array()).unwrap();
        assert_eq!(scenarios.len(), 1);
    }

    #[test]
    #[should_panic(expected = "accept_margin")]
    fn invalid_policy_is_rejected() {
        let mut spec = RetuneSpec::new("bad");
        spec.policy.accept_margin = 1.5;
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "unique within a sweep")]
    fn duplicate_scenarios_are_rejected() {
        let mut spec = RetuneSpec::new("dup");
        spec.scenarios = vec![ScenarioSpec::steady(), ScenarioSpec::steady()];
        spec.validate();
    }
}
