//! Campaign specifications: the cross-product grid of one experiment sweep.

use crate::scale::ExperimentScale;
use dg_cloudsim::{mix, InterferenceProfile, SimRng, VmType};
use dg_exec::SurrogateConfig;
use dg_scenario::ScenarioSpec;
use dg_workloads::Application;
use serde::{Deserialize, Serialize};

/// A short, human-readable label for an interference profile, used in cell results,
/// group keys, trace stream headers, and JSON output (re-exported from `dg-exec`, which
/// uses the same labels to validate traces at replay).
pub use dg_exec::profile_label;

/// One cell of a campaign grid: a single `(tuner, application, vm, profile, seed)`
/// combination, in stable grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCoord {
    /// Position in the full grid (stable regardless of execution order).
    pub index: usize,
    /// Index the cell's RNG streams are derived from. Equal to `index` unless the spec
    /// pairs tuners ([`CampaignSpec::paired_tuners`]), in which case cells that differ
    /// only in their tuner share a `seed_index` (and therefore environment noise).
    pub seed_index: usize,
    /// Registry name of the tuner to run.
    pub tuner: String,
    /// Application workload.
    pub application: Application,
    /// VM type of the cell's cloud environment.
    pub vm: VmType,
    /// Interference profile of the cell's cloud environment.
    pub profile: InterferenceProfile,
    /// Cloud scenario the cell runs under (`steady` executes unwrapped, exactly as
    /// before the scenario axis existed).
    pub scenario: ScenarioSpec,
    /// Seed-axis value (the replicate identifier, *not* the raw RNG seed).
    pub seed: u64,
}

/// Declarative description of an experiment campaign: the cross product of a tuner axis,
/// an application axis, a VM axis, an interference-profile axis, a cloud-scenario axis,
/// and a seed axis, plus the per-cell experiment scale and optional budget caps.
///
/// Cells are enumerated in a stable nested order — tuners outermost, then applications,
/// VM types, profiles, scenarios, and seeds innermost — and each cell derives its RNG
/// streams from
/// [`cell_seed`](Self::cell_seed), so each cell's result depends only on the spec, never
/// on worker count or completion order. Whole-campaign reports are likewise identical
/// across worker counts, except that a `max_core_hours`-capped run's *completed set*
/// can vary with scheduling (see the field's documentation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name, echoed into the report.
    pub name: String,
    /// Tuner axis: registry names (see `dg_tuners::TunerRegistry`).
    pub tuners: Vec<String>,
    /// Application axis.
    pub applications: Vec<Application>,
    /// VM-type axis.
    pub vm_types: Vec<VmType>,
    /// Interference-profile axis.
    pub profiles: Vec<InterferenceProfile>,
    /// Cloud-scenario axis (see `dg_scenario::ScenarioSpec`). Defaults to the single
    /// pass-through [`ScenarioSpec::steady`], which reproduces scenario-less campaigns
    /// byte-identically; widen it (e.g. to [`ScenarioSpec::pack`]) to sweep tuners
    /// across dynamic cloud regimes.
    pub scenarios: Vec<ScenarioSpec>,
    /// Seed axis: one replicate per value.
    pub seeds: Vec<u64>,
    /// Per-cell experiment scale (workload size, tournament regions, budgets,
    /// measurement protocol).
    pub scale: ExperimentScale,
    /// Base seed all cell seeds are derived from.
    pub base_seed: u64,
    /// Per-tuner evaluation-budget overrides `(tuner name, evaluations)`; tuners without
    /// an override use [`ExperimentScale::baseline_budget`] (or
    /// [`ExperimentScale::exhaustive_budget`] for the exhaustive search).
    pub budget_overrides: Vec<(String, usize)>,
    /// Deterministic cap: only the first `max_cells` cells of the grid are scheduled.
    pub max_cells: Option<usize>,
    /// Best-effort cap on total tuning core-hours: once completed cells have consumed at
    /// least this much, no further cells are *started* (in-flight cells still finish).
    /// Because in-flight cells depend on scheduling, the completed set of a capped run
    /// can vary with worker count; use `max_cells` for a deterministic cap.
    pub max_core_hours: Option<f64>,
    /// When true, cells that differ only in their tuner-axis entry share the same
    /// environment and tuner RNG seeds, turning every tuner comparison into a *paired*
    /// one (identical noise realisations — the design the Fig. 16 ablation sweep
    /// needs). When false (the default), every cell is seeded independently, the way
    /// different tenants would each see their own noise.
    pub paired_tuners: bool,
    /// Optional surrogate-model serving (see `dg_exec::SurrogateBackend`): when set
    /// and active, every cell's execution backend is wrapped in a surrogate that
    /// serves confident repeat evaluations from an online n-tuple model, cost-free.
    /// `None` — and any config with a serving fraction of `0` — leaves cells exactly
    /// as they were: such campaigns fingerprint and report byte-identically to
    /// pre-surrogate ones.
    pub surrogate: Option<SurrogateConfig>,
}

impl CampaignSpec {
    /// Creates a spec with empty axes and the default experiment scale.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tuners: Vec::new(),
            applications: Vec::new(),
            vm_types: Vec::new(),
            profiles: Vec::new(),
            scenarios: vec![ScenarioSpec::steady()],
            seeds: Vec::new(),
            scale: ExperimentScale::default_scale(),
            base_seed: 0x0da2,
            budget_overrides: Vec::new(),
            max_cells: None,
            max_core_hours: None,
            paired_tuners: false,
            surrogate: None,
        }
    }

    /// A single-axis default: one tuner, Redis, the paper's main VM, the typical
    /// profile, and `replicates` seeds `0..replicates`. A convenient starting point that
    /// callers then widen along the axes they sweep.
    pub fn single(name: impl Into<String>, tuner: impl Into<String>, replicates: u64) -> Self {
        let mut spec = Self::new(name);
        spec.tuners = vec![tuner.into()];
        spec.applications = vec![Application::Redis];
        spec.vm_types = vec![VmType::M5_8xlarge];
        spec.profiles = vec![InterferenceProfile::typical()];
        spec.seeds = (0..replicates).collect();
        spec
    }

    /// Size of the full cross-product grid (before any `max_cells` cap).
    pub fn grid_size(&self) -> usize {
        self.tuners.len()
            * self.applications.len()
            * self.vm_types.len()
            * self.profiles.len()
            * self.scenarios.len()
            * self.seeds.len()
    }

    /// True when the scenario axis is the implicit default — exactly one pass-through
    /// [`ScenarioSpec::steady`]. Default-axis specs fingerprint and serialize exactly
    /// as they did before the axis existed, so pre-scenario reports stay byte-identical.
    pub fn has_default_scenarios(&self) -> bool {
        self.scenarios.len() == 1 && self.scenarios[0] == ScenarioSpec::steady()
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty, the scale is invalid, or `max_cells` is zero.
    pub fn validate(&self) {
        assert!(!self.tuners.is_empty(), "campaign needs at least one tuner");
        assert!(
            !self.applications.is_empty(),
            "campaign needs at least one application"
        );
        assert!(
            !self.vm_types.is_empty(),
            "campaign needs at least one VM type"
        );
        assert!(
            !self.profiles.is_empty(),
            "campaign needs at least one interference profile"
        );
        assert!(
            !self.scenarios.is_empty(),
            "campaign needs at least one scenario"
        );
        for scenario in &self.scenarios {
            scenario.validate();
        }
        {
            let mut names: Vec<&str> = self.scenarios.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            assert!(
                names.windows(2).all(|w| w[0] != w[1]),
                "scenario names must be unique within a campaign (they key cells and groups)"
            );
        }
        assert!(!self.seeds.is_empty(), "campaign needs at least one seed");
        if let Some(max_cells) = self.max_cells {
            assert!(max_cells > 0, "max_cells must be positive when set");
        }
        if let Some(cap) = self.max_core_hours {
            assert!(
                cap.is_finite() && cap > 0.0,
                "max_core_hours must be positive and finite when set"
            );
        }
        if let Some(surrogate) = &self.surrogate {
            surrogate.validate();
        }
        self.scale.validate();
    }

    /// True when the surrogate knob can affect cell execution: a config is present
    /// *and* its serving fraction is non-zero. Inactive surrogates (absent or
    /// fraction `0`) have no effect on any result, so they are excluded from the
    /// fingerprint — fraction-0 campaigns stay byte-compatible with existing shard
    /// reports and traces.
    pub fn surrogate_active(&self) -> bool {
        self.surrogate.is_some_and(|s| s.is_active())
    }

    /// The scheduled cells: the full grid in stable nested order, truncated to
    /// `max_cells` when set.
    pub fn cells(&self) -> Vec<CellCoord> {
        // With paired tuners, the tuner axis (outermost) is excluded from seed
        // derivation: cells at the same position within each tuner's sub-grid share
        // their seed index.
        let cells_per_tuner = self.grid_size() / self.tuners.len().max(1);
        let mut cells = Vec::with_capacity(self.grid_size());
        let mut index = 0usize;
        for tuner in &self.tuners {
            for app in &self.applications {
                for vm in &self.vm_types {
                    for profile in &self.profiles {
                        for scenario in &self.scenarios {
                            for seed in &self.seeds {
                                cells.push(CellCoord {
                                    index,
                                    seed_index: if self.paired_tuners {
                                        index % cells_per_tuner.max(1)
                                    } else {
                                        index
                                    },
                                    tuner: tuner.clone(),
                                    application: *app,
                                    vm: *vm,
                                    profile: profile.clone(),
                                    scenario: scenario.clone(),
                                    seed: *seed,
                                });
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
        if let Some(max_cells) = self.max_cells {
            cells.truncate(max_cells);
        }
        cells
    }

    /// A stable 64-bit fingerprint of the spec: FNV-1a over a canonical textual
    /// encoding of every field (axes in order, scale, seeds, caps, overrides).
    ///
    /// Shard reports carry the fingerprint of the spec they were produced from, and
    /// [`CampaignReport::merge`](crate::CampaignReport::merge) refuses to combine
    /// reports whose fingerprints disagree — merging cells from different grids would
    /// silently corrupt the result. The encoding is independent of process, host, and
    /// run, so fingerprints are comparable across OS processes and machines.
    pub fn fingerprint(&self) -> u64 {
        let mut encoded = String::with_capacity(256);
        let mut push = |part: &str| {
            // Length-prefix every part so concatenations can never collide across
            // field boundaries ("ab"+"c" vs "a"+"bc").
            encoded.push_str(&format!("{}:{part};", part.len()));
        };
        push(&self.name);
        for tuner in &self.tuners {
            push(tuner);
        }
        push("|apps");
        for app in &self.applications {
            push(app.name());
        }
        push("|vms");
        for vm in &self.vm_types {
            push(vm.name());
        }
        push("|profiles");
        for profile in &self.profiles {
            push(&profile_label(profile));
        }
        // The default single-steady axis is omitted so default-axis specs fingerprint
        // exactly as they did before the scenario axis existed (shard reports and
        // traces recorded pre-axis stay mergeable/replayable).
        if !self.has_default_scenarios() {
            push("|scenarios");
            for scenario in &self.scenarios {
                push(&format!("{:016x}", scenario.fingerprint()));
            }
        }
        push("|seeds");
        for seed in &self.seeds {
            push(&format!("{seed}"));
        }
        push("|scale");
        push(&format!(
            "{},{},{},{},{},{},{},{}",
            self.scale.space_size,
            self.scale.regions,
            self.scale.players_per_game,
            self.scale.baseline_budget,
            self.scale.exhaustive_budget,
            self.scale.evaluation_runs,
            self.scale.evaluation_spacing.to_bits(),
            self.scale.tuning_repeats,
        ));
        push(&format!("|base_seed:{}", self.base_seed));
        for (tuner, budget) in &self.budget_overrides {
            push(&format!("|override:{tuner}={budget}"));
        }
        push(&format!("|max_cells:{:?}", self.max_cells));
        push(&format!(
            "|max_core_hours:{:?}",
            self.max_core_hours.map(f64::to_bits)
        ));
        push(&format!("|paired:{}", self.paired_tuners));
        // Only an *active* surrogate is fingerprinted (see `surrogate_active`).
        if self.surrogate_active() {
            let s = self.surrogate.expect("active implies present");
            push(&format!(
                "|surrogate:{},{},{},{}",
                s.fraction.to_bits(),
                s.min_samples,
                s.max_rel_std.to_bits(),
                s.bins
            ));
        }

        dg_exec::json::fnv1a(&encoded)
    }

    /// The deterministic root seed of cell `index`, derived with the simulator's
    /// [`mix`] so campaigns and single tournaments share one seeding discipline.
    pub fn cell_seed(&self, index: usize) -> u64 {
        mix(self.base_seed, index as u64)
    }

    /// The root RNG of cell `index`; the executor derives the environment and tuner
    /// sub-streams from it by label.
    pub fn cell_rng(&self, index: usize) -> SimRng {
        SimRng::new(self.cell_seed(index))
    }

    /// The evaluation budget for `tuner`: an explicit override when present, else the
    /// exhaustive budget for the exhaustive search, else the baseline budget.
    pub fn budget_for(&self, tuner: &str) -> usize {
        if let Some((_, budget)) = self.budget_overrides.iter().find(|(name, _)| name == tuner) {
            return *budget;
        }
        if tuner == "Exhaustive" {
            self.scale.exhaustive_budget
        } else {
            self.scale.baseline_budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> CampaignSpec {
        let mut spec = CampaignSpec::single("test", "RandomSearch", 2);
        spec.tuners = vec!["RandomSearch".into(), "BLISS".into()];
        spec.scale = ExperimentScale::smoke();
        spec
    }

    #[test]
    fn grid_is_the_cross_product_in_stable_order() {
        let spec = two_by_two();
        assert_eq!(spec.grid_size(), 4);
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].tuner, "RandomSearch");
        assert_eq!(cells[0].seed, 0);
        assert_eq!(cells[1].tuner, "RandomSearch");
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells[2].tuner, "BLISS");
        assert_eq!(cells[3].tuner, "BLISS");
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn max_cells_truncates_the_grid() {
        let mut spec = two_by_two();
        spec.max_cells = Some(3);
        assert_eq!(spec.cells().len(), 3);
        assert_eq!(spec.grid_size(), 4, "grid_size reports the full grid");
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let spec = two_by_two();
        let seeds: Vec<u64> = (0..4).map(|i| spec.cell_seed(i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "cell seeds must be distinct");
        assert_eq!(spec.cell_seed(2), spec.cell_seed(2));
        assert_eq!(spec.cell_seed(0), mix(spec.base_seed, 0));
    }

    #[test]
    fn paired_tuners_share_seed_indices_across_the_tuner_axis() {
        let mut spec = two_by_two();
        spec.paired_tuners = true;
        let cells = spec.cells();
        // 2 tuners x 2 seeds: positions 0/1 belong to the first tuner, 2/3 to the
        // second; pairing maps the second tuner's cells onto the first tuner's seeds.
        assert_eq!(cells[0].seed_index, 0);
        assert_eq!(cells[1].seed_index, 1);
        assert_eq!(cells[2].seed_index, 0);
        assert_eq!(cells[3].seed_index, 1);

        spec.paired_tuners = false;
        let unpaired = spec.cells();
        assert_eq!(unpaired[2].seed_index, 2);
        assert_eq!(unpaired[3].seed_index, 3);
    }

    #[test]
    fn budget_overrides_take_precedence() {
        let mut spec = two_by_two();
        assert_eq!(spec.budget_for("RandomSearch"), spec.scale.baseline_budget);
        assert_eq!(spec.budget_for("Exhaustive"), spec.scale.exhaustive_budget);
        spec.budget_overrides.push(("RandomSearch".into(), 7));
        assert_eq!(spec.budget_for("RandomSearch"), 7);
    }

    #[test]
    fn profile_labels_are_compact() {
        assert_eq!(profile_label(&InterferenceProfile::typical()), "typical");
        assert_eq!(profile_label(&InterferenceProfile::heavy()), "heavy");
        assert_eq!(profile_label(&InterferenceProfile::Dedicated), "dedicated");
        assert_eq!(
            profile_label(&InterferenceProfile::Constant(0.5)),
            "constant(0.5)"
        );
    }

    #[test]
    fn distinct_custom_profiles_get_distinct_labels() {
        let a = InterferenceProfile::Custom {
            base: 0.05,
            value_amplitude: 0.25,
            regime_scale: 1.0,
            burst_magnitude: 0.9,
        };
        let b = InterferenceProfile::Custom {
            base: 0.15,
            value_amplitude: 0.25,
            regime_scale: 1.0,
            burst_magnitude: 0.9,
        };
        assert_ne!(
            profile_label(&a),
            profile_label(&b),
            "group keys must distinguish different custom profiles"
        );
        assert_eq!(profile_label(&a), "custom(0.05,0.25,1,0.9)");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let spec = two_by_two();
        assert_eq!(spec.fingerprint(), two_by_two().fingerprint());

        let mut renamed = two_by_two();
        renamed.name = "other".into();
        assert_ne!(spec.fingerprint(), renamed.fingerprint());

        let mut reseeded = two_by_two();
        reseeded.base_seed ^= 1;
        assert_ne!(spec.fingerprint(), reseeded.fingerprint());

        let mut rescaled = two_by_two();
        rescaled.scale.baseline_budget += 1;
        assert_ne!(spec.fingerprint(), rescaled.fingerprint());

        let mut capped = two_by_two();
        capped.max_cells = Some(3);
        assert_ne!(spec.fingerprint(), capped.fingerprint());

        let mut paired = two_by_two();
        paired.paired_tuners = true;
        assert_ne!(spec.fingerprint(), paired.fingerprint());
    }

    #[test]
    fn scenario_axis_multiplies_the_grid_between_profiles_and_seeds() {
        use dg_scenario::ScenarioSpec;
        let mut spec = two_by_two();
        assert!(spec.has_default_scenarios());
        spec.scenarios = vec![
            ScenarioSpec::steady(),
            ScenarioSpec::by_name("regime-shift").unwrap(),
        ];
        assert!(!spec.has_default_scenarios());
        assert_eq!(spec.grid_size(), 8);
        let cells = spec.cells();
        // Scenario is the second-innermost axis: seeds cycle fastest.
        assert_eq!(cells[0].scenario.name, "steady");
        assert_eq!(cells[0].seed, 0);
        assert_eq!(cells[1].scenario.name, "steady");
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells[2].scenario.name, "regime-shift");
        assert_eq!(cells[2].seed, 0);
        spec.validate();
    }

    #[test]
    fn scenario_axis_changes_the_fingerprint() {
        use dg_scenario::ScenarioSpec;
        let spec = two_by_two();
        let mut swept = two_by_two();
        swept.scenarios = vec![
            ScenarioSpec::steady(),
            ScenarioSpec::by_name("diurnal").unwrap(),
        ];
        assert_ne!(spec.fingerprint(), swept.fingerprint());

        let mut renamed_steady = two_by_two();
        renamed_steady.scenarios = vec![ScenarioSpec::new("calm")];
        assert_ne!(
            spec.fingerprint(),
            renamed_steady.fingerprint(),
            "only the canonical steady scenario is fingerprint-neutral"
        );
    }

    #[test]
    fn inactive_surrogates_are_fingerprint_neutral() {
        let spec = two_by_two();
        let mut passthrough = two_by_two();
        passthrough.surrogate = Some(SurrogateConfig::passthrough());
        assert!(!passthrough.surrogate_active());
        assert_eq!(
            spec.fingerprint(),
            passthrough.fingerprint(),
            "a fraction-0 surrogate has no effect and must not re-key the grid"
        );
        passthrough.validate();

        let mut active = two_by_two();
        active.surrogate = Some(SurrogateConfig::default());
        assert!(active.surrogate_active());
        assert_ne!(spec.fingerprint(), active.fingerprint());
        let mut retuned = two_by_two();
        retuned.surrogate = Some(SurrogateConfig {
            min_samples: 3,
            ..SurrogateConfig::default()
        });
        assert_ne!(active.fingerprint(), retuned.fingerprint());
    }

    #[test]
    #[should_panic(expected = "surrogate fraction")]
    fn invalid_surrogate_configs_are_rejected() {
        let mut spec = two_by_two();
        spec.surrogate = Some(SurrogateConfig {
            fraction: -0.5,
            ..SurrogateConfig::default()
        });
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "unique within a campaign")]
    fn duplicate_scenario_names_rejected() {
        use dg_scenario::ScenarioSpec;
        let mut spec = two_by_two();
        spec.scenarios = vec![ScenarioSpec::steady(), ScenarioSpec::steady()];
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "at least one tuner")]
    fn empty_tuner_axis_rejected() {
        let mut spec = two_by_two();
        spec.tuners.clear();
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "max_cells must be positive")]
    fn zero_max_cells_rejected() {
        let mut spec = two_by_two();
        spec.max_cells = Some(0);
        spec.validate();
    }
}
