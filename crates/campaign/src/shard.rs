//! Distributed campaign sharding: partition a campaign grid across processes/hosts and
//! merge the per-shard results back into one report.
//!
//! PR 2's executor saturates one host; the paper-scale grids (tuners × apps × VMs ×
//! profiles × seeds) want sweeps that span hosts, the way ExpoCloud distributes
//! parameter-space exploration across cloud workers. Cells are independent and derive
//! every RNG stream from their stable grid index, so the protocol is small:
//!
//! 1. every participant builds the same [`ShardPlan`] from the shared
//!    [`CampaignSpec`] — a deterministic partition of the scheduled cell indices into
//!    `K` shards under a [`ShardStrategy`];
//! 2. shard `k` runs its slice ([`Campaign::run_shard`](crate::Campaign::run_shard))
//!    and emits a [`ShardReport`] as canonical JSON (a file, a blob, a message — any
//!    byte transport works);
//! 3. one process parses the K reports ([`ShardReport::from_json`]) and calls
//!    [`CampaignReport::merge`], which validates compatibility (spec fingerprints,
//!    disjoint exhaustive coverage), reassembles cells in stable grid order, and
//!    recomputes the group aggregates through the same streamed `dg-stats`
//!    accumulators the single-host path uses.
//!
//! Because every cell's result is a pure function of the spec and its grid index, the
//! merged report is **byte-identical** to the report a single host would have produced
//! (`cargo bench --bench fig15_vm_sweep` and `crates/campaign/tests/sharding.rs` pin
//! this). Incompatible inputs — overlapping shards, missing shards, reports from a
//! different spec — are rejected with typed [`MergeError`]s instead of corrupting the
//! output.

use crate::report::{CampaignReport, CellResult, STEADY_SCENARIO};
use crate::spec::CampaignSpec;
use dg_exec::json::{self, push_key, push_str_literal, JsonValue};
use std::fmt;
use std::fmt::Write as _;

/// How a [`ShardPlan`] distributes cell indices across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Balanced contiguous index ranges (shard sizes differ by at most one cell).
    /// Best cache/locality story when neighbouring cells share workload surfaces.
    Contiguous,
    /// Round-robin: shard `k` takes every index `i` with `i % K == k`. Spreads any
    /// axis-correlated cost gradient evenly without needing a cost model.
    Strided,
    /// Greedy longest-processing-time balancing on per-cell cost estimates (the
    /// tuner's evaluation budget, [`CampaignSpec::budget_for`]): cells are assigned,
    /// most expensive first, to the currently cheapest shard. Guarantees no shard
    /// exceeds `total/K + max_cell` estimated cost.
    CostBalanced,
}

impl ShardStrategy {
    /// Every strategy, in a stable order (useful for sweeps and property tests).
    pub const ALL: [ShardStrategy; 3] = [
        ShardStrategy::Contiguous,
        ShardStrategy::Strided,
        ShardStrategy::CostBalanced,
    ];

    /// The canonical lowercase name used in shard-report JSON and CLI arguments.
    pub fn name(&self) -> &'static str {
        match self {
            ShardStrategy::Contiguous => "contiguous",
            ShardStrategy::Strided => "strided",
            ShardStrategy::CostBalanced => "cost-balanced",
        }
    }

    /// Parses a canonical name back into a strategy.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for ShardStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic partition of a campaign's scheduled cell indices into `K` shards.
///
/// The plan is a pure function of `(spec, K, strategy)`: every participant in a
/// distributed run rebuilds it locally and gets the same assignment, so no coordinator
/// is needed. Shards disjointly cover the scheduled index space `0..scheduled_cells`
/// (some shards may be empty when `K` exceeds the cell count).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    fingerprint: u64,
    strategy: ShardStrategy,
    grid_cells: usize,
    scheduled_cells: usize,
    assignments: Vec<Vec<usize>>,
    costs: Vec<f64>,
}

impl ShardPlan {
    /// Builds the plan for `spec` split into `shards` parts under `strategy`, costing
    /// cells by their tuner evaluation budgets ([`CampaignSpec::budget_for`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or the spec is invalid.
    pub fn new(spec: &CampaignSpec, shards: usize, strategy: ShardStrategy) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        spec.validate();
        let cell_costs: Vec<f64> = spec
            .cells()
            .iter()
            .map(|cell| spec.budget_for(&cell.tuner) as f64)
            .collect();
        // Budgets are small integers, exact in f64, so this shares the float builder
        // with `with_cell_costs` without any change in the produced plans.
        Self::build(spec, shards, strategy, &cell_costs)
    }

    /// Builds the plan for `spec` using caller-supplied per-cell cost estimates (for
    /// example measured core-hours from a previous run) instead of the tuner budgets.
    ///
    /// Unlike the budget-derived costs of [`new`](Self::new), external estimates can
    /// be poisoned — a failed cell's core-hours may be `NaN` or `inf`, and a NaN fed
    /// into the LPT comparisons would silently scramble the assignment. Every cost is
    /// therefore validated up front and the poisoned index reported as a typed
    /// [`PlanError`] instead of producing a corrupt plan.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or the spec is invalid (the same contract as `new`);
    /// bad *costs* are an `Err`, not a panic, because they typically come from data
    /// files rather than code.
    pub fn with_cell_costs(
        spec: &CampaignSpec,
        shards: usize,
        strategy: ShardStrategy,
        cell_costs: &[f64],
    ) -> Result<Self, PlanError> {
        assert!(shards > 0, "a shard plan needs at least one shard");
        spec.validate();
        let scheduled = spec.cells().len();
        if cell_costs.len() != scheduled {
            return Err(PlanError::CostCountMismatch {
                cells: scheduled,
                costs: cell_costs.len(),
            });
        }
        for (index, &cost) in cell_costs.iter().enumerate() {
            if !cost.is_finite() {
                return Err(PlanError::NonFiniteCost { index, cost });
            }
            if cost < 0.0 {
                return Err(PlanError::NegativeCost { index, cost });
            }
        }
        Ok(Self::build(spec, shards, strategy, cell_costs))
    }

    /// Shared builder; callers have already validated `shards`, the spec, and (for
    /// external costs) finiteness, so `cell_costs` is known finite and non-negative.
    fn build(
        spec: &CampaignSpec,
        shards: usize,
        strategy: ShardStrategy,
        cell_costs: &[f64],
    ) -> Self {
        let scheduled = cell_costs.len();
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); shards];
        match strategy {
            ShardStrategy::Contiguous => {
                // Balanced contiguous ranges, same arithmetic as the workloads crate's
                // `IndexPartition` but tolerating more shards than cells (trailing
                // shards simply stay empty).
                let base = scheduled / shards;
                let remainder = scheduled % shards;
                for (shard, assignment) in assignments.iter_mut().enumerate() {
                    let start = shard * base + shard.min(remainder);
                    let len = base + usize::from(shard < remainder);
                    assignment.extend(start..start + len);
                }
            }
            ShardStrategy::Strided => {
                for index in 0..scheduled {
                    assignments[index % shards].push(index);
                }
            }
            ShardStrategy::CostBalanced => {
                // Greedy LPT: most expensive cells first, each onto the currently
                // cheapest shard; ties break on the lower index/shard id so the plan
                // is deterministic. `total_cmp` keeps the ordering total — the costs
                // are pre-validated finite, but a total order costs nothing and makes
                // the comparator immune to sort-order undefined behavior by
                // construction.
                let mut order: Vec<usize> = (0..scheduled).collect();
                order.sort_by(|a, b| cell_costs[*b].total_cmp(&cell_costs[*a]).then(a.cmp(b)));
                let mut loads = vec![0.0f64; shards];
                for index in order {
                    let target = (0..shards)
                        .min_by(|a, b| loads[*a].total_cmp(&loads[*b]).then(a.cmp(b)))
                        .expect("shards > 0");
                    loads[target] += cell_costs[index];
                    assignments[target].push(index);
                }
                for assignment in &mut assignments {
                    assignment.sort_unstable();
                }
            }
        }

        let costs = assignments
            .iter()
            .map(|assignment| assignment.iter().map(|i| cell_costs[*i]).sum())
            .collect();
        Self {
            fingerprint: spec.fingerprint(),
            strategy,
            grid_cells: spec.grid_size(),
            scheduled_cells: scheduled,
            assignments,
            costs,
        }
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.assignments.len()
    }

    /// Fingerprint of the spec the plan was built from ([`CampaignSpec::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The assignment strategy.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Number of scheduled cells the plan covers (after any `max_cells` cap).
    pub fn scheduled_cells(&self) -> usize {
        self.scheduled_cells
    }

    /// Size of the full cross-product grid.
    pub fn grid_cells(&self) -> usize {
        self.grid_cells
    }

    /// The cell indices assigned to `shard`, in ascending (grid) order.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn indices(&self, shard: usize) -> &[usize] {
        assert!(
            shard < self.assignments.len(),
            "shard {shard} out of range (plan has {} shards)",
            self.assignments.len()
        );
        &self.assignments[shard]
    }

    /// Estimated cost of `shard`, rounded to the nearest whole unit: summed tuner
    /// evaluation budgets for [`new`](Self::new) plans (always exact — budgets are
    /// integers), summed caller estimates for [`with_cell_costs`](Self::with_cell_costs)
    /// plans. Use [`estimated_cost_exact`](Self::estimated_cost_exact) when the
    /// fractional part matters.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn estimated_cost(&self, shard: usize) -> u64 {
        self.estimated_cost_exact(shard).round() as u64
    }

    /// Estimated cost of `shard` as the exact sum of its per-cell costs.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn estimated_cost_exact(&self, shard: usize) -> f64 {
        assert!(shard < self.costs.len(), "shard {shard} out of range");
        self.costs[shard]
    }
}

/// Why caller-supplied per-cell costs cannot drive a [`ShardPlan`].
///
/// External cost estimates (measured core-hours, persisted bench data) can carry the
/// `inf`/`NaN` sentinels this workspace uses for failed cells; letting one reach the
/// LPT comparisons would scramble the assignment without any error. Each variant names
/// the offending index so the caller can repair or drop the estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The cost slice does not have one entry per scheduled cell.
    CostCountMismatch {
        /// Scheduled cells in the spec (after any `max_cells` cap).
        cells: usize,
        /// Entries in the supplied cost slice.
        costs: usize,
    },
    /// A cost is `NaN` or infinite (typically a failed cell's sentinel).
    NonFiniteCost {
        /// Index of the poisoned cell cost.
        index: usize,
        /// The offending value.
        cost: f64,
    },
    /// A cost is negative, which has no meaning for a load estimate.
    NegativeCost {
        /// Index of the negative cell cost.
        index: usize,
        /// The offending value.
        cost: f64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::CostCountMismatch { cells, costs } => write!(
                f,
                "cost count mismatch: {cells} scheduled cells but {costs} cost estimates"
            ),
            PlanError::NonFiniteCost { index, cost } => {
                write!(f, "cell {index} has a non-finite cost estimate ({cost})")
            }
            PlanError::NegativeCost { index, cost } => {
                write!(f, "cell {index} has a negative cost estimate ({cost})")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The result of running one shard of a campaign: the completed cells plus everything
/// the merge needs to validate compatibility and coverage.
///
/// Serializes to canonical JSON ([`to_json`](Self::to_json)) and parses back
/// losslessly ([`from_json`](Self::from_json)), so OS processes (or hosts) can hand
/// reports around as plain files.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Campaign name, from the spec.
    pub campaign: String,
    /// Fingerprint of the producing spec ([`CampaignSpec::fingerprint`]).
    pub fingerprint: u64,
    /// This shard's index, `0..shard_count`.
    pub shard: usize,
    /// Total number of shards in the plan.
    pub shard_count: usize,
    /// Canonical name of the plan's [`ShardStrategy`].
    pub strategy: String,
    /// Size of the full cross-product grid.
    pub grid_cells: usize,
    /// Scheduled cells of the *whole* campaign (after `max_cells`).
    pub scheduled_cells: usize,
    /// The cell indices this shard was assigned, ascending.
    pub assigned: Vec<usize>,
    /// True when this shard's `max_core_hours` cap stopped it before every assigned
    /// cell ran (the cap is per-shard in a sharded run).
    pub budget_exhausted: bool,
    /// The completed cells, in stable grid order.
    pub cells: Vec<CellResult>,
}

impl ShardReport {
    /// Canonical JSON serialization: fixed key order, no whitespace,
    /// shortest-round-trip floats; the fingerprint is rendered as a fixed-width hex
    /// string so it never loses precision in number-typed JSON readers.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 256);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "campaign");
        push_str_literal(&mut out, &self.campaign);
        push_key(&mut out, &mut first, "fingerprint");
        push_str_literal(&mut out, &format!("{:016x}", self.fingerprint));
        push_key(&mut out, &mut first, "shard");
        let _ = write!(out, "{}", self.shard);
        push_key(&mut out, &mut first, "shard_count");
        let _ = write!(out, "{}", self.shard_count);
        push_key(&mut out, &mut first, "strategy");
        push_str_literal(&mut out, &self.strategy);
        push_key(&mut out, &mut first, "grid_cells");
        let _ = write!(out, "{}", self.grid_cells);
        push_key(&mut out, &mut first, "scheduled_cells");
        let _ = write!(out, "{}", self.scheduled_cells);
        push_key(&mut out, &mut first, "assigned");
        out.push('[');
        for (i, index) in self.assigned.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{index}");
        }
        out.push(']');
        push_key(&mut out, &mut first, "budget_exhausted");
        out.push_str(if self.budget_exhausted {
            "true"
        } else {
            "false"
        });
        push_key(&mut out, &mut first, "cells");
        out.push('[');
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            cell.to_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses a shard report from its canonical JSON form.
    ///
    /// The round trip is lossless, including non-finite floats: infinities and NaN
    /// serialize to the strings `"inf"`/`"-inf"`/`"nan"` and parse back bit-for-bit
    /// (the legacy `null` encoding older writers used is still accepted as NaN).
    pub fn from_json(text: &str) -> Result<Self, ShardParseError> {
        let root = json::parse(text).map_err(ShardParseError::new)?;
        let assigned = array_field(&root, "assigned")?
            .iter()
            .map(|v| number_as::<usize>(v, "assigned[]"))
            .collect::<Result<Vec<usize>, _>>()?;
        let cells = array_field(&root, "cells")?
            .iter()
            .map(parse_cell)
            .collect::<Result<Vec<CellResult>, _>>()?;
        let fingerprint_hex = str_field(&root, "fingerprint")?;
        let fingerprint = u64::from_str_radix(&fingerprint_hex, 16).map_err(|_| {
            ShardParseError::new(format!("invalid fingerprint {fingerprint_hex:?}"))
        })?;
        Ok(Self {
            campaign: str_field(&root, "campaign")?,
            fingerprint,
            shard: number_field(&root, "shard")?,
            shard_count: number_field(&root, "shard_count")?,
            strategy: str_field(&root, "strategy")?,
            grid_cells: number_field(&root, "grid_cells")?,
            scheduled_cells: number_field(&root, "scheduled_cells")?,
            assigned,
            budget_exhausted: bool_field(&root, "budget_exhausted")?,
            cells,
        })
    }
}

/// A malformed shard-report document (syntax error, missing field, wrong type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardParseError {
    message: String,
}

impl ShardParseError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShardParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid shard report: {}", self.message)
    }
}

impl std::error::Error for ShardParseError {}

fn field<'a>(root: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ShardParseError> {
    root.get(key)
        .ok_or_else(|| ShardParseError::new(format!("missing field {key:?}")))
}

fn str_field(root: &JsonValue, key: &str) -> Result<String, ShardParseError> {
    field(root, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ShardParseError::new(format!("field {key:?} is not a string")))
}

fn bool_field(root: &JsonValue, key: &str) -> Result<bool, ShardParseError> {
    field(root, key)?
        .as_bool()
        .ok_or_else(|| ShardParseError::new(format!("field {key:?} is not a boolean")))
}

fn array_field<'a>(root: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], ShardParseError> {
    field(root, key)?
        .as_array()
        .ok_or_else(|| ShardParseError::new(format!("field {key:?} is not an array")))
}

fn number_as<T: std::str::FromStr>(value: &JsonValue, context: &str) -> Result<T, ShardParseError> {
    value
        .number_token()
        .and_then(|token| token.parse::<T>().ok())
        .ok_or_else(|| ShardParseError::new(format!("field {context:?} is not a valid number")))
}

fn number_field<T: std::str::FromStr>(root: &JsonValue, key: &str) -> Result<T, ShardParseError> {
    number_as(field(root, key)?, key)
}

/// Floats use the shared lossless encoding of `dg_exec::json`: non-finite values are
/// the strings `"inf"`/`"-inf"`/`"nan"`, and the legacy `null` (which older writers
/// emitted for every non-finite value) still parses as NaN.
fn f64_field(root: &JsonValue, key: &str) -> Result<f64, ShardParseError> {
    json::parse_f64(field(root, key)?)
        .map_err(|detail| ShardParseError::new(format!("field {key:?}: {detail}")))
}

fn parse_cell(value: &JsonValue) -> Result<CellResult, ShardParseError> {
    Ok(CellResult {
        index: number_field(value, "index")?,
        tuner: str_field(value, "tuner")?,
        application: str_field(value, "application")?,
        vm: str_field(value, "vm")?,
        profile: str_field(value, "profile")?,
        // The writer omits the scenario key for the default pass-through scenario, so
        // pre-scenario shard reports (and default-axis ones) stay parseable unchanged.
        scenario: match value.get("scenario") {
            Some(scenario) => scenario
                .as_str()
                .ok_or_else(|| ShardParseError::new("field \"scenario\" is not a string"))?
                .to_string(),
            None => STEADY_SCENARIO.to_string(),
        },
        seed: number_field(value, "seed")?,
        chosen: number_field(value, "chosen")?,
        mean_time: f64_field(value, "mean_time")?,
        cov_percent: f64_field(value, "cov_percent")?,
        samples: number_field(value, "samples")?,
        core_hours: f64_field(value, "core_hours")?,
        wall_clock_seconds: f64_field(value, "wall_clock_seconds")?,
        // Written only when a surrogate served at least one evaluation; pre-surrogate
        // (and surrogate-less) reports carry no key.
        model_evals: match value.get("model_evals") {
            Some(count) => number_as::<u64>(count, "model_evals")?,
            None => 0,
        },
        // Written only for failed cells; healthy (and pre-ProcessBackend) reports
        // carry no key.
        failure: match value.get("failure") {
            Some(failure) => Some(
                failure
                    .as_str()
                    .ok_or_else(|| ShardParseError::new("field \"failure\" is not a string"))?
                    .to_string(),
            ),
            None => None,
        },
    })
}

/// Why a set of shard reports cannot be merged into a campaign report.
///
/// Every variant is a *rejection*: `merge` never silently drops, deduplicates, or
/// invents cells — incompatible inputs fail loudly so a distributed run can retry the
/// offending shard instead of publishing a corrupt report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No shard reports were supplied.
    NoShards,
    /// Two reports disagree on a spec-level field (fingerprint, grid size, shard
    /// count, strategy, campaign name).
    SpecMismatch {
        /// Which field disagreed.
        field: &'static str,
        /// The value of the first report.
        expected: String,
        /// The conflicting value.
        found: String,
    },
    /// A report's shard index is not below its declared shard count.
    ShardIndexOutOfRange {
        /// The offending shard index.
        shard: usize,
        /// The declared shard count.
        shard_count: usize,
    },
    /// Two reports claim the same shard index.
    DuplicateShard {
        /// The duplicated shard index.
        shard: usize,
    },
    /// Fewer reports than the declared shard count; `shard` is the first absent one.
    MissingShard {
        /// The first missing shard index.
        shard: usize,
    },
    /// A cell index is assigned to more than one shard.
    OverlappingCell {
        /// The multiply-assigned cell index.
        index: usize,
    },
    /// A scheduled cell index is assigned to no shard.
    UncoveredCell {
        /// The unassigned cell index.
        index: usize,
    },
    /// An assigned cell index is outside the scheduled range.
    CellIndexOutOfRange {
        /// The offending cell index.
        index: usize,
        /// The number of scheduled cells.
        scheduled_cells: usize,
    },
    /// A shard reports a completed cell it was never assigned.
    ForeignCell {
        /// The shard reporting the cell.
        shard: usize,
        /// The unassigned cell index it reported.
        index: usize,
    },
    /// A shard reports the same completed cell more than once — its report is corrupt
    /// (and would otherwise mask a dropped cell, since only counts are compared).
    DuplicateCell {
        /// The shard reporting the cell.
        shard: usize,
        /// The repeated cell index.
        index: usize,
    },
    /// A shard completed fewer cells than assigned without declaring budget
    /// exhaustion — its report is truncated or corrupt.
    IncompleteShard {
        /// The offending shard index.
        shard: usize,
        /// How many cells it was assigned.
        assigned: usize,
        /// How many it reported complete.
        completed: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard reports to merge"),
            MergeError::SpecMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "shard reports disagree on {field}: {expected:?} vs {found:?}"
            ),
            MergeError::ShardIndexOutOfRange { shard, shard_count } => {
                write!(f, "shard index {shard} out of range (count {shard_count})")
            }
            MergeError::DuplicateShard { shard } => {
                write!(f, "shard {shard} appears more than once")
            }
            MergeError::MissingShard { shard } => write!(f, "shard {shard} is missing"),
            MergeError::OverlappingCell { index } => {
                write!(f, "cell {index} is assigned to more than one shard")
            }
            MergeError::UncoveredCell { index } => {
                write!(f, "cell {index} is assigned to no shard")
            }
            MergeError::CellIndexOutOfRange {
                index,
                scheduled_cells,
            } => write!(
                f,
                "cell index {index} outside the scheduled range ({scheduled_cells} cells)"
            ),
            MergeError::ForeignCell { shard, index } => {
                write!(
                    f,
                    "shard {shard} reports cell {index} it was never assigned"
                )
            }
            MergeError::DuplicateCell { shard, index } => {
                write!(f, "shard {shard} reports cell {index} more than once")
            }
            MergeError::IncompleteShard {
                shard,
                assigned,
                completed,
            } => write!(
                f,
                "shard {shard} completed {completed} of {assigned} assigned cells \
                 without declaring budget exhaustion"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

impl CampaignReport {
    /// Merges the reports of a sharded campaign back into one [`CampaignReport`].
    ///
    /// Validates that the reports come from one plan over one spec (fingerprints,
    /// shard count, strategy), that every shard is present exactly once, and that the
    /// declared assignments disjointly cover the whole scheduled index space; then
    /// reassembles the cells in stable grid order and recomputes the per-group
    /// aggregates through the same streamed `dg-stats` accumulators the single-host
    /// executor uses. For uncapped campaigns the result is byte-identical (in its
    /// [`to_json`](Self::to_json) form) to a single-host run of the same spec.
    ///
    /// The merged `budget_exhausted` flag is the OR over the shards' flags: a sharded
    /// campaign ran its `max_core_hours` cap per shard, and any shard stopping early
    /// means the merged report is missing cells just like a capped single-host run.
    pub fn merge(shards: Vec<ShardReport>) -> Result<CampaignReport, MergeError> {
        let first = shards.first().ok_or(MergeError::NoShards)?;
        let (name, fingerprint) = (first.campaign.clone(), first.fingerprint);
        let (shard_count, strategy) = (first.shard_count, first.strategy.clone());
        let (grid_cells, scheduled_cells) = (first.grid_cells, first.scheduled_cells);
        for shard in &shards {
            let mismatch =
                |field: &'static str, expected: &dyn fmt::Display, found: &dyn fmt::Display| {
                    MergeError::SpecMismatch {
                        field,
                        expected: expected.to_string(),
                        found: found.to_string(),
                    }
                };
            if shard.fingerprint != fingerprint {
                return Err(mismatch(
                    "fingerprint",
                    &format!("{fingerprint:016x}"),
                    &format!("{:016x}", shard.fingerprint),
                ));
            }
            if shard.campaign != name {
                return Err(mismatch("campaign", &name, &shard.campaign));
            }
            if shard.shard_count != shard_count {
                return Err(mismatch("shard_count", &shard_count, &shard.shard_count));
            }
            if shard.strategy != strategy {
                return Err(mismatch("strategy", &strategy, &shard.strategy));
            }
            if shard.grid_cells != grid_cells {
                return Err(mismatch("grid_cells", &grid_cells, &shard.grid_cells));
            }
            if shard.scheduled_cells != scheduled_cells {
                return Err(mismatch(
                    "scheduled_cells",
                    &scheduled_cells,
                    &shard.scheduled_cells,
                ));
            }
        }

        // Every shard exactly once.
        let mut seen_shards = vec![false; shard_count];
        for shard in &shards {
            if shard.shard >= shard_count {
                return Err(MergeError::ShardIndexOutOfRange {
                    shard: shard.shard,
                    shard_count,
                });
            }
            if seen_shards[shard.shard] {
                return Err(MergeError::DuplicateShard { shard: shard.shard });
            }
            seen_shards[shard.shard] = true;
        }
        if let Some(missing) = seen_shards.iter().position(|present| !present) {
            return Err(MergeError::MissingShard { shard: missing });
        }

        // Assignments disjointly cover 0..scheduled_cells.
        let mut owner: Vec<Option<usize>> = vec![None; scheduled_cells];
        for shard in &shards {
            for index in &shard.assigned {
                if *index >= scheduled_cells {
                    return Err(MergeError::CellIndexOutOfRange {
                        index: *index,
                        scheduled_cells,
                    });
                }
                if owner[*index].is_some() {
                    return Err(MergeError::OverlappingCell { index: *index });
                }
                owner[*index] = Some(shard.shard);
            }
        }
        if let Some(uncovered) = owner.iter().position(Option::is_none) {
            return Err(MergeError::UncoveredCell { index: uncovered });
        }

        // Completed cells belong to their shard's assignment, appear at most once
        // (a duplicate would otherwise mask a dropped cell, since only counts are
        // compared below), and un-capped shards completed everything they were
        // assigned.
        let mut completed_once = vec![false; scheduled_cells];
        for shard in &shards {
            for cell in &shard.cells {
                if cell.index >= scheduled_cells || owner[cell.index] != Some(shard.shard) {
                    return Err(MergeError::ForeignCell {
                        shard: shard.shard,
                        index: cell.index,
                    });
                }
                if completed_once[cell.index] {
                    return Err(MergeError::DuplicateCell {
                        shard: shard.shard,
                        index: cell.index,
                    });
                }
                completed_once[cell.index] = true;
            }
            if !shard.budget_exhausted && shard.cells.len() != shard.assigned.len() {
                return Err(MergeError::IncompleteShard {
                    shard: shard.shard,
                    assigned: shard.assigned.len(),
                    completed: shard.cells.len(),
                });
            }
        }

        let budget_exhausted = shards.iter().any(|shard| shard.budget_exhausted);
        let mut cells: Vec<CellResult> = shards
            .into_iter()
            .flat_map(|shard| shard.cells.into_iter())
            .collect();
        cells.sort_by_key(|cell| cell.index);
        Ok(CampaignReport::from_cells(
            name,
            grid_cells,
            scheduled_cells,
            budget_exhausted,
            cells,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    fn spec() -> CampaignSpec {
        let mut spec = CampaignSpec::single("shard-unit", "RandomSearch", 5);
        spec.tuners = vec!["RandomSearch".into(), "Exhaustive".into()];
        spec.scale = ExperimentScale::smoke();
        spec
    }

    #[test]
    fn plans_disjointly_cover_the_index_space() {
        let spec = spec();
        for strategy in ShardStrategy::ALL {
            for shards in [1, 2, 3, 7, 15] {
                let plan = ShardPlan::new(&spec, shards, strategy);
                let mut seen = vec![false; plan.scheduled_cells()];
                for shard in 0..plan.shard_count() {
                    for index in plan.indices(shard) {
                        assert!(!seen[*index], "{strategy}: cell {index} assigned twice");
                        seen[*index] = true;
                    }
                }
                assert!(
                    seen.iter().all(|covered| *covered),
                    "{strategy}/{shards}: some cell is unassigned"
                );
            }
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let spec = spec();
        for strategy in ShardStrategy::ALL {
            assert_eq!(
                ShardPlan::new(&spec, 4, strategy),
                ShardPlan::new(&spec, 4, strategy)
            );
        }
    }

    #[test]
    fn strided_assignment_is_round_robin() {
        let plan = ShardPlan::new(&spec(), 3, ShardStrategy::Strided);
        assert!(plan.indices(0).iter().all(|i| i % 3 == 0));
        assert!(plan.indices(1).iter().all(|i| i % 3 == 1));
        assert!(plan.indices(2).iter().all(|i| i % 3 == 2));
    }

    #[test]
    fn cost_balanced_respects_the_lpt_bound() {
        // Exhaustive's budget dwarfs RandomSearch's, so naive contiguous splitting
        // would be badly unbalanced; LPT must stay within total/K + max_cell.
        let spec = spec();
        let plan = ShardPlan::new(&spec, 3, ShardStrategy::CostBalanced);
        let total: u64 = (0..plan.shard_count())
            .map(|s| plan.estimated_cost(s))
            .sum();
        let max_cell = spec
            .cells()
            .iter()
            .map(|c| spec.budget_for(&c.tuner) as u64)
            .max()
            .unwrap();
        for shard in 0..plan.shard_count() {
            assert!(
                plan.estimated_cost(shard) <= total / 3 + max_cell,
                "shard {shard} exceeds the LPT bound"
            );
        }
    }

    #[test]
    fn external_costs_reproduce_the_budget_plan_when_equal() {
        // Feeding the budgets back in as external estimates must yield the exact plan
        // `new` builds — the two entry points share one builder.
        let spec = spec();
        let budgets: Vec<f64> = spec
            .cells()
            .iter()
            .map(|c| spec.budget_for(&c.tuner) as f64)
            .collect();
        for strategy in ShardStrategy::ALL {
            let from_budgets = ShardPlan::new(&spec, 3, strategy);
            let from_costs = ShardPlan::with_cell_costs(&spec, 3, strategy, &budgets)
                .expect("finite costs plan");
            assert_eq!(from_budgets, from_costs, "{strategy}");
        }
    }

    #[test]
    fn poisoned_external_costs_are_rejected_with_typed_errors() {
        let spec = spec();
        let scheduled = spec.cells().len();
        let mut costs = vec![1.0; scheduled];

        costs[2] = f64::NAN;
        assert!(matches!(
            ShardPlan::with_cell_costs(&spec, 3, ShardStrategy::CostBalanced, &costs),
            Err(PlanError::NonFiniteCost { index: 2, .. })
        ));

        costs[2] = f64::INFINITY;
        assert!(matches!(
            ShardPlan::with_cell_costs(&spec, 3, ShardStrategy::CostBalanced, &costs),
            Err(PlanError::NonFiniteCost { index: 2, .. })
        ));

        costs[2] = -1.0;
        assert!(matches!(
            ShardPlan::with_cell_costs(&spec, 3, ShardStrategy::CostBalanced, &costs),
            Err(PlanError::NegativeCost { index: 2, .. })
        ));

        costs[2] = 1.0;
        costs.pop();
        let short = ShardPlan::with_cell_costs(&spec, 3, ShardStrategy::CostBalanced, &costs);
        assert_eq!(
            short,
            Err(PlanError::CostCountMismatch {
                cells: scheduled,
                costs: scheduled - 1
            })
        );
    }

    #[test]
    fn fractional_external_costs_balance_within_the_lpt_bound() {
        let spec = spec();
        let costs: Vec<f64> = (0..spec.cells().len())
            .map(|i| 0.25 + (i % 7) as f64 * 0.375)
            .collect();
        let plan = ShardPlan::with_cell_costs(&spec, 4, ShardStrategy::CostBalanced, &costs)
            .expect("finite costs plan");
        let total: f64 = costs.iter().sum();
        let max_cell = costs.iter().fold(0.0f64, |a, &b| a.max(b));
        for shard in 0..plan.shard_count() {
            assert!(
                plan.estimated_cost_exact(shard) <= total / 4.0 + max_cell + 1e-9,
                "shard {shard} exceeds the LPT bound"
            );
        }
    }

    #[test]
    fn more_shards_than_cells_leaves_empty_shards() {
        let mut small = spec();
        small.tuners = vec!["RandomSearch".into()];
        small.seeds = vec![0, 1];
        for strategy in ShardStrategy::ALL {
            let plan = ShardPlan::new(&small, 5, strategy);
            let assigned: usize = (0..5).map(|s| plan.indices(s).len()).sum();
            assert_eq!(assigned, 2);
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for strategy in ShardStrategy::ALL {
            assert_eq!(ShardStrategy::from_name(strategy.name()), Some(strategy));
        }
        assert_eq!(ShardStrategy::from_name("bogus"), None);
    }

    fn cell(index: usize) -> CellResult {
        CellResult {
            index,
            tuner: "RandomSearch".into(),
            application: "Redis".into(),
            vm: "m5.8xlarge".into(),
            profile: "typical".into(),
            scenario: "steady".into(),
            seed: index as u64,
            chosen: 7,
            mean_time: 100.0 + index as f64,
            cov_percent: 0.5,
            samples: 4,
            core_hours: 1.0,
            wall_clock_seconds: 60.0,
            model_evals: 0,
            failure: None,
        }
    }

    fn shard_report(shard: usize, shard_count: usize, assigned: Vec<usize>) -> ShardReport {
        ShardReport {
            campaign: "shard-unit".into(),
            fingerprint: 0xfeed,
            shard,
            shard_count,
            strategy: "contiguous".into(),
            grid_cells: 4,
            scheduled_cells: 4,
            cells: assigned.iter().map(|i| cell(*i)).collect(),
            assigned,
            budget_exhausted: false,
        }
    }

    #[test]
    fn merge_reassembles_cells_in_grid_order() {
        let merged = CampaignReport::merge(vec![
            shard_report(1, 2, vec![1, 3]),
            shard_report(0, 2, vec![0, 2]),
        ])
        .expect("valid shards");
        let indices: Vec<usize> = merged.cells.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        assert_eq!(merged.scheduled_cells, 4);
        assert!(!merged.budget_exhausted);
    }

    #[test]
    fn merge_rejects_empty_input() {
        assert_eq!(CampaignReport::merge(Vec::new()), Err(MergeError::NoShards));
    }

    #[test]
    fn merge_rejects_overlapping_shards() {
        let result = CampaignReport::merge(vec![
            shard_report(0, 2, vec![0, 1, 2]),
            shard_report(1, 2, vec![2, 3]),
        ]);
        assert_eq!(result, Err(MergeError::OverlappingCell { index: 2 }));
    }

    #[test]
    fn merge_rejects_missing_shards() {
        let result = CampaignReport::merge(vec![shard_report(0, 2, vec![0, 1])]);
        assert_eq!(result, Err(MergeError::MissingShard { shard: 1 }));
    }

    #[test]
    fn merge_rejects_uncovered_cells() {
        let result = CampaignReport::merge(vec![
            shard_report(0, 2, vec![0, 1]),
            shard_report(1, 2, vec![3]),
        ]);
        assert_eq!(result, Err(MergeError::UncoveredCell { index: 2 }));
    }

    #[test]
    fn merge_rejects_mismatched_fingerprints() {
        let mut other = shard_report(1, 2, vec![2, 3]);
        other.fingerprint = 0xdead;
        let result = CampaignReport::merge(vec![shard_report(0, 2, vec![0, 1]), other]);
        assert!(matches!(
            result,
            Err(MergeError::SpecMismatch {
                field: "fingerprint",
                ..
            })
        ));
    }

    #[test]
    fn merge_rejects_duplicate_shards() {
        let result = CampaignReport::merge(vec![
            shard_report(0, 2, vec![0, 1]),
            shard_report(0, 2, vec![2, 3]),
        ]);
        assert_eq!(result, Err(MergeError::DuplicateShard { shard: 0 }));
    }

    #[test]
    fn merge_rejects_foreign_cells() {
        let mut bad = shard_report(1, 2, vec![2, 3]);
        bad.cells.push(cell(0)); // completed a cell assigned to shard 0
        let result = CampaignReport::merge(vec![shard_report(0, 2, vec![0, 1]), bad]);
        assert_eq!(result, Err(MergeError::ForeignCell { shard: 1, index: 0 }));
    }

    #[test]
    fn merge_rejects_duplicated_cells_within_a_shard() {
        // A corrupt shard that lists cell 2 twice and drops cell 3 keeps its cell
        // *count* consistent with its assignment; only per-index tracking catches it.
        let mut corrupt = shard_report(1, 2, vec![2, 3]);
        corrupt.cells = vec![cell(2), cell(2)];
        let result = CampaignReport::merge(vec![shard_report(0, 2, vec![0, 1]), corrupt]);
        assert_eq!(
            result,
            Err(MergeError::DuplicateCell { shard: 1, index: 2 })
        );
    }

    #[test]
    fn merge_rejects_silently_truncated_shards() {
        let mut truncated = shard_report(1, 2, vec![2, 3]);
        truncated.cells.pop();
        let result = CampaignReport::merge(vec![shard_report(0, 2, vec![0, 1]), truncated]);
        assert_eq!(
            result,
            Err(MergeError::IncompleteShard {
                shard: 1,
                assigned: 2,
                completed: 1
            })
        );
    }

    #[test]
    fn budget_exhausted_shards_may_be_partial_and_taint_the_merge() {
        let mut capped = shard_report(1, 2, vec![2, 3]);
        capped.cells.pop();
        capped.budget_exhausted = true;
        let merged = CampaignReport::merge(vec![shard_report(0, 2, vec![0, 1]), capped])
            .expect("capped shards merge");
        assert!(merged.budget_exhausted);
        assert_eq!(merged.completed_cells(), 3);
    }

    #[test]
    fn shard_report_json_round_trips() {
        let mut report = shard_report(1, 3, vec![1, 3]);
        report.fingerprint = u64::MAX;
        report.cells[0].mean_time = 0.1 + 0.2; // a value whose shortest form matters
        report.cells[1].cov_percent = f64::NAN; // serializes to "nan", parses to NaN
        let json = report.to_json();
        let parsed = ShardReport::from_json(&json).expect("own output parses");
        assert_eq!(parsed.campaign, report.campaign);
        assert_eq!(parsed.fingerprint, report.fingerprint);
        assert_eq!(parsed.assigned, report.assigned);
        assert_eq!(
            parsed.cells[0].mean_time.to_bits(),
            report.cells[0].mean_time.to_bits()
        );
        assert!(parsed.cells[1].cov_percent.is_nan());
        // Re-serializing the parsed report reproduces the exact bytes.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn non_finite_shard_floats_round_trip_bit_for_bit() {
        let mut report = shard_report(0, 2, vec![0, 2]);
        report.cells[0].mean_time = f64::INFINITY; // a failed cell's sentinel
        report.cells[0].wall_clock_seconds = f64::NEG_INFINITY;
        report.cells[0].cov_percent = f64::NAN;
        report.cells[0].failure = Some("process exited with status 7".to_string());
        let json = report.to_json();
        assert!(json.contains("\"mean_time\":\"inf\""));
        assert!(json.contains("\"wall_clock_seconds\":\"-inf\""));
        assert!(json.contains("\"cov_percent\":\"nan\""));
        assert!(json.contains("\"failure\":\"process exited with status 7\""));
        let parsed = ShardReport::from_json(&json).expect("own output parses");
        assert_eq!(parsed.cells[0].mean_time.to_bits(), f64::INFINITY.to_bits());
        assert_eq!(
            parsed.cells[0].wall_clock_seconds.to_bits(),
            f64::NEG_INFINITY.to_bits()
        );
        assert!(parsed.cells[0].cov_percent.is_nan());
        assert_eq!(parsed.cells[0].failure, report.cells[0].failure);
        assert_eq!(parsed.to_json(), json);
        // The legacy encoding (a bare `null`) still parses as NaN.
        let legacy = json.replace("\"cov_percent\":\"nan\"", "\"cov_percent\":null");
        let parsed = ShardReport::from_json(&legacy).expect("legacy null parses");
        assert!(parsed.cells[0].cov_percent.is_nan());
    }

    #[test]
    fn shard_report_parse_errors_are_typed() {
        assert!(ShardReport::from_json("not json").is_err());
        assert!(ShardReport::from_json("{}").is_err());
        let mut report = shard_report(0, 1, vec![0, 1, 2, 3]);
        report.strategy = "contiguous".into();
        let broken = report
            .to_json()
            .replace("\"shard\":0", "\"shard\":\"zero\"");
        assert!(ShardReport::from_json(&broken).is_err());
    }
}
