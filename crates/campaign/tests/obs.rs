//! The `dg-obs` campaign neutrality battery.
//!
//! Observability must never perturb canonical artifacts: with the gate on and sinks
//! installed (every event constructed and delivered), campaign, shard, and replay
//! reports must stay **byte-identical** to a bare run — across worker counts. The
//! vendored proptest harness runs 64 deterministic cases per property, rotating
//! through the three report kinds.
//!
//! The second battery pins the claim-sequence contract: cell events recorded from a
//! parallel run, ordered by their `cell_seq` stamps, replay to exactly the sequence a
//! 1-worker run produces.
//!
//! The global event gate and sink registry are process-wide, so everything
//! serializes on a shared mutex and restores the disabled state before releasing it.

use dg_campaign::{Campaign, CampaignSpec, ExperimentScale, ShardPlan, ShardStrategy};
use dg_cloudsim::{InterferenceProfile, VmType};
use dg_obs::{install_sink, remove_sink, set_obs_enabled, ObsEvent, ObsRecord, RingSink};
use dg_workloads::Application;
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes the battery: the obs gate and sink registry are process-global.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` with observability fully live (gate on, a bounded ring installed) and
/// restores the disabled state afterwards, returning the result and the ring.
fn with_live_obs<T>(f: impl FnOnce() -> T) -> (T, Arc<RingSink>) {
    let ring = Arc::new(RingSink::new(65_536));
    set_obs_enabled(true);
    let id = install_sink(ring.clone());
    let result = f();
    remove_sink(id);
    set_obs_enabled(false);
    (result, ring)
}

/// A deliberately tiny per-cell scale so 64 differential cases stay fast.
fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        space_size: 400,
        regions: 4,
        players_per_game: 4,
        baseline_budget: 6,
        exhaustive_budget: 24,
        evaluation_runs: 4,
        evaluation_spacing: 600.0,
        tuning_repeats: 1,
    }
}

/// Builds a randomized small grid from the sampled axis sizes.
fn random_spec(tuner_count: usize, seed_count: u64, base_seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("obs-differential");
    let tuner_pool = ["RandomSearch", "OpenTuner", "ActiveHarmony"];
    spec.tuners = tuner_pool[..tuner_count]
        .iter()
        .map(|t| t.to_string())
        .collect();
    spec.applications = vec![Application::Redis];
    spec.vm_types = vec![VmType::M5_8xlarge];
    spec.profiles = vec![InterferenceProfile::typical()];
    spec.seeds = (0..seed_count).collect();
    spec.scale = tiny_scale();
    spec.base_seed = base_seed;
    spec
}

/// The normalised form of one cell event: claim sequence, kind rank (start = 0,
/// finish = 1), and the cell's stable grid index.
fn cell_sequence(records: &[ObsRecord]) -> Vec<(u64, u8, usize)> {
    let mut events: Vec<(u64, u8, usize)> = records
        .iter()
        .filter_map(|r| match &r.event {
            ObsEvent::CellStart {
                cell_seq, index, ..
            } => Some((*cell_seq, 0, *index)),
            ObsEvent::CellFinish {
                cell_seq, index, ..
            } => Some((*cell_seq, 1, *index)),
            _ => None,
        })
        .collect();
    events.sort_unstable();
    events
}

proptest! {
    /// The differential property: with observability live, every canonical report —
    /// whole-campaign, per-shard, and replayed-from-trace — is byte-identical to the
    /// bare 1-worker run, regardless of the instrumented run's worker count.
    #[test]
    fn instrumented_reports_are_byte_identical_to_bare(
        tuner_count in 1usize..3,
        seed_count in 1u64..3,
        base_seed in 0u64..1_000_000,
        workers in 2usize..5,
        mode in 0usize..3,
    ) {
        let _guard = obs_lock();
        let spec = random_spec(tuner_count, seed_count, base_seed);
        let campaign = Campaign::new(spec.clone());
        set_obs_enabled(false);
        match mode {
            0 => {
                let bare = campaign.run_with_workers(1);
                let (instrumented, ring) =
                    with_live_obs(|| campaign.run_with_workers(workers));
                prop_assert_eq!(
                    bare.to_json(),
                    instrumented.to_json(),
                    "live instrumentation perturbed the campaign report"
                );
                prop_assert!(!ring.is_empty(), "live obs produced no events");
            }
            1 => {
                let plan = ShardPlan::new(&spec, 2, ShardStrategy::CostBalanced);
                for shard in 0..plan.shard_count() {
                    let bare = campaign.run_shard_with_workers(&plan, shard, 1);
                    let (instrumented, _ring) = with_live_obs(|| {
                        campaign.run_shard_with_workers(&plan, shard, workers)
                    });
                    prop_assert_eq!(
                        bare.to_json(),
                        instrumented.to_json(),
                        "live instrumentation perturbed shard {}", shard
                    );
                }
            }
            _ => {
                let (recorded, trace) = campaign.record_with_workers(1);
                let (replayed, _ring) = with_live_obs(|| {
                    campaign
                        .replay_with_workers(trace, workers)
                        .expect("instrumented replay succeeds")
                });
                prop_assert_eq!(
                    recorded.to_json(),
                    replayed.to_json(),
                    "live instrumentation perturbed the replayed report"
                );
            }
        }
    }

    /// The claim-sequence contract: cell events from an N-worker run, ordered by
    /// their deterministic `cell_seq` stamps, are exactly the 1-worker sequence —
    /// one start and one finish per scheduled cell, indices in schedule order.
    #[test]
    fn claim_sequences_replay_identically_across_worker_counts(
        tuner_count in 1usize..3,
        seed_count in 1u64..3,
        base_seed in 0u64..1_000_000,
        workers in 2usize..5,
    ) {
        let _guard = obs_lock();
        let spec = random_spec(tuner_count, seed_count, base_seed);
        let campaign = Campaign::new(spec.clone());
        let (_report, serial_ring) = with_live_obs(|| campaign.run_with_workers(1));
        let (_report, parallel_ring) =
            with_live_obs(|| campaign.run_with_workers(workers));
        let serial = cell_sequence(&serial_ring.drain());
        let parallel = cell_sequence(&parallel_ring.drain());
        prop_assert_eq!(
            &serial, &parallel,
            "normalised cell-event sequences diverged across worker counts"
        );
        let cells = spec.cells().len();
        prop_assert_eq!(serial.len(), 2 * cells, "one start and one finish per cell");
        for (cell, chunk) in serial.chunks(2).enumerate() {
            prop_assert_eq!(chunk[0], (cell as u64, 0, cell), "start stamps claim order");
            prop_assert_eq!(chunk[1], (cell as u64, 1, cell), "finish stamps claim order");
        }
    }
}
