//! The sharding differential battery: sharded campaigns are indistinguishable from
//! whole campaigns.
//!
//! The load-bearing property of the whole subsystem is pinned here: for randomized
//! `(grid, K, strategy)` triples, running the campaign whole and running it as K
//! shards (each shard round-tripped through its JSON file format, the way real
//! shard processes hand results around) produce **byte-identical** canonical JSON
//! after [`CampaignReport::merge`]. The vendored proptest harness runs 64
//! deterministic cases per property.

use dg_campaign::{
    Campaign, CampaignReport, CampaignSpec, ExperimentScale, PlanError, ShardPlan, ShardReport,
    ShardStrategy,
};
use dg_cloudsim::{InterferenceProfile, VmType};
use dg_workloads::Application;
use proptest::prelude::*;

/// A deliberately tiny per-cell scale so 64 differential cases (each running every
/// cell twice) stay inside a few seconds.
fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        space_size: 400,
        regions: 4,
        players_per_game: 4,
        baseline_budget: 6,
        exhaustive_budget: 24,
        evaluation_runs: 4,
        evaluation_spacing: 600.0,
        tuning_repeats: 1,
    }
}

/// Builds a randomized small grid from the sampled axis sizes.
fn random_spec(
    tuner_count: usize,
    profile_count: usize,
    seed_count: u64,
    base_seed: u64,
    paired: bool,
) -> CampaignSpec {
    let mut spec = CampaignSpec::new("sharding-differential");
    let tuner_pool = ["RandomSearch", "OpenTuner", "ActiveHarmony"];
    spec.tuners = tuner_pool[..tuner_count]
        .iter()
        .map(|t| t.to_string())
        .collect();
    spec.applications = vec![Application::Redis];
    spec.vm_types = vec![VmType::M5_8xlarge];
    let profile_pool = [InterferenceProfile::typical(), InterferenceProfile::heavy()];
    spec.profiles = profile_pool[..profile_count].to_vec();
    spec.seeds = (0..seed_count).collect();
    spec.scale = tiny_scale();
    spec.base_seed = base_seed;
    spec.paired_tuners = paired;
    spec
}

proptest! {
    /// The differential property: whole run == merged sharded run, byte for byte,
    /// with every shard report round-tripped through its JSON wire format.
    #[test]
    fn sharded_run_merges_to_the_whole_run_byte_identically(
        tuner_count in 1usize..4,
        profile_count in 1usize..3,
        seed_count in 1u64..4,
        base_seed in 0u64..1_000_000,
        shards in 1usize..6,
        strategy_index in 0usize..3,
        paired in 0u8..2,
    ) {
        let spec = random_spec(tuner_count, profile_count, seed_count, base_seed, paired == 1);
        let strategy = ShardStrategy::ALL[strategy_index];
        let campaign = Campaign::new(spec.clone());
        let whole = campaign.run_with_workers(1);

        let plan = ShardPlan::new(&spec, shards, strategy);
        let mut reports = Vec::with_capacity(shards);
        for shard in 0..plan.shard_count() {
            // Alternate worker counts so the battery also covers the parallel path.
            let workers = 1 + (shard % 2);
            let report = campaign.run_shard_with_workers(&plan, shard, workers);
            // Round-trip through the wire format, the way real shard processes do.
            let parsed = ShardReport::from_json(&report.to_json())
                .expect("shard reports parse their own canonical output");
            prop_assert_eq!(&parsed, &report, "JSON round trip must be lossless");
            reports.push(parsed);
        }
        // Merge in reverse arrival order to prove order-independence.
        reports.reverse();
        let merged = CampaignReport::merge(reports).expect("plan shards always merge");
        prop_assert_eq!(
            merged.to_json(),
            whole.to_json(),
            "strategy {} x {} shards diverged from the whole run",
            strategy,
            shards
        );
    }

    /// Shard plans disjointly and exhaustively cover the scheduled index space, for
    /// every strategy, including grids capped by `max_cells`.
    #[test]
    fn plans_partition_the_scheduled_index_space(
        tuner_count in 1usize..4,
        profile_count in 1usize..3,
        seed_count in 1u64..5,
        shards in 1usize..9,
        strategy_index in 0usize..3,
        cap_fraction in 0.0f64..1.0,
    ) {
        let mut spec = random_spec(tuner_count, profile_count, seed_count, 1, false);
        let grid = spec.grid_size();
        let cap = 1 + (cap_fraction * grid as f64) as usize;
        if cap < grid {
            spec.max_cells = Some(cap);
        }
        let scheduled = spec.cells().len();
        let strategy = ShardStrategy::ALL[strategy_index];
        let plan = ShardPlan::new(&spec, shards, strategy);

        prop_assert_eq!(plan.scheduled_cells(), scheduled);
        let mut owner = vec![None::<usize>; scheduled];
        for shard in 0..plan.shard_count() {
            let mut previous = None;
            for index in plan.indices(shard) {
                prop_assert!(*index < scheduled, "index out of range");
                prop_assert!(owner[*index].is_none(), "cell {} assigned twice", index);
                owner[*index] = Some(shard);
                prop_assert!(previous < Some(*index), "indices must be ascending");
                previous = Some(*index);
            }
        }
        prop_assert!(owner.iter().all(Option::is_some), "some cell is uncovered");
    }

    /// Plans are a pure function of `(spec, K, strategy)`.
    #[test]
    fn plans_are_deterministic(
        tuner_count in 1usize..4,
        seed_count in 1u64..5,
        shards in 1usize..9,
        strategy_index in 0usize..3,
    ) {
        let spec = random_spec(tuner_count, 1, seed_count, 3, false);
        let strategy = ShardStrategy::ALL[strategy_index];
        let a = ShardPlan::new(&spec, shards, strategy);
        let b = ShardPlan::new(&spec.clone(), shards, strategy);
        prop_assert_eq!(a, b);
    }

    /// External (float) cost estimates either build a valid balanced plan or are
    /// rejected with a typed error naming the first poisoned index — a NaN or
    /// infinity must never silently scramble the LPT ordering.
    #[test]
    fn external_costs_never_poison_cost_balanced_plans(
        tuner_count in 1usize..4,
        seed_count in 1u64..5,
        shards in 1usize..7,
        cost_seed in 0u64..1_000_000,
        poison_kind in 0usize..4,
        poison_slot in 0usize..64,
    ) {
        let spec = random_spec(tuner_count, 1, seed_count, 9, false);
        let scheduled = spec.cells().len();
        // A cheap deterministic pseudo-random cost per cell, occasionally fractional
        // and occasionally zero, derived from the sampled seed.
        let mut costs: Vec<f64> = (0..scheduled)
            .map(|i| {
                let bits = (cost_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                (bits % 1024) as f64 / 8.0
            })
            .collect();

        // Finite costs: the plan must partition the cells and respect the LPT bound.
        let plan = ShardPlan::with_cell_costs(&spec, shards, ShardStrategy::CostBalanced, &costs)
            .expect("finite costs always plan");
        let mut covered = vec![false; scheduled];
        for shard in 0..plan.shard_count() {
            for index in plan.indices(shard) {
                prop_assert!(!covered[*index], "cell {} assigned twice", index);
                covered[*index] = true;
            }
        }
        prop_assert!(covered.iter().all(|c| *c), "some cell is uncovered");
        let total: f64 = costs.iter().sum();
        let max_cell = costs.iter().fold(0.0f64, |a, &b| a.max(b));
        for shard in 0..plan.shard_count() {
            prop_assert!(
                plan.estimated_cost_exact(shard) <= total / shards as f64 + max_cell + 1e-9,
                "shard {} cost {} exceeds LPT bound ({} total, {} max cell)",
                shard,
                plan.estimated_cost_exact(shard),
                total,
                max_cell
            );
        }

        // Poison one slot: the plan must refuse with a typed error, not reorder.
        let index = poison_slot % scheduled;
        costs[index] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0][poison_kind];
        let poisoned =
            ShardPlan::with_cell_costs(&spec, shards, ShardStrategy::CostBalanced, &costs);
        match poison_kind {
            3 => prop_assert_eq!(
                poisoned,
                Err(PlanError::NegativeCost { index, cost: -1.0 })
            ),
            _ => prop_assert!(
                matches!(poisoned, Err(PlanError::NonFiniteCost { index: i, .. }) if i == index),
                "expected NonFiniteCost at {}, got {:?}",
                index,
                poisoned
            ),
        }
    }

    /// Cost-balanced plans respect the greedy LPT bound: no shard's estimated cost
    /// exceeds `total/K + max_cell`, even with budget overrides skewing cell costs.
    #[test]
    fn cost_balanced_plans_respect_the_lpt_bound(
        tuner_count in 1usize..4,
        seed_count in 1u64..5,
        shards in 1usize..7,
        override_budget in 1usize..512,
    ) {
        let mut spec = random_spec(tuner_count, 1, seed_count, 5, false);
        // Skew one tuner's cost so balancing actually has work to do.
        spec.budget_overrides = vec![("RandomSearch".into(), override_budget)];
        let plan = ShardPlan::new(&spec, shards, ShardStrategy::CostBalanced);
        let total: u64 = (0..plan.shard_count()).map(|s| plan.estimated_cost(s)).sum();
        let max_cell = spec
            .cells()
            .iter()
            .map(|c| spec.budget_for(&c.tuner) as u64)
            .max()
            .unwrap_or(0);
        for shard in 0..plan.shard_count() {
            prop_assert!(
                plan.estimated_cost(shard) <= total / shards as u64 + max_cell,
                "shard {} cost {} exceeds LPT bound ({} total, {} max cell)",
                shard,
                plan.estimated_cost(shard),
                total,
                max_cell
            );
        }
    }
}

/// The paired-tuner ablation design survives sharding even when the strategy splits a
/// seed-pair across shards: pairing is a property of seed derivation, not scheduling.
#[test]
fn paired_tuners_survive_arbitrary_shard_splits() {
    let mut spec = random_spec(2, 1, 2, 77, true);
    spec.scale = tiny_scale();
    let campaign = Campaign::new(spec.clone());
    let whole = campaign.run_with_workers(2);

    // Strided with K=3 tears the (tuner A, tuner B) pairs apart deliberately.
    let plan = ShardPlan::new(&spec, 3, ShardStrategy::Strided);
    let reports: Vec<ShardReport> = (0..3).map(|s| campaign.run_shard(&plan, s)).collect();
    let merged = CampaignReport::merge(reports).expect("shards merge");
    assert_eq!(merged.to_json(), whole.to_json());
}

/// `max_cells`-capped campaigns shard and merge exactly like uncapped ones (the cap is
/// deterministic, so the scheduled set is identical on every participant).
#[test]
fn max_cells_capped_campaigns_shard_cleanly() {
    let mut spec = random_spec(2, 2, 2, 13, false);
    spec.max_cells = Some(5);
    let campaign = Campaign::new(spec.clone());
    let whole = campaign.run_with_workers(1);
    for strategy in ShardStrategy::ALL {
        let plan = ShardPlan::new(&spec, 2, strategy);
        let reports = vec![
            campaign.run_shard_with_workers(&plan, 0, 1),
            campaign.run_shard_with_workers(&plan, 1, 2),
        ];
        let merged = CampaignReport::merge(reports).expect("shards merge");
        assert_eq!(merged.to_json(), whole.to_json(), "strategy {strategy}");
    }
}

/// Reports produced under different base seeds refuse to merge: the fingerprint check
/// catches operator error before it corrupts a result.
#[test]
fn shards_from_different_specs_refuse_to_merge() {
    let spec_a = random_spec(1, 1, 2, 21, false);
    let mut spec_b = spec_a.clone();
    spec_b.base_seed = 22;
    let plan_a = ShardPlan::new(&spec_a, 2, ShardStrategy::Contiguous);
    let plan_b = ShardPlan::new(&spec_b, 2, ShardStrategy::Contiguous);
    let shard_a = Campaign::new(spec_a).run_shard_with_workers(&plan_a, 0, 1);
    let shard_b = Campaign::new(spec_b).run_shard_with_workers(&plan_b, 1, 1);
    let result = CampaignReport::merge(vec![shard_a, shard_b]);
    assert!(
        matches!(
            result,
            Err(dg_campaign::MergeError::SpecMismatch {
                field: "fingerprint",
                ..
            })
        ),
        "got {result:?}"
    );
}
