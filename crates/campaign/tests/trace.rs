//! Record/replay differential battery: a recorded campaign trace, round-tripped
//! through its canonical JSON wire format, replays to a `CampaignReport` that is
//! byte-identical to the live run — with zero simulator operations executed.
//!
//! Mismatched replays (different spec fingerprint, renamed campaign, truncated trace)
//! are rejected with typed [`TraceError`]s. The vendored proptest harness runs 64
//! deterministic cases per property.

use dg_campaign::{Campaign, CampaignSpec, ExperimentScale, TraceError};
use dg_cloudsim::{InterferenceProfile, VmType};
use dg_exec::{sim_ops, ExecutionTrace};
use dg_workloads::Application;
use proptest::prelude::*;
use std::sync::Arc;

/// A deliberately tiny per-cell scale so the 64 record+replay cases stay fast.
fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        space_size: 400,
        regions: 4,
        players_per_game: 4,
        baseline_budget: 6,
        exhaustive_budget: 24,
        evaluation_runs: 4,
        evaluation_spacing: 600.0,
        tuning_repeats: 1,
    }
}

fn random_spec(tuner_count: usize, seed_count: u64, base_seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("trace-differential");
    // Include DarwinGame so traces exercise games, forks, solo runs, and observations.
    let tuner_pool = ["DarwinGame", "RandomSearch", "OpenTuner"];
    spec.tuners = tuner_pool[..tuner_count]
        .iter()
        .map(|t| t.to_string())
        .collect();
    spec.applications = vec![Application::Redis];
    spec.vm_types = vec![VmType::M5_8xlarge];
    spec.profiles = vec![InterferenceProfile::typical()];
    spec.seeds = (0..seed_count).collect();
    spec.scale = tiny_scale();
    spec.base_seed = base_seed;
    spec
}

proptest! {
    /// The load-bearing property: record → serialize → parse → replay reproduces the
    /// live report byte for byte, and the replay performs zero simulator operations.
    #[test]
    fn recorded_traces_replay_byte_identically_with_zero_simulation(
        tuner_count in 1usize..4,
        seed_count in 1u64..3,
        base_seed in 0u64..1_000_000,
        workers in 1usize..3,
    ) {
        let spec = random_spec(tuner_count, seed_count, base_seed);
        let campaign = Campaign::new(spec);
        let (live_report, trace) = campaign.record_with_workers(workers);

        // Round-trip the trace through its canonical JSON wire format, the way a
        // stored trace file would travel.
        let json = trace.to_json();
        let parsed = ExecutionTrace::from_json(&json).expect("canonical traces parse");
        prop_assert_eq!(&parsed, &trace, "JSON round trip must be lossless");
        prop_assert_eq!(parsed.to_json(), json, "re-serialization is byte-identical");
        let parsed = Arc::new(parsed);

        // Single-worker replay runs on this thread, so the thread-local simulator-op
        // counter proves zero resimulation exactly.
        let before = sim_ops();
        let replayed = campaign
            .replay_with_workers(Arc::clone(&parsed), 1)
            .expect("a recorded trace replays against its own spec");
        prop_assert_eq!(
            sim_ops(),
            before,
            "replay must execute zero simulator operations"
        );
        prop_assert_eq!(
            replayed.to_json(),
            live_report.to_json(),
            "replayed report diverged from the live run"
        );
        // Replay is worker-count independent too.
        let replayed_parallel = campaign
            .replay_with_workers(Arc::clone(&parsed), 2)
            .expect("a recorded trace replays against its own spec");
        prop_assert_eq!(
            replayed_parallel.to_json(),
            replayed.to_json(),
            "replay must be byte-identical across worker counts"
        );
    }
}

#[test]
fn capped_campaigns_record_and_replay_byte_identically() {
    // A tiny core-hour cap trips after the first completed cell (serial execution
    // makes the completed set deterministic), so the live run records only a subset
    // of the grid. The recorded subset is the cap decision: replay runs exactly those
    // cells, cap disabled, and reproduces the capped report byte for byte.
    let mut spec = random_spec(3, 2, 9);
    spec.max_core_hours = Some(1.0);
    let campaign = Campaign::new(spec);
    let (live, trace) = campaign.record_with_workers(1);
    assert!(live.budget_exhausted, "the cap must trip in this setup");
    assert!(
        live.completed_cells() < campaign.spec().cells().len(),
        "some cells must have been skipped"
    );

    let trace =
        Arc::new(ExecutionTrace::from_json(&trace.to_json()).expect("canonical traces round-trip"));
    for workers in [1, 2] {
        let replayed = campaign
            .replay_with_workers(Arc::clone(&trace), workers)
            .expect("a capped run's own trace replays");
        assert_eq!(
            replayed.to_json(),
            live.to_json(),
            "capped replay ({workers} workers) diverged from the live run"
        );
    }
}

#[test]
fn replaying_against_a_mismatched_spec_is_a_typed_error() {
    let spec = random_spec(1, 1, 42);
    let campaign = Campaign::new(spec.clone());
    let (_, trace) = campaign.record_with_workers(1);

    // Same grid, different base seed: different fingerprint.
    let mut reseeded = spec.clone();
    reseeded.base_seed ^= 0xdead;
    let err = Campaign::new(reseeded.clone())
        .replay(trace)
        .expect_err("a reseeded spec must reject the trace");
    assert_eq!(
        err,
        TraceError::FingerprintMismatch {
            expected: reseeded.fingerprint(),
            found: spec.fingerprint(),
        }
    );
    assert!(err.to_string().contains("different campaign spec"));
}

#[test]
fn replaying_a_truncated_trace_is_a_typed_error() {
    let mut capped = random_spec(1, 2, 7);
    capped.max_cells = Some(1);
    let (_, trace) = Campaign::new(capped.clone()).record_with_workers(1);

    // The full grid needs cell-1, which the capped trace never recorded. (The capped
    // spec has a different fingerprint too, so rebuild the trace around the full
    // spec's identity to isolate the missing-stream check.)
    let mut full = capped.clone();
    full.max_cells = None;
    let json = trace.to_json().replace(
        &format!("\"fingerprint\":{}", capped.fingerprint()),
        &format!("\"fingerprint\":{}", full.fingerprint()),
    );
    let renamed = ExecutionTrace::from_json(&json).expect("edited trace still parses");
    let err = Campaign::new(full)
        .replay(renamed)
        .expect_err("missing cell streams must be rejected");
    assert_eq!(
        err,
        TraceError::MissingStream {
            stream: "cell-1".into()
        }
    );
}

#[test]
fn replaying_a_renamed_campaign_is_a_typed_error() {
    let spec = random_spec(1, 1, 3);
    let (_, trace) = Campaign::new(spec.clone()).record_with_workers(1);
    let mut renamed = spec;
    renamed.name = "something-else".into();
    // Renaming changes the fingerprint as well; the fingerprint check fires first.
    let err = Campaign::new(renamed)
        .replay(trace)
        .expect_err("renamed campaigns must be rejected");
    assert!(matches!(err, TraceError::FingerprintMismatch { .. }));
}
