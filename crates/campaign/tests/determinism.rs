//! Campaign determinism: the report is a pure function of the spec.
//!
//! The executor fans cells out across worker threads; these tests pin the property the
//! rest of the repository relies on — worker count and completion order are invisible
//! in the result — plus the budget-cap contract: a capped campaign reports exactly the
//! cells that completed.

use dg_campaign::{Campaign, CampaignSpec, ExperimentScale};
use dg_cloudsim::InterferenceProfile;

fn small_grid() -> CampaignSpec {
    let mut spec = CampaignSpec::single("determinism", "RandomSearch", 2);
    spec.tuners = vec!["RandomSearch".into(), "BLISS".into()];
    spec.profiles = vec![InterferenceProfile::typical(), InterferenceProfile::heavy()];
    spec.scale = ExperimentScale::smoke();
    spec.base_seed = 7;
    spec
}

#[test]
fn one_worker_and_many_workers_emit_byte_identical_json() {
    let campaign = Campaign::new(small_grid());
    let serial = campaign.run_with_workers(1);
    let parallel = campaign.run_with_workers(4);
    assert_eq!(serial.completed_cells(), 8);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "worker count must be invisible in the report"
    );
    // And the structured reports agree too, not just their serialization.
    assert_eq!(serial, parallel);
}

#[test]
fn repeated_runs_are_identical() {
    let campaign = Campaign::new(small_grid());
    let a = campaign.run_with_workers(2);
    let b = campaign.run_with_workers(3);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn report_lists_cells_in_stable_grid_order() {
    let report = Campaign::new(small_grid()).run_with_workers(4);
    let indices: Vec<usize> = report.cells.iter().map(|c| c.index).collect();
    assert_eq!(indices, (0..8).collect::<Vec<_>>());
    // Grid order: tuners outermost, then profiles, then seeds.
    assert_eq!(report.cells[0].tuner, "RandomSearch");
    assert_eq!(report.cells[0].profile, "typical");
    assert_eq!(report.cells[0].seed, 0);
    assert_eq!(report.cells[3].tuner, "RandomSearch");
    assert_eq!(report.cells[3].profile, "heavy");
    assert_eq!(report.cells[3].seed, 1);
    assert_eq!(report.cells[4].tuner, "BLISS");
}

#[test]
fn budget_capped_campaign_reports_exactly_the_completed_cells() {
    let mut spec = small_grid();
    // Every smoke-scale cell costs well over 0.1 core-hours, so the cap trips after the
    // very first completed cell.
    spec.max_core_hours = Some(0.1);
    let report = Campaign::new(spec).run_with_workers(1);

    assert!(report.budget_exhausted, "the cap must be reported");
    assert!(report.completed_cells() < report.scheduled_cells);
    assert_eq!(report.completed_cells(), 1, "1 worker stops after one cell");
    // The reported cell set is exactly what completed: stable order, no gaps invented,
    // and the totals are consistent with the listed cells.
    assert_eq!(report.cells[0].index, 0);
    let listed: f64 = report.cells.iter().map(|c| c.core_hours).sum();
    assert!((report.total_core_hours - listed).abs() < 1e-12);
    let grouped: usize = report.groups.iter().map(|g| g.cells).sum();
    assert_eq!(grouped, report.completed_cells());
}

#[test]
fn budget_capped_parallel_run_is_still_consistent() {
    let mut spec = small_grid();
    spec.max_core_hours = Some(0.1);
    let report = Campaign::new(spec).run_with_workers(4);
    // Which cells complete depends on scheduling, but the report must describe exactly
    // the completed set: indices unique, ascending, within the scheduled range, and
    // totals derived from the listed cells only.
    assert!(report.budget_exhausted);
    assert!(!report.cells.is_empty());
    let indices: Vec<usize> = report.cells.iter().map(|c| c.index).collect();
    let mut sorted = indices.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(indices, sorted, "cells must be unique and in grid order");
    assert!(indices.iter().all(|i| *i < report.scheduled_cells));
    let listed: f64 = report.cells.iter().map(|c| c.core_hours).sum();
    assert!((report.total_core_hours - listed).abs() < 1e-12);
}

#[test]
fn max_cells_truncation_is_deterministic() {
    let mut spec = small_grid();
    spec.max_cells = Some(3);
    let campaign = Campaign::new(spec);
    let serial = campaign.run_with_workers(1);
    let parallel = campaign.run_with_workers(4);
    assert_eq!(serial.scheduled_cells, 3);
    assert_eq!(serial.completed_cells(), 3);
    assert_eq!(serial.grid_cells, 8);
    assert!(!serial.budget_exhausted);
    assert_eq!(serial.to_json(), parallel.to_json());
}
