//! The lab kill-and-resume battery: interrupted campaigns resume losslessly.
//!
//! The load-bearing property of the campaign lab is pinned here as a differential
//! proptest: for randomized grids, completing a lab, "killing" it by deleting a
//! random prefix of its completed cell files, and resuming (optionally in
//! `max_new_cells`-capped sessions) produces a final merged report **byte-identical**
//! to both an uninterrupted lab run and a plain in-memory `run()`. The vendored
//! proptest harness runs 64 deterministic cases per property.

use dg_campaign::{Campaign, CampaignLab, CampaignSpec, ExperimentScale};
use dg_cloudsim::{InterferenceProfile, VmType};
use dg_exec::SimProvider;
use dg_workloads::Application;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique per-invocation lab directories so parallel tests never collide.
fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("dg-lab-{}-{tag}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deliberately tiny per-cell scale so 64 differential cases (each running every
/// cell at least twice) stay inside a few seconds.
fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        space_size: 400,
        regions: 4,
        players_per_game: 4,
        baseline_budget: 6,
        exhaustive_budget: 24,
        evaluation_runs: 4,
        evaluation_spacing: 600.0,
        tuning_repeats: 1,
    }
}

/// Builds a randomized small grid from the sampled axis sizes.
fn random_spec(tuner_count: usize, seed_count: u64, base_seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("lab-differential");
    let tuner_pool = ["RandomSearch", "OpenTuner", "ActiveHarmony"];
    spec.tuners = tuner_pool[..tuner_count]
        .iter()
        .map(|t| t.to_string())
        .collect();
    spec.applications = vec![Application::Redis];
    spec.vm_types = vec![VmType::M5_8xlarge];
    spec.profiles = vec![InterferenceProfile::typical()];
    spec.seeds = (0..seed_count).collect();
    spec.scale = tiny_scale();
    spec.base_seed = base_seed;
    spec
}

proptest! {
    /// The differential property: a lab killed after an arbitrary prefix of its cells
    /// and resumed (in sessions of arbitrary size, on varying worker counts) merges
    /// to the byte-identical report of an uninterrupted run.
    #[test]
    fn killed_labs_resume_to_the_byte_identical_report(
        tuner_count in 1usize..3,
        seed_count in 1u64..3,
        base_seed in 0u64..1_000_000,
        keep_num in 0usize..16,
        session_cap in 0usize..3,
    ) {
        let spec = random_spec(tuner_count, seed_count, base_seed);
        let campaign = Campaign::new(spec.clone());
        let whole = campaign.run_with_workers(1);

        let dir = unique_dir("resume");
        let lab = CampaignLab::open(&dir, &spec).expect("lab opens");
        let outcome = campaign
            .run_lab_session(&lab, &SimProvider, 2, None)
            .expect("uninterrupted session runs");
        prop_assert_eq!(outcome.loaded_cells, 0);
        let full = outcome.report.expect("uncapped session completes the lab");
        prop_assert_eq!(full.to_json(), whole.to_json(), "lab run diverged from run()");

        // "Kill": delete the completed cells beyond a random prefix, exactly the disk
        // state a run killed mid-flight leaves behind (flushes are atomic, so partial
        // files never occur — a killed writer leaves at most an ignored `.tmp`).
        let scheduled = spec.cells().len();
        let keep = keep_num % (scheduled + 1);
        for index in keep..scheduled {
            fs::remove_file(lab.cell_path(index)).expect("cell file exists");
        }

        // Resume, optionally in capped sessions (cap 0 samples the uncapped path).
        let cap = if session_cap == 0 { None } else { Some(session_cap) };
        let mut resumed = None;
        for _ in 0..=scheduled {
            let outcome = campaign
                .run_lab_session(&lab, &SimProvider, 1, cap)
                .expect("resume session runs");
            prop_assert!(outcome.loaded_cells >= keep, "completed cells were re-run");
            if let Some(report) = outcome.report {
                resumed = Some(report);
                break;
            }
        }
        let resumed = resumed.expect("capped sessions complete within the cell count");
        prop_assert_eq!(resumed.to_json(), whole.to_json(), "resumed lab diverged");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A complete lab is pure resume: a follow-up session loads every cell from disk,
/// executes nothing, and still returns the byte-identical merged report.
#[test]
fn complete_labs_resume_without_executing_anything() {
    let spec = random_spec(1, 2, 7);
    let campaign = Campaign::new(spec.clone());
    let dir = unique_dir("noop");
    let lab = CampaignLab::open(&dir, &spec).expect("lab opens");
    let first = campaign.run_lab(&lab).expect("first run");
    let second = campaign.run_lab(&lab).expect("second run");
    assert_eq!(second.loaded_cells, lab.scheduled_cells());
    assert_eq!(second.fresh_cells, 0);
    assert_eq!(
        first.report.expect("first complete").to_json(),
        second.report.expect("second complete").to_json()
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A torn cell file (e.g. from a crash predating the atomic rename) is discarded,
/// re-run, and overwritten — never trusted, never fatal.
#[test]
fn corrupt_cell_files_are_rerun_not_trusted() {
    let spec = random_spec(1, 2, 11);
    let campaign = Campaign::new(spec.clone());
    let dir = unique_dir("corrupt");
    let lab = CampaignLab::open(&dir, &spec).expect("lab opens");
    let whole = campaign
        .run_lab(&lab)
        .expect("first run")
        .report
        .expect("complete");

    let path = lab.cell_path(0);
    let good = fs::read_to_string(&path).expect("cell file readable");
    fs::write(&path, &good[..good.len() / 2]).expect("truncate cell file");

    let outcome = campaign.run_lab(&lab).expect("resume over corruption");
    assert_eq!(outcome.discarded_cells, 1);
    assert_eq!(outcome.fresh_cells, 1);
    assert_eq!(outcome.loaded_cells, lab.scheduled_cells() - 1);
    assert_eq!(
        outcome.report.expect("complete again").to_json(),
        whole.to_json()
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A corrupt cell file whose corruption is *adversarially deep nesting* (rather than
/// truncation) is also discarded and re-run: the JSON parser's depth cap turns what
/// would be a stack overflow into an ordinary parse error, so resume survives a
/// malicious or bit-rotted `cells/cell-<i>.json` without crashing the process.
#[test]
fn deeply_nested_corrupt_cell_files_are_discarded_not_fatal() {
    let spec = random_spec(1, 2, 17);
    let campaign = Campaign::new(spec.clone());
    let dir = unique_dir("deep");
    let lab = CampaignLab::open(&dir, &spec).expect("lab opens");
    let whole = campaign
        .run_lab(&lab)
        .expect("first run")
        .report
        .expect("complete");

    // 100k unclosed arrays: a recursive-descent parser without a depth cap would
    // blow the stack here and take the whole resume down with it.
    fs::write(lab.cell_path(0), "[".repeat(100_000)).expect("overwrite cell file");

    let outcome = campaign.run_lab(&lab).expect("resume over deep nesting");
    assert_eq!(outcome.discarded_cells, 1);
    assert_eq!(outcome.fresh_cells, 1);
    assert_eq!(outcome.loaded_cells, lab.scheduled_cells() - 1);
    assert_eq!(
        outcome.report.expect("complete again").to_json(),
        whole.to_json()
    );
    let _ = fs::remove_dir_all(&dir);
}

/// `max_new_cells` sizes sessions exactly: each capped session runs that many cells
/// (or the remainder) and only the final one yields the merged report.
#[test]
fn capped_sessions_progress_cell_by_cell() {
    let spec = random_spec(2, 2, 13); // 4 scheduled cells
    let scheduled = spec.cells().len();
    let campaign = Campaign::new(spec.clone());
    let dir = unique_dir("capped");
    let lab = CampaignLab::open(&dir, &spec).expect("lab opens");
    let mut completed = 0usize;
    while completed < scheduled {
        let outcome = campaign
            .run_lab_session(&lab, &SimProvider, 1, Some(3))
            .expect("session runs");
        assert_eq!(outcome.loaded_cells, completed);
        assert_eq!(outcome.fresh_cells, (scheduled - completed).min(3));
        completed += outcome.fresh_cells;
        assert_eq!(outcome.report.is_some(), completed == scheduled);
    }
    let _ = fs::remove_dir_all(&dir);
}
