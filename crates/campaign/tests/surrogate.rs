//! The surrogate differential battery: surrogate-wrapped campaigns are either
//! *exactly* the plain campaign (inactive configurations) or a cheaper campaign that
//! still records, replays, and reports through the same machinery.
//!
//! Three properties are pinned:
//!
//! 1. a `fraction = 0` surrogate (any shape of inactive config) leaves the campaign
//!    report **byte-identical** to a surrogate-less run — the knob is free to carry in
//!    specs that sometimes disable it;
//! 2. an *active* surrogate campaign records and replays byte-identically with zero
//!    resimulation, because the surrogate is a pure deterministic function of the
//!    request sequence and the inner backend's recorded bits;
//! 3. an active surrogate actually commits fewer simulator operations than the plain
//!    run and reports how many evaluations the model served (`model_evals`).

use dg_campaign::{Campaign, CampaignSpec, ExperimentScale, SurrogateConfig};
use dg_cloudsim::{InterferenceProfile, VmType};
use dg_exec::sim_ops;
use dg_workloads::Application;
use proptest::prelude::*;

/// A deliberately tiny per-cell scale so 64 differential cases (each running every
/// cell twice) stay inside a few seconds.
fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        space_size: 400,
        regions: 4,
        players_per_game: 4,
        baseline_budget: 6,
        exhaustive_budget: 24,
        evaluation_runs: 4,
        evaluation_spacing: 600.0,
        tuning_repeats: 1,
    }
}

/// Builds a randomized small grid from the sampled axis sizes.
fn random_spec(tuner_count: usize, seed_count: u64, base_seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("surrogate-differential");
    let tuner_pool = ["RandomSearch", "NTBEA", "OpenTuner"];
    spec.tuners = tuner_pool[..tuner_count]
        .iter()
        .map(|t| t.to_string())
        .collect();
    spec.applications = vec![Application::Redis];
    spec.vm_types = vec![VmType::M5_8xlarge];
    spec.profiles = vec![InterferenceProfile::typical()];
    spec.seeds = (0..seed_count).collect();
    spec.scale = tiny_scale();
    spec.base_seed = base_seed;
    spec
}

/// An aggressive gate that serves as soon as any tuple has a single sample — the
/// point of these tests is exercising the serving path, not prediction quality.
fn eager_surrogate() -> SurrogateConfig {
    SurrogateConfig {
        fraction: 1.0,
        min_samples: 1,
        max_rel_std: 10.0,
        bins: 8,
    }
}

proptest! {
    /// The inactive-surrogate differential: a `fraction = 0` config of any shape is a
    /// no-op down to the report bytes (and the spec fingerprint), on any worker count.
    #[test]
    fn inactive_surrogates_leave_reports_byte_identical(
        tuner_count in 1usize..3,
        seed_count in 1u64..3,
        base_seed in 0u64..1_000_000,
        config_shape in 0usize..2,
        workers in 1usize..3,
    ) {
        let plain = random_spec(tuner_count, seed_count, base_seed);
        let mut wrapped = plain.clone();
        wrapped.surrogate = Some(match config_shape {
            0 => SurrogateConfig::passthrough(),
            _ => SurrogateConfig {
                fraction: 0.0,
                min_samples: 5,
                max_rel_std: 0.3,
                bins: 4,
            },
        });
        prop_assert_eq!(
            plain.fingerprint(),
            wrapped.fingerprint(),
            "an inactive surrogate must not re-key the campaign"
        );
        let reference = Campaign::new(plain).run_with_workers(1);
        let report = Campaign::new(wrapped).run_with_workers(workers);
        prop_assert_eq!(reference.to_json(), report.to_json());
    }

    /// Active surrogate campaigns record and replay byte-identically, and the replay
    /// runs zero simulator operations: the surrogate re-derives the same serve/real
    /// decisions from the replayed inner bits.
    #[test]
    fn surrogate_campaigns_record_and_replay_byte_identically(
        seed_count in 1u64..3,
        base_seed in 0u64..1_000_000,
    ) {
        let mut spec = random_spec(1, seed_count, base_seed);
        spec.surrogate = Some(eager_surrogate());
        let campaign = Campaign::new(spec);
        let (live, trace) = campaign.record_with_workers(1);
        let before = sim_ops();
        let replayed = campaign
            .replay_with_workers(trace, 1)
            .expect("a just-recorded trace replays");
        prop_assert_eq!(sim_ops(), before, "replay must not touch the simulator");
        prop_assert_eq!(replayed.to_json(), live.to_json());
    }
}

/// The cost story of the tentpole, at smoke scale: an eager surrogate commits fewer
/// simulator operations than the plain campaign and reports the served count per cell
/// (`model_evals`, present in the JSON only when non-zero).
#[test]
fn active_surrogates_commit_fewer_sim_ops_and_report_served_counts() {
    let plain = random_spec(2, 2, 31);
    let mut wrapped = plain.clone();
    wrapped.surrogate = Some(eager_surrogate());

    let before = sim_ops();
    let reference = Campaign::new(plain).run_with_workers(1);
    let plain_ops = sim_ops() - before;

    let before = sim_ops();
    let report = Campaign::new(wrapped).run_with_workers(1);
    let surrogate_ops = sim_ops() - before;

    assert!(
        surrogate_ops < plain_ops,
        "eager surrogate committed {surrogate_ops} sim ops, plain run {plain_ops}"
    );
    let served: u64 = report.cells.iter().map(|c| c.model_evals).sum();
    assert!(
        served > 0,
        "the eager gate must serve at least one evaluation"
    );
    assert!(
        report.to_json().contains("\"model_evals\":"),
        "served cells must expose their counts in the report JSON"
    );
    assert!(
        !reference.to_json().contains("model_evals"),
        "surrogate-less reports keep the pre-surrogate schema"
    );
}
