//! Campaign-level scenario integration: the scenario axis composes with every
//! existing guarantee — worker-count invariance, sharded merge, record/replay — and
//! the default `steady` axis is invisible in reports (pre-axis byte compatibility).

use dg_campaign::{
    Campaign, CampaignReport, CampaignSpec, ExperimentScale, ScenarioSpec, ShardPlan, ShardReport,
    ShardStrategy,
};
use dg_exec::{sim_ops, ExecutionTrace};
use std::sync::Arc;

/// A deliberately tiny per-cell scale so the pack-wide sweeps stay fast.
fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        space_size: 400,
        regions: 4,
        players_per_game: 4,
        baseline_budget: 6,
        exhaustive_budget: 24,
        evaluation_runs: 4,
        evaluation_spacing: 600.0,
        tuning_repeats: 1,
    }
}

/// Two tuners (one tournament, one baseline) across the whole built-in pack.
fn pack_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::single("scenario-integration", "DarwinGame", 1);
    spec.tuners = vec!["DarwinGame".into(), "RandomSearch".into()];
    spec.scenarios = ScenarioSpec::pack();
    spec.scale = tiny_scale();
    spec.base_seed = 21;
    spec
}

#[test]
fn scenario_sweeps_are_worker_count_invariant() {
    let campaign = Campaign::new(pack_spec());
    let serial = campaign.run_with_workers(1);
    let parallel = campaign.run_with_workers(4);
    assert_eq!(serial.completed_cells(), 2 * ScenarioSpec::pack().len());
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "worker count must be invisible in scenario-swept reports"
    );
}

#[test]
fn scenario_campaigns_record_and_replay_byte_identically() {
    let campaign = Campaign::new(pack_spec());
    let (live, trace) = campaign.record_with_workers(2);
    let trace =
        Arc::new(ExecutionTrace::from_json(&trace.to_json()).expect("canonical traces round-trip"));
    let before = sim_ops();
    let replayed = campaign
        .replay_with_workers(Arc::clone(&trace), 1)
        .expect("a recorded scenario campaign replays against its own spec");
    assert_eq!(
        sim_ops(),
        before,
        "scenario replay must execute zero simulator operations"
    );
    assert_eq!(
        replayed.to_json(),
        live.to_json(),
        "scenario transforms must re-apply identically at replay"
    );
}

#[test]
fn scenario_shards_merge_byte_identically() {
    let campaign = Campaign::new(pack_spec());
    let whole = campaign.run_with_workers(2);
    for strategy in [ShardStrategy::Strided, ShardStrategy::CostBalanced] {
        let plan = ShardPlan::new(campaign.spec(), 3, strategy);
        let reports: Vec<ShardReport> = (0..plan.shard_count())
            .map(|shard| {
                let report = campaign.run_shard_with_workers(&plan, shard, 2);
                ShardReport::from_json(&report.to_json()).expect("canonical round trip")
            })
            .collect();
        let merged = CampaignReport::merge(reports).expect("scenario shards merge");
        assert_eq!(
            merged.to_json(),
            whole.to_json(),
            "{strategy}: merged scenario sweep must equal the single-host run"
        );
    }
}

#[test]
fn default_steady_axis_is_invisible_in_reports() {
    let mut spec = CampaignSpec::single("steady-compat", "RandomSearch", 2);
    spec.scale = tiny_scale();
    assert!(spec.has_default_scenarios());
    let report = Campaign::new(spec).run_with_workers(1);
    let json = report.to_json();
    assert!(
        !json.contains("scenario"),
        "default-axis reports must serialize exactly as before the axis existed"
    );
    // And the round trip through the shard wire format agrees.
    let campaign = Campaign::new({
        let mut spec = CampaignSpec::single("steady-compat", "RandomSearch", 2);
        spec.scale = tiny_scale();
        spec
    });
    let plan = ShardPlan::new(campaign.spec(), 1, ShardStrategy::Contiguous);
    let shard = campaign.run_shard_with_workers(&plan, 0, 1);
    let parsed = ShardReport::from_json(&shard.to_json()).expect("round trip");
    assert_eq!(parsed.cells[0].scenario, "steady");
}

#[test]
fn non_steady_scenarios_change_execution() {
    let report = Campaign::new(pack_spec()).run_with_workers(2);
    let steady: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.scenario == "steady")
        .collect();
    // Every non-steady scenario must differ from its steady counterpart in at least
    // one measured quantity for at least one tuner — the axis has teeth.
    for scenario in ScenarioSpec::pack().iter().filter(|s| !s.is_passthrough()) {
        let differs = report
            .cells
            .iter()
            .filter(|c| c.scenario == scenario.name)
            .zip(steady.iter())
            .any(|(cell, base)| {
                assert_eq!(cell.tuner, base.tuner);
                cell.chosen != base.chosen
                    || cell.mean_time.to_bits() != base.mean_time.to_bits()
                    || cell.core_hours.to_bits() != base.core_hours.to_bits()
            });
        assert!(
            differs,
            "scenario {:?} produced results identical to steady",
            scenario.name
        );
    }
}
