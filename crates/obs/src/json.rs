//! Canonical JSON emission and parsing, shared by every wire format in the workspace.
//!
//! The vendored `serde` is a no-op shim (see `vendor/README.md`), so campaign reports,
//! shard reports, and execution traces all serialize through this small hand-rolled
//! writer instead. The output is *canonical*: fixed key order, no whitespace, and
//! floats rendered with Rust's shortest-round-trip `Display` — so two documents with
//! identical contents produce byte-identical strings, which the determinism tests
//! (1 worker vs N workers, record vs replay) rely on.
//!
//! The reverse direction is a minimal recursive-descent JSON reader ([`parse`]).
//! Numbers keep their **raw token** ([`JsonValue::Number`]) instead of being eagerly
//! converted, so integer fields parse exactly (`u64` seeds above 2^53 survive) and
//! float fields round-trip bit for bit through Rust's shortest-round-trip rendering.

use dg_cloudsim::InterferenceProfile;
use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_str_literal(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `value`. JSON has no representation for non-finite
/// floats, so they are encoded as the strings `"inf"`, `"-inf"`, and `"nan"` — the
/// same encoding execution traces use — and [`parse_f64`] restores them losslessly.
/// (Reports used to write `null` here, which collapsed `±inf` to NaN on the way
/// back in.)
pub fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        // Rust's f64 Display is the shortest decimal string that round-trips, never in
        // scientific notation — both JSON-valid and deterministic.
        let _ = write!(out, "{value}");
    } else if value.is_nan() {
        out.push_str("\"nan\"");
    } else if value > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Parses a float written by [`push_f64`], bit-for-bit for finite values and exactly
/// for the non-finite encodings `"inf"` / `"-inf"` / `"nan"`. A bare `null` is
/// accepted as NaN for backward compatibility with reports written before the
/// non-finite encoding was unified (those had already collapsed `±inf` to `null`,
/// so NaN is the most faithful reading available).
pub fn parse_f64(value: &JsonValue) -> Result<f64, String> {
    match value {
        JsonValue::Number(token) => token
            .parse::<f64>()
            .map_err(|_| format!("invalid float token {token:?}")),
        JsonValue::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("unknown non-finite float encoding {other:?}")),
        },
        JsonValue::Null => Ok(f64::NAN),
        other => Err(format!("expected a float, got {other:?}")),
    }
}

/// Appends `"key":` to an object body, handling the leading comma.
pub fn push_key(out: &mut String, first: &mut bool, key: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_str_literal(out, key);
    out.push(':');
}

/// Appends the canonical JSON form of an [`InterferenceProfile`] to `out`.
///
/// The named recipes serialize as bare strings (`"typical"`, `"heavy"`,
/// `"dedicated"`), the parameterised ones as single-key objects
/// (`{"constant":0.5}`, `{"custom":[base,value_amplitude,regime_scale,
/// burst_magnitude]}`). All parameters are finite by construction
/// ([`InterferenceProfile`] builders assert it), so the shortest-round-trip float
/// rendering of [`push_f64`] is lossless and [`parse_profile`] round-trips bit for
/// bit. `dg-scenario` embeds profiles in `ScenarioSpec` documents through this pair.
pub fn push_profile(out: &mut String, profile: &InterferenceProfile) {
    match profile {
        InterferenceProfile::Dedicated => out.push_str("\"dedicated\""),
        InterferenceProfile::Typical => out.push_str("\"typical\""),
        InterferenceProfile::Heavy => out.push_str("\"heavy\""),
        InterferenceProfile::Constant(level) => {
            out.push_str("{\"constant\":");
            push_f64(out, *level);
            out.push('}');
        }
        InterferenceProfile::Custom {
            base,
            value_amplitude,
            regime_scale,
            burst_magnitude,
        } => {
            out.push_str("{\"custom\":[");
            for (i, value) in [base, value_amplitude, regime_scale, burst_magnitude]
                .into_iter()
                .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                push_f64(out, *value);
            }
            out.push_str("]}");
        }
    }
}

/// Parses the canonical JSON form written by [`push_profile`] back into an
/// [`InterferenceProfile`]. Floats round-trip bit for bit.
pub fn parse_profile(value: &JsonValue) -> Result<InterferenceProfile, String> {
    let finite = |value: &JsonValue, what: &str| -> Result<f64, String> {
        let parsed = value
            .number_token()
            .and_then(|t| t.parse::<f64>().ok())
            .ok_or_else(|| format!("profile {what} is not a number"))?;
        if !parsed.is_finite() || parsed < 0.0 {
            return Err(format!("profile {what} must be finite and non-negative"));
        }
        Ok(parsed)
    };
    match value {
        JsonValue::Str(name) => match name.as_str() {
            "dedicated" => Ok(InterferenceProfile::Dedicated),
            "typical" => Ok(InterferenceProfile::Typical),
            "heavy" => Ok(InterferenceProfile::Heavy),
            other => Err(format!("unknown profile name {other:?}")),
        },
        JsonValue::Object(_) => {
            if let Some(level) = value.get("constant") {
                return Ok(InterferenceProfile::Constant(finite(level, "constant")?));
            }
            let parts = value
                .get("custom")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| {
                    "profile object needs a \"constant\" or \"custom\" key".to_string()
                })?;
            if parts.len() != 4 {
                return Err("custom profile needs 4 parameters".to_string());
            }
            Ok(InterferenceProfile::Custom {
                base: finite(&parts[0], "base")?,
                value_amplitude: finite(&parts[1], "value_amplitude")?,
                regime_scale: finite(&parts[2], "regime_scale")?,
                burst_magnitude: finite(&parts[3], "burst_magnitude")?,
            })
        }
        other => Err(format!("expected a profile, got {other:?}")),
    }
}

/// FNV-1a over a canonical textual encoding: the stable 64-bit fingerprint discipline
/// shared by `CampaignSpec::fingerprint` and `ScenarioSpec::fingerprint`. Independent
/// of process, host, and run.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A parsed JSON value. Object keys keep their document order; numbers keep their raw
/// token so callers decide the target type without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token (e.g. `"245.3"`, `"18446744073709551615"`).
    Number(String),
    /// A string (escapes already resolved).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The raw number token, if this is a number.
    pub fn number_token(&self) -> Option<&str> {
        match self {
            JsonValue::Number(token) => Some(token),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. Canonical reports need depth 3; the
/// limit exists so a corrupt or hostile document (`[[[[...`) returns an error instead
/// of overflowing the stack of the merging process.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document. Returns a description of the first syntax error (with a
/// byte offset) on malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!(
            "trailing characters after JSON document at byte {}",
            parser.pos
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::parse_object),
            Some(b'[') => self.nested(Self::parse_array),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn nested(
        &mut self,
        body: fn(&mut Self) -> Result<JsonValue, String>,
    ) -> Result<JsonValue, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let result = body(self);
        self.depth -= 1;
        result
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        // Validate the token now so downstream field conversions only have to handle
        // target-type range errors, not syntax.
        if token.parse::<f64>().is_err() {
            return Err(format!("invalid number {token:?} at byte {start}"));
        }
        Ok(JsonValue::Number(token))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex_start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(hex_start..hex_start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            // The writer only emits \u for control characters, so
                            // surrogate pairs never appear in canonical reports.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("invalid escape {other:?} at byte {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(byte) => {
                    // Consume one full UTF-8 character. The input is a &str, so
                    // boundaries are valid by construction; the leading byte gives the
                    // sequence length, keeping this O(1) per character.
                    let len = match byte {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let c = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                        .expect("input is a &str, so char boundaries are valid")
                        .chars()
                        .next()
                        .expect("non-empty slice");
                    out.push(c);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn control_characters_use_unicode_escapes() {
        let mut out = String::new();
        push_str_literal(&mut out, "\u{01}");
        assert_eq!(out, "\"\\u0001\"");
    }

    #[test]
    fn floats_render_shortest_round_trip() {
        let mut out = String::new();
        push_f64(&mut out, 245.3);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, f64::INFINITY);
        out.push(' ');
        push_f64(&mut out, f64::NEG_INFINITY);
        assert_eq!(out, "245.3 \"nan\" \"inf\" \"-inf\"");
    }

    #[test]
    fn non_finite_floats_round_trip_exactly() {
        for value in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut out = String::new();
            push_f64(&mut out, value);
            let parsed = parse_f64(&parse(&out).expect("valid JSON")).expect("valid float");
            assert_eq!(parsed.to_bits(), value.to_bits(), "through {out}");
        }
        // Legacy reports wrote null for every non-finite value; it still reads as NaN.
        assert!(parse_f64(&JsonValue::Null).unwrap().is_nan());
        assert!(parse_f64(&JsonValue::Str("infinity".into())).is_err());
        assert!(parse_f64(&JsonValue::Bool(true)).is_err());
    }

    #[test]
    fn keys_are_comma_separated() {
        let mut out = String::from("{");
        let mut first = true;
        push_key(&mut out, &mut first, "a");
        out.push('1');
        push_key(&mut out, &mut first, "b");
        out.push('2');
        out.push('}');
        assert_eq!(out, r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn parser_round_trips_canonical_documents() {
        let doc = r#"{"name":"a\"b","n":-3.25,"flags":[true,false,null],"nested":{"x":18446744073709551615}}"#;
        let value = parse(doc).expect("valid document");
        assert_eq!(value.get("name").and_then(JsonValue::as_str), Some("a\"b"));
        assert_eq!(
            value.get("n").and_then(JsonValue::number_token),
            Some("-3.25")
        );
        let flags = value.get("flags").and_then(JsonValue::as_array).unwrap();
        assert_eq!(flags[0].as_bool(), Some(true));
        assert_eq!(flags[2], JsonValue::Null);
        assert_eq!(
            value
                .get("nested")
                .and_then(|n| n.get("x"))
                .and_then(JsonValue::number_token)
                .map(str::parse::<u64>),
            Some(Ok(u64::MAX)),
            "u64 values above 2^53 must survive parsing exactly"
        );
    }

    #[test]
    fn parser_accepts_whitespace_and_empty_containers() {
        let value = parse(" { \"a\" : [ ] , \"b\" : { } } ").expect("valid");
        assert_eq!(value.get("a"), Some(&JsonValue::Array(Vec::new())));
        assert_eq!(value.get("b"), Some(&JsonValue::Object(Vec::new())));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "{\"a\":1} x", "1.2.3"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parser_rejects_pathological_nesting_instead_of_overflowing() {
        let hostile = "[".repeat(100_000);
        let err = parse(&hostile).expect_err("deep nesting must be rejected");
        assert!(err.contains("nesting deeper than"), "got {err}");

        // Realistic nesting stays well within the limit.
        let legal = format!("{}1{}", "[".repeat(32), "]".repeat(32));
        assert!(parse(&legal).is_ok());
    }

    #[test]
    fn multibyte_characters_survive_string_parsing() {
        let value = parse("{\"k\":\"héllo → 🌍\"}").expect("valid");
        assert_eq!(
            value.get("k").and_then(JsonValue::as_str),
            Some("héllo → 🌍")
        );
    }

    #[test]
    fn profiles_round_trip_through_canonical_json() {
        let awkward = 0.1 + 0.2; // not exactly representable as "0.3"
        for profile in [
            InterferenceProfile::Dedicated,
            InterferenceProfile::Typical,
            InterferenceProfile::Heavy,
            InterferenceProfile::Constant(0.5),
            InterferenceProfile::Constant(awkward),
            InterferenceProfile::Custom {
                base: 0.05,
                value_amplitude: awkward,
                regime_scale: 1.0,
                burst_magnitude: 0.9,
            },
        ] {
            let mut out = String::new();
            push_profile(&mut out, &profile);
            let parsed = parse_profile(&parse(&out).expect("valid JSON")).expect("valid profile");
            assert_eq!(parsed, profile, "round trip through {out}");
            let mut again = String::new();
            push_profile(&mut again, &parsed);
            assert_eq!(again, out, "byte-identical re-serialization");
        }
    }

    #[test]
    fn malformed_profiles_are_rejected() {
        for bad in [
            "\"mystery\"",
            "{\"constant\":-1}",
            "{\"custom\":[1,2,3]}",
            "{\"other\":1}",
            "3",
        ] {
            let value = parse(bad).expect("syntactically valid JSON");
            assert!(parse_profile(&value).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn fnv1a_is_stable_and_sensitive() {
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
        assert_ne!(fnv1a("abc"), fnv1a("abd"));
    }

    #[test]
    fn parsed_floats_round_trip_bit_for_bit() {
        for value in [245.3, 0.1 + 0.2, f64::MIN_POSITIVE, 1e300, -0.0] {
            let mut out = String::new();
            push_f64(&mut out, value);
            let parsed = parse(&out).expect("number parses");
            let token = parsed.number_token().expect("is a number");
            assert_eq!(token.parse::<f64>().unwrap().to_bits(), value.to_bits());
        }
    }
}
