//! Observability for the DarwinGame stack: structured tracing, unified metrics, and
//! progress streaming.
//!
//! The tuning stack is deterministic by construction — campaign reports are
//! byte-identical across worker counts, record/replay, and shard merges — so its
//! observability layer has one hard rule: **instrumentation is a pure side channel**.
//! Nothing in this crate feeds back into results; the differential batteries in
//! `dg-campaign` and `dg-exec` pin that instrumented and bare runs produce
//! byte-identical reports, and the `obs_overhead` bench pins the cost (<2%
//! instrumented, one relaxed atomic load when disabled).
//!
//! Three layers:
//!
//! * **Tracing** — typed [`ObsEvent`]s flow through a global bus ([`emit_with`]) to
//!   pluggable [`EventSink`]s ([`JsonlSink`], [`RingSink`]); [`Span`] guards pair
//!   start/end events by monotone sequence id. Emission is gated like the simulator's
//!   fast path: off by default, `DG_OBS=1` or [`set_obs_enabled`] turns it on, and it
//!   only becomes *active* once a sink is installed ([`obs_active`]).
//! * **Metrics** — named [`Counter`]s / [`Gauge`]s / [`Histogram`]s in a process-wide
//!   registry with one canonical-JSON [`MetricsSnapshot`] export. The scattered
//!   counters that predate this crate (`sim_ops()`, `process_launches()`, surrogate
//!   and memo statistics) are now thin shims over registry counters.
//! * **Canonical JSON** — the hand-rolled writer/parser every wire format in the
//!   workspace shares lives here as [`json`] (it moved down from `dg-exec`, which
//!   re-exports it).
//!
//! # Quick example
//!
//! ```
//! use dg_obs::{set_obs_enabled, install_sink, remove_sink, RingSink, ObsEvent};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingSink::new(64));
//! set_obs_enabled(true);
//! let id = install_sink(ring.clone());
//! dg_obs::emit_with(|| ObsEvent::Round { phase: "regional".into(), round: 0, games: 8 });
//! remove_sink(id);
//! set_obs_enabled(false);
//! let records = ring.drain();
//! assert_eq!(records.len(), 1);
//! assert!(records[0].to_json().contains("\"type\":\"round\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod gate;
pub mod json;
pub mod metrics;
mod sink;
mod span;

pub use event::{ObsEvent, ObsRecord};
pub use gate::{obs_enabled, set_obs_enabled};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use sink::{
    emit, emit_with, install_sink, obs_active, remove_sink, sink_count, EventSink, JsonlSink,
    RingSink, SinkId,
};
pub use span::Span;

/// Serializes tests that flip the global gate or sink set, so parallel test threads
/// in one binary cannot perturb each other's observations.
#[cfg(test)]
pub(crate) fn test_gate_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
