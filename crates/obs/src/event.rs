//! The typed event vocabulary of the tracing layer.
//!
//! Every instrumented seam in the workspace — backend operations, tournament phases,
//! campaign cells, retune detections, scenario timelines — emits one of these
//! variants through the global bus ([`emit`](crate::emit)). Events are pure side
//! channel: they carry copies of values the instrumented code already computed, never
//! references back into it, so emitting (or not emitting) them cannot perturb
//! results.
//!
//! On the wire an event travels as one canonical-JSON line (see
//! [`ObsRecord::to_json`]): fixed key order, no whitespace, shortest-round-trip
//! floats — the same discipline as every other wire format in the workspace, so two
//! runs that emit the same events produce byte-identical JSONL.

use crate::json::{push_f64, push_key, push_str_literal};

/// One observability event, as emitted at an instrumented seam.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A campaign executor started running a set of cells.
    CampaignStart {
        /// Campaign name from the spec.
        campaign: String,
        /// Number of cells scheduled for this run (a shard or lab session may run a
        /// subset of the grid).
        cells: usize,
        /// Total estimated cost of the scheduled cells, in budgeted evaluations —
        /// the same per-cell estimates `ShardPlan` balances on.
        total_cost: f64,
    },
    /// A campaign executor finished.
    CampaignFinish {
        /// Campaign name from the spec.
        campaign: String,
        /// Cells that completed.
        completed: usize,
        /// Whether the `max_core_hours` cap stopped the run early.
        stopped: bool,
    },
    /// A worker claimed a cell and started tuning it.
    CellStart {
        /// Campaign name from the spec.
        campaign: String,
        /// Monotone claim sequence of this cell within the run (0-based schedule
        /// order, identical for every worker count).
        cell_seq: u64,
        /// The cell's stable grid index.
        index: usize,
        /// Tuner axis value.
        tuner: String,
        /// VM axis value.
        vm: String,
        /// Estimated cost of the cell, in budgeted evaluations.
        est_cost: f64,
    },
    /// A cell completed (possibly with a latched backend failure).
    CellFinish {
        /// Campaign name from the spec.
        campaign: String,
        /// The same claim sequence its `CellStart` carried.
        cell_seq: u64,
        /// The cell's stable grid index.
        index: usize,
        /// Core-hours the cell actually consumed.
        core_hours: f64,
        /// Mean re-measured execution time of the chosen configuration, seconds.
        mean_time: f64,
        /// Whether the cell's backend latched a permanent failure.
        failed: bool,
    },
    /// A lab session resumed a campaign from disk.
    LabSession {
        /// Campaign name from the spec.
        campaign: String,
        /// Completed cells loaded from the lab.
        loaded: usize,
        /// Missing cells this session will run.
        fresh: usize,
        /// Corrupt or foreign cell files discarded on load.
        discarded: usize,
    },
    /// A named span opened (see [`Span`](crate::Span)); tournament phases use these.
    SpanStart {
        /// Span name, e.g. `"phase.regional"`.
        name: String,
    },
    /// The span that opened at `start_seq` closed.
    SpanEnd {
        /// Span name, matching its `SpanStart`.
        name: String,
        /// Sequence id of the matching `SpanStart` record.
        start_seq: u64,
    },
    /// One round of a tournament phase played.
    Round {
        /// Phase name, e.g. `"regional"` or `"global"`.
        phase: String,
        /// Round number within the phase, 0-based.
        round: usize,
        /// Games played in the round.
        games: usize,
    },
    /// A co-located game crossed the backend seam ([`ObsBackend`] decorates it).
    ///
    /// [`ObsBackend`]: https://docs.rs/dg-exec
    Game {
        /// Players in the game.
        players: usize,
        /// Simulated start time, seconds.
        start: f64,
        /// Wall-clock seconds the game occupied its node.
        elapsed: f64,
        /// Whether the early-termination rule stopped it.
        early_terminated: bool,
    },
    /// A committed solo evaluation crossed the backend seam.
    Solo {
        /// Simulated start time, seconds.
        start: f64,
        /// The observed execution time, seconds.
        observed_time: f64,
    },
    /// A cost-free probe crossed the backend seam.
    Probe {
        /// Simulated start time, seconds.
        start: f64,
        /// The observed execution time, seconds.
        observed_time: f64,
    },
    /// A serving loop's drift monitor confirmed a regime change.
    RetuneDetection {
        /// Deployment step at which the detection fired.
        step: usize,
        /// Simulated time of the detection, seconds.
        at: f64,
        /// Drift direction: `"up"` (slowdown) or `"down"`.
        direction: String,
    },
    /// A serving loop ran a mini-tournament (or cost-free reselection) in response.
    Retune {
        /// Deployment step at which it ran.
        step: usize,
        /// `"retune"` for a mini-tournament, `"reselect"` for a hall-of-fame probe.
        kind: String,
        /// Whether the candidate replaced the incumbent champion.
        accepted: bool,
    },
    /// A scenario timeline wrapped a backend (emitted once at construction).
    ScenarioTimeline {
        /// Scenario name from the spec.
        scenario: String,
        /// Preemption windows expanded onto the timeline.
        preemptions: usize,
    },
    /// A preemption window actually struck an operation (the span was stretched).
    PreemptionStrike {
        /// Simulated time the preemption hit, seconds.
        at: f64,
        /// Seconds of outage inserted into the operation's span.
        outage: f64,
    },
}

impl ObsEvent {
    /// The event's wire name (`"type"` field of its JSONL form).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::CampaignStart { .. } => "campaign_start",
            ObsEvent::CampaignFinish { .. } => "campaign_finish",
            ObsEvent::CellStart { .. } => "cell_start",
            ObsEvent::CellFinish { .. } => "cell_finish",
            ObsEvent::LabSession { .. } => "lab_session",
            ObsEvent::SpanStart { .. } => "span_start",
            ObsEvent::SpanEnd { .. } => "span_end",
            ObsEvent::Round { .. } => "round",
            ObsEvent::Game { .. } => "game",
            ObsEvent::Solo { .. } => "solo",
            ObsEvent::Probe { .. } => "probe",
            ObsEvent::RetuneDetection { .. } => "retune_detection",
            ObsEvent::Retune { .. } => "retune",
            ObsEvent::ScenarioTimeline { .. } => "scenario_timeline",
            ObsEvent::PreemptionStrike { .. } => "preemption_strike",
        }
    }
}

/// One emitted event plus the monotone sequence id the bus stamped on it.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRecord {
    /// Process-wide monotone sequence id (gaps never occur; interleaving across
    /// concurrent workers is scheduling-dependent, so progress consumers order by
    /// the deterministic `cell_seq` instead).
    pub seq: u64,
    /// The event itself.
    pub event: ObsEvent,
}

impl ObsRecord {
    /// The canonical one-line JSON form: `{"seq":N,"type":"...",...}` with the
    /// event's fields in declaration order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        push_key(&mut out, &mut first, "seq");
        out.push_str(&self.seq.to_string());
        push_key(&mut out, &mut first, "type");
        push_str_literal(&mut out, self.event.kind());
        let f = &mut first;
        let o = &mut out;
        match &self.event {
            ObsEvent::CampaignStart {
                campaign,
                cells,
                total_cost,
            } => {
                push_key(o, f, "campaign");
                push_str_literal(o, campaign);
                push_key(o, f, "cells");
                o.push_str(&cells.to_string());
                push_key(o, f, "total_cost");
                push_f64(o, *total_cost);
            }
            ObsEvent::CampaignFinish {
                campaign,
                completed,
                stopped,
            } => {
                push_key(o, f, "campaign");
                push_str_literal(o, campaign);
                push_key(o, f, "completed");
                o.push_str(&completed.to_string());
                push_key(o, f, "stopped");
                o.push_str(if *stopped { "true" } else { "false" });
            }
            ObsEvent::CellStart {
                campaign,
                cell_seq,
                index,
                tuner,
                vm,
                est_cost,
            } => {
                push_key(o, f, "campaign");
                push_str_literal(o, campaign);
                push_key(o, f, "cell_seq");
                o.push_str(&cell_seq.to_string());
                push_key(o, f, "index");
                o.push_str(&index.to_string());
                push_key(o, f, "tuner");
                push_str_literal(o, tuner);
                push_key(o, f, "vm");
                push_str_literal(o, vm);
                push_key(o, f, "est_cost");
                push_f64(o, *est_cost);
            }
            ObsEvent::CellFinish {
                campaign,
                cell_seq,
                index,
                core_hours,
                mean_time,
                failed,
            } => {
                push_key(o, f, "campaign");
                push_str_literal(o, campaign);
                push_key(o, f, "cell_seq");
                o.push_str(&cell_seq.to_string());
                push_key(o, f, "index");
                o.push_str(&index.to_string());
                push_key(o, f, "core_hours");
                push_f64(o, *core_hours);
                push_key(o, f, "mean_time");
                push_f64(o, *mean_time);
                push_key(o, f, "failed");
                o.push_str(if *failed { "true" } else { "false" });
            }
            ObsEvent::LabSession {
                campaign,
                loaded,
                fresh,
                discarded,
            } => {
                push_key(o, f, "campaign");
                push_str_literal(o, campaign);
                push_key(o, f, "loaded");
                o.push_str(&loaded.to_string());
                push_key(o, f, "fresh");
                o.push_str(&fresh.to_string());
                push_key(o, f, "discarded");
                o.push_str(&discarded.to_string());
            }
            ObsEvent::SpanStart { name } => {
                push_key(o, f, "name");
                push_str_literal(o, name);
            }
            ObsEvent::SpanEnd { name, start_seq } => {
                push_key(o, f, "name");
                push_str_literal(o, name);
                push_key(o, f, "start_seq");
                o.push_str(&start_seq.to_string());
            }
            ObsEvent::Round {
                phase,
                round,
                games,
            } => {
                push_key(o, f, "phase");
                push_str_literal(o, phase);
                push_key(o, f, "round");
                o.push_str(&round.to_string());
                push_key(o, f, "games");
                o.push_str(&games.to_string());
            }
            ObsEvent::Game {
                players,
                start,
                elapsed,
                early_terminated,
            } => {
                push_key(o, f, "players");
                o.push_str(&players.to_string());
                push_key(o, f, "start");
                push_f64(o, *start);
                push_key(o, f, "elapsed");
                push_f64(o, *elapsed);
                push_key(o, f, "early_terminated");
                o.push_str(if *early_terminated { "true" } else { "false" });
            }
            ObsEvent::Solo {
                start,
                observed_time,
            }
            | ObsEvent::Probe {
                start,
                observed_time,
            } => {
                push_key(o, f, "start");
                push_f64(o, *start);
                push_key(o, f, "observed_time");
                push_f64(o, *observed_time);
            }
            ObsEvent::RetuneDetection {
                step,
                at,
                direction,
            } => {
                push_key(o, f, "step");
                o.push_str(&step.to_string());
                push_key(o, f, "at");
                push_f64(o, *at);
                push_key(o, f, "direction");
                push_str_literal(o, direction);
            }
            ObsEvent::Retune {
                step,
                kind,
                accepted,
            } => {
                push_key(o, f, "step");
                o.push_str(&step.to_string());
                push_key(o, f, "kind");
                push_str_literal(o, kind);
                push_key(o, f, "accepted");
                o.push_str(if *accepted { "true" } else { "false" });
            }
            ObsEvent::ScenarioTimeline {
                scenario,
                preemptions,
            } => {
                push_key(o, f, "scenario");
                push_str_literal(o, scenario);
                push_key(o, f, "preemptions");
                o.push_str(&preemptions.to_string());
            }
            ObsEvent::PreemptionStrike { at, outage } => {
                push_key(o, f, "at");
                push_f64(o, *at);
                push_key(o, f, "outage");
                push_f64(o, *outage);
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_serialize_to_one_canonical_line() {
        let record = ObsRecord {
            seq: 7,
            event: ObsEvent::CellStart {
                campaign: "smoke".into(),
                cell_seq: 3,
                index: 5,
                tuner: "DarwinGame".into(),
                vm: "m5.8xlarge".into(),
                est_cost: 120.0,
            },
        };
        assert_eq!(
            record.to_json(),
            "{\"seq\":7,\"type\":\"cell_start\",\"campaign\":\"smoke\",\"cell_seq\":3,\
             \"index\":5,\"tuner\":\"DarwinGame\",\"vm\":\"m5.8xlarge\",\"est_cost\":120}"
        );
        assert!(!record.to_json().contains('\n'));
    }

    #[test]
    fn every_variant_has_a_distinct_kind() {
        let kinds = [
            ObsEvent::SpanStart { name: "x".into() }.kind(),
            ObsEvent::SpanEnd {
                name: "x".into(),
                start_seq: 0,
            }
            .kind(),
            ObsEvent::Game {
                players: 2,
                start: 0.0,
                elapsed: 1.0,
                early_terminated: false,
            }
            .kind(),
            ObsEvent::Solo {
                start: 0.0,
                observed_time: 1.0,
            }
            .kind(),
            ObsEvent::Probe {
                start: 0.0,
                observed_time: 1.0,
            }
            .kind(),
        ];
        let mut unique = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}
