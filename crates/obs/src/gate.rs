//! Process-wide toggle for event emission, mirroring the fast-path gate in
//! `dg-cloudsim`.
//!
//! Observability is **off** by default: a bare run pays exactly one relaxed atomic
//! load per would-be event (see [`obs_active`](crate::obs_active)) and constructs
//! nothing. Two switches turn it on:
//!
//! * `DG_OBS=1` in the environment starts the process with emission enabled;
//! * [`set_obs_enabled`] flips the mode at runtime, letting benches time both modes
//!   in-process and letting tests scope instrumentation to themselves.
//!
//! Enabling the gate is necessary but not sufficient: events only flow once a sink is
//! installed too, so an enabled process with no consumer still skips all event
//! construction. Either way the gate never changes *results* — instrumentation is a
//! pure side channel, and the differential batteries pin that reports stay
//! byte-identical with it on or off.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var("DG_OBS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// True when event emission is enabled (off unless `DG_OBS=1` is set or
/// [`set_obs_enabled`]`(true)` was called). Events additionally require an installed
/// sink to flow; hot paths should check [`obs_active`](crate::obs_active) instead,
/// which folds both conditions into one load.
#[inline]
pub fn obs_enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Enables or disables event emission for the whole process.
///
/// Safe to flip at any point: instrumentation never changes results, so concurrent
/// readers only ever observe more or fewer events.
pub fn set_obs_enabled(enabled: bool) {
    flag().store(enabled, Ordering::Relaxed);
    crate::sink::refresh_active();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trips() {
        let _guard = crate::test_gate_lock();
        let initial = obs_enabled();
        set_obs_enabled(true);
        assert!(obs_enabled());
        set_obs_enabled(false);
        assert!(!obs_enabled());
        set_obs_enabled(initial);
    }
}
