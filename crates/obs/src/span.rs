//! Span guards: paired start/end events with monotone sequence ids.
//!
//! A [`Span`] emits a [`SpanStart`](crate::ObsEvent::SpanStart) when entered and the
//! matching [`SpanEnd`](crate::ObsEvent::SpanEnd) — carrying the start record's
//! sequence id — when dropped, so consumers can nest and time phases without any
//! thread-local context. Entering a span while observability is inactive costs one
//! relaxed load and emits nothing, including at drop time.

use crate::event::ObsEvent;
use crate::sink::{emit, emit_with, obs_active};

/// A guard that brackets a region of work with `span_start` / `span_end` events.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start_seq: Option<u64>,
}

impl Span {
    /// Opens a span named `name`, emitting its start event if observability is
    /// active. The name should be a stable dotted path, e.g. `"phase.regional"`.
    pub fn enter(name: &'static str) -> Self {
        let start_seq = emit_with(|| ObsEvent::SpanStart { name: name.into() });
        Self { name, start_seq }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The sequence id of the start event, when one was emitted.
    pub fn start_seq(&self) -> Option<u64> {
        self.start_seq
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // Only spans that actually announced themselves get an end event: if
        // observability was activated mid-span, an unmatched `span_end` would be
        // noise rather than signal.
        if let Some(start_seq) = self.start_seq {
            if obs_active() {
                emit(ObsEvent::SpanEnd {
                    name: self.name.into(),
                    start_seq,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::set_obs_enabled;
    use crate::sink::{install_sink, remove_sink, RingSink};
    use std::sync::Arc;

    #[test]
    fn spans_pair_start_and_end_by_sequence_id() {
        let _guard = crate::test_gate_lock();
        let ring = Arc::new(RingSink::new(16));
        set_obs_enabled(true);
        let id = install_sink(ring.clone());
        {
            let span = Span::enter("phase.test");
            assert_eq!(span.name(), "phase.test");
            assert!(span.start_seq().is_some());
        }
        remove_sink(id);
        set_obs_enabled(false);
        let records = ring.drain();
        assert_eq!(records.len(), 2);
        let start_seq = records[0].seq;
        match &records[1].event {
            ObsEvent::SpanEnd { name, start_seq: s } => {
                assert_eq!(name, "phase.test");
                assert_eq!(*s, start_seq);
            }
            other => panic!("expected span_end, got {other:?}"),
        }
    }

    #[test]
    fn inactive_spans_emit_nothing_even_at_drop() {
        let _guard = crate::test_gate_lock();
        set_obs_enabled(false);
        let span = Span::enter("phase.silent");
        assert_eq!(span.start_seq(), None);
        drop(span);
    }
}
