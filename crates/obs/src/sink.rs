//! The global event bus and the pluggable sinks it feeds.
//!
//! Instrumented code calls [`emit_with`] with a closure; when the process is
//! *active* — the [`gate`](crate::obs_enabled) is on **and** at least one sink is
//! installed — the closure builds the event, the bus stamps it with a process-wide
//! monotone sequence id, and every installed [`EventSink`] receives the record. When
//! inactive the call is one relaxed atomic load: the closure never runs, nothing
//! allocates, and the instrumented code is indistinguishable from bare code.
//!
//! Two sinks ship here: [`JsonlSink`] appends each record as one canonical-JSON line
//! to a file, and [`RingSink`] keeps the most recent records in a bounded in-memory
//! ring (counting what it dropped) for tests, benches, and live progress consumers.

use crate::event::{ObsEvent, ObsRecord};
use crate::gate::obs_enabled;
use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A consumer of emitted records. Implementations must tolerate concurrent calls
/// from multiple worker threads.
pub trait EventSink: Send + Sync {
    /// Receives one emitted record.
    fn record(&self, record: &ObsRecord);
}

/// Handle returned by [`install_sink`]; pass it to [`remove_sink`] to detach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(u64);

static SINKS: RwLock<Vec<(SinkId, Arc<dyn EventSink>)>> = RwLock::new(Vec::new());
static NEXT_SINK: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Recomputes the cached activity flag; called whenever the gate flips or the sink
/// set changes, so the hot path stays a single relaxed load.
pub(crate) fn refresh_active() {
    let has_sinks = !SINKS.read().expect("sink registry poisoned").is_empty();
    ACTIVE.store(obs_enabled() && has_sinks, Ordering::Relaxed);
}

/// True when events currently flow: the gate is enabled and a sink is installed.
/// This is the one check instrumented hot paths pay when observability is off.
#[inline]
pub fn obs_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Attaches `sink` to the bus; it receives every record emitted from now on.
pub fn install_sink(sink: Arc<dyn EventSink>) -> SinkId {
    let id = SinkId(NEXT_SINK.fetch_add(1, Ordering::Relaxed));
    SINKS
        .write()
        .expect("sink registry poisoned")
        .push((id, sink));
    refresh_active();
    id
}

/// Detaches a sink. Returns whether it was still installed.
pub fn remove_sink(id: SinkId) -> bool {
    let removed = {
        let mut sinks = SINKS.write().expect("sink registry poisoned");
        let before = sinks.len();
        sinks.retain(|(sink_id, _)| *sink_id != id);
        sinks.len() != before
    };
    refresh_active();
    removed
}

/// Number of installed sinks.
pub fn sink_count() -> usize {
    SINKS.read().expect("sink registry poisoned").len()
}

/// Emits `event` to every installed sink, returning the sequence id it was stamped
/// with — or `None` when observability is inactive. Prefer [`emit_with`] on hot
/// paths so the event is not even constructed when inactive.
pub fn emit(event: ObsEvent) -> Option<u64> {
    if !obs_active() {
        return None;
    }
    let sinks = SINKS.read().expect("sink registry poisoned");
    if sinks.is_empty() {
        return None;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let record = ObsRecord { seq, event };
    for (_, sink) in sinks.iter() {
        sink.record(&record);
    }
    Some(seq)
}

/// Builds and emits an event only when observability is active. The inactive cost is
/// one relaxed load; `build` runs only on the active path.
#[inline]
pub fn emit_with(build: impl FnOnce() -> ObsEvent) -> Option<u64> {
    if !obs_active() {
        return None;
    }
    emit(build())
}

/// A sink appending each record as one canonical-JSON line to a buffered file.
///
/// Lines are flushed when the sink is dropped (or on [`flush`](Self::flush)); a
/// write error panics, matching the workspace's artifact writers — observability
/// files are developer-requested outputs, not best-effort logs.
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            writer: Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) {
        self.writer
            .lock()
            .expect("jsonl writer poisoned")
            .flush()
            .expect("flush observability JSONL");
    }
}

impl EventSink for JsonlSink {
    fn record(&self, record: &ObsRecord) {
        let mut writer = self.writer.lock().expect("jsonl writer poisoned");
        writer
            .write_all(record.to_json().as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .expect("write observability JSONL");
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(writer) = self.writer.get_mut() {
            let _ = writer.flush();
        }
    }
}

/// A bounded in-memory ring of the most recent records.
///
/// When full, the oldest record is dropped and counted — the ring never blocks or
/// grows, so it is safe to leave installed across a large campaign.
pub struct RingSink {
    capacity: usize,
    buffer: Mutex<VecDeque<ObsRecord>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` records (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            buffer: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Removes and returns the buffered records, oldest first.
    pub fn drain(&self) -> Vec<ObsRecord> {
        self.buffer
            .lock()
            .expect("ring buffer poisoned")
            .drain(..)
            .collect()
    }

    /// Number of buffered (undrained) records.
    pub fn len(&self) -> usize {
        self.buffer.lock().expect("ring buffer poisoned").len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl EventSink for RingSink {
    fn record(&self, record: &ObsRecord) {
        let mut buffer = self.buffer.lock().expect("ring buffer poisoned");
        if buffer.len() == self.capacity {
            buffer.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buffer.push_back(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::set_obs_enabled;

    #[test]
    fn inactive_bus_never_builds_events() {
        let _guard = crate::test_gate_lock();
        set_obs_enabled(false);
        let built = std::cell::Cell::new(false);
        let seq = emit_with(|| {
            built.set(true);
            ObsEvent::SpanStart { name: "x".into() }
        });
        assert_eq!(seq, None);
        assert!(!built.get(), "closure must not run while inactive");
    }

    #[test]
    fn enabled_without_sinks_is_still_inactive() {
        let _guard = crate::test_gate_lock();
        set_obs_enabled(true);
        // Other tests in this binary may have sinks installed; only assert when the
        // bus is really bare.
        if sink_count() == 0 {
            assert!(!obs_active());
            assert_eq!(emit(ObsEvent::SpanStart { name: "x".into() }), None);
        }
        set_obs_enabled(false);
    }

    #[test]
    fn ring_records_and_bounds() {
        let _guard = crate::test_gate_lock();
        let ring = Arc::new(RingSink::new(2));
        set_obs_enabled(true);
        let id = install_sink(ring.clone());
        assert!(obs_active());
        for round in 0..3 {
            emit(ObsEvent::Round {
                phase: "regional".into(),
                round,
                games: 1,
            });
        }
        assert!(remove_sink(id));
        assert!(!remove_sink(id), "second removal is a no-op");
        set_obs_enabled(false);
        assert_eq!(ring.dropped(), 1);
        let records = ring.drain();
        assert_eq!(records.len(), 2);
        assert!(records[0].seq < records[1].seq, "sequence ids are monotone");
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let path = std::env::temp_dir().join(format!("dg-obs-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create JSONL");
        sink.record(&ObsRecord {
            seq: 0,
            event: ObsEvent::SpanStart { name: "a".into() },
        });
        sink.record(&ObsRecord {
            seq: 1,
            event: ObsEvent::SpanEnd {
                name: "a".into(),
                start_seq: 0,
            },
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"type\":\"span_start\""));
        assert!(lines[1].contains("\"start_seq\":0"));
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }
}
