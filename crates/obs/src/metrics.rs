//! The unified metrics registry: named counters, gauges, and histograms with one
//! canonical-JSON [`MetricsSnapshot`] export.
//!
//! This absorbs the ad-hoc globals that accumulated across the workspace —
//! `dg_exec::sim_ops()`, `process_launches()`, `SurrogateStats`, memo
//! `hits()`/`misses()` — behind one naming scheme (`exec.sim_ops`,
//! `exec.process_launches`, …) while the original free functions stay as thin shims
//! over their registry counters.
//!
//! Counters track **two** readings: a process-wide total and a per-thread count.
//! The per-thread reading is what `sim_ops()` has always exposed (replay tests use
//! it to prove a replay touched the simulator zero times *on this thread*, immune
//! to concurrent workers), so the unification preserves those semantics exactly.
//!
//! Metrics are always-on — an increment is a relaxed atomic add plus a
//! thread-local add, the same order of cost as the scattered counters they
//! replaced — only *event* emission sits behind the [`gate`](crate::obs_enabled).

use crate::json::{push_f64, push_key, push_str_literal};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    /// Per-thread counter values, indexed by each counter's registry slot.
    static THREAD_COUNTS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug)]
struct CounterInner {
    name: String,
    slot: usize,
    total: AtomicU64,
}

/// A named monotone counter. Handles are cheap clones of one shared counter; get one
/// with [`counter`] and cache it (e.g. in a `OnceLock`) on hot paths.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    /// Adds `n` to both the process-wide total and this thread's count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.total.fetch_add(n, Ordering::Relaxed);
        THREAD_COUNTS.with(|counts| {
            let mut counts = counts.borrow_mut();
            if counts.len() <= self.0.slot {
                counts.resize(self.0.slot + 1, 0);
            }
            counts[self.0.slot] += n;
        });
    }

    /// Adds one.
    #[inline]
    pub fn increment(&self) {
        self.add(1);
    }

    /// The process-wide total.
    pub fn value(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// The calling thread's contribution to the total.
    pub fn thread_value(&self) -> u64 {
        THREAD_COUNTS.with(|counts| counts.borrow().get(self.0.slot).copied().unwrap_or(0))
    }

    /// The counter's registered name.
    pub fn name(&self) -> &str {
        &self.0.name
    }
}

#[derive(Debug)]
struct GaugeInner {
    name: String,
    bits: AtomicU64,
}

/// A named last-value gauge holding one `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Stores `value`.
    pub fn set(&self, value: f64) {
        self.0.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The last stored value (0.0 before the first [`set`](Self::set)).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &str {
        &self.0.name
    }
}

/// Upper bounds of the histogram buckets, in the recorded unit (typically seconds).
/// A final implicit overflow bucket catches everything above the last bound.
pub const HISTOGRAM_BOUNDS: [f64; 7] = [0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0];

#[derive(Debug, Default, Clone, Copy)]
struct HistogramState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
}

#[derive(Debug)]
struct HistogramInner {
    name: String,
    state: Mutex<HistogramState>,
}

/// A named histogram over fixed decade buckets ([`HISTOGRAM_BOUNDS`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: f64) {
        let mut state = self.0.state.lock().expect("histogram poisoned");
        if state.count == 0 {
            state.min = value;
            state.max = value;
        } else {
            state.min = state.min.min(value);
            state.max = state.max.max(value);
        }
        state.count += 1;
        state.sum += value;
        let bucket = HISTOGRAM_BOUNDS
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        state.buckets[bucket] += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.state.lock().expect("histogram poisoned").count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.0.state.lock().expect("histogram poisoned").sum
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &str {
        &self.0.name
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<Vec<Counter>>,
    gauges: Mutex<Vec<Gauge>>,
    histograms: Mutex<Vec<Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter registered under `name`, creating it on first use. Names are dotted
/// paths, e.g. `"exec.sim_ops"`.
pub fn counter(name: &str) -> Counter {
    let mut counters = registry()
        .counters
        .lock()
        .expect("metrics registry poisoned");
    if let Some(existing) = counters.iter().find(|c| c.name() == name) {
        return existing.clone();
    }
    let created = Counter(Arc::new(CounterInner {
        name: name.to_string(),
        slot: counters.len(),
        total: AtomicU64::new(0),
    }));
    counters.push(created.clone());
    created
}

/// The gauge registered under `name`, creating it on first use.
pub fn gauge(name: &str) -> Gauge {
    let mut gauges = registry().gauges.lock().expect("metrics registry poisoned");
    if let Some(existing) = gauges.iter().find(|g| g.name() == name) {
        return existing.clone();
    }
    let created = Gauge(Arc::new(GaugeInner {
        name: name.to_string(),
        bits: AtomicU64::new(0.0_f64.to_bits()),
    }));
    gauges.push(created.clone());
    created
}

/// The histogram registered under `name`, creating it on first use.
pub fn histogram(name: &str) -> Histogram {
    let mut histograms = registry()
        .histograms
        .lock()
        .expect("metrics registry poisoned");
    if let Some(existing) = histograms.iter().find(|h| h.name() == name) {
        return existing.clone();
    }
    let created = Histogram(Arc::new(HistogramInner {
        name: name.to_string(),
        state: Mutex::new(HistogramState::default()),
    }));
    histograms.push(created.clone());
    created
}

/// A histogram's captured state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Per-bucket counts: one per [`HISTOGRAM_BOUNDS`] entry plus the overflow
    /// bucket.
    pub buckets: Vec<u64>,
}

/// A point-in-time capture of every registered metric, sorted by name so the
/// canonical JSON form is deterministic for a deterministic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, process-wide total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, last value)` per gauge.
    pub gauges: Vec<(String, f64)>,
    /// Captured histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Captures every registered metric right now.
    pub fn capture() -> Self {
        let reg = registry();
        let mut counters: Vec<(String, u64)> = reg
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|c| (c.name().to_string(), c.value()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64)> = reg
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|g| (g.name().to_string(), g.value()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<HistogramSnapshot> = reg
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|h| {
                let state = *h.0.state.lock().expect("histogram poisoned");
                HistogramSnapshot {
                    name: h.name().to_string(),
                    count: state.count,
                    sum: state.sum,
                    min: state.min,
                    max: state.max,
                    buckets: state.buckets.to_vec(),
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Self {
            counters,
            gauges,
            histograms,
        }
    }

    /// The canonical JSON form:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}` with names sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        push_key(&mut out, &mut first, "counters");
        out.push('{');
        let mut inner_first = true;
        for (name, value) in &self.counters {
            push_key(&mut out, &mut inner_first, name);
            out.push_str(&value.to_string());
        }
        out.push('}');
        push_key(&mut out, &mut first, "gauges");
        out.push('{');
        let mut inner_first = true;
        for (name, value) in &self.gauges {
            push_key(&mut out, &mut inner_first, name);
            push_f64(&mut out, *value);
        }
        out.push('}');
        push_key(&mut out, &mut first, "histograms");
        out.push('{');
        let mut inner_first = true;
        for hist in &self.histograms {
            push_key(&mut out, &mut inner_first, &hist.name);
            out.push('{');
            let mut hist_first = true;
            push_key(&mut out, &mut hist_first, "count");
            out.push_str(&hist.count.to_string());
            push_key(&mut out, &mut hist_first, "sum");
            push_f64(&mut out, hist.sum);
            push_key(&mut out, &mut hist_first, "min");
            push_f64(&mut out, hist.min);
            push_key(&mut out, &mut hist_first, "max");
            push_f64(&mut out, hist.max);
            push_key(&mut out, &mut hist_first, "buckets");
            out.push('[');
            for (i, (bound, count)) in HISTOGRAM_BOUNDS
                .iter()
                .map(Some)
                .chain(std::iter::once(None))
                .zip(hist.buckets.iter())
                .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"le\":");
                match bound {
                    Some(bound) => push_f64(&mut out, *bound),
                    None => push_str_literal(&mut out, "inf"),
                }
                out.push_str(",\"count\":");
                out.push_str(&count.to_string());
                out.push('}');
            }
            out.push(']');
            out.push('}');
        }
        out.push('}');
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_global_and_thread_totals() {
        let c = counter("test.metrics.counter_a");
        let before_global = c.value();
        let before_thread = c.thread_value();
        c.increment();
        c.add(2);
        assert_eq!(c.value(), before_global + 3);
        assert_eq!(c.thread_value(), before_thread + 3);
        let handle = c.clone();
        let thread_total = std::thread::spawn(move || {
            handle.add(5);
            handle.thread_value()
        })
        .join()
        .expect("counter thread");
        assert_eq!(thread_total, 5, "fresh thread starts at zero");
        assert_eq!(c.value(), before_global + 8, "global total sums threads");
        assert_eq!(
            c.thread_value(),
            before_thread + 3,
            "this thread unaffected"
        );
    }

    #[test]
    fn registry_returns_the_same_counter_per_name() {
        let a = counter("test.metrics.shared");
        let b = counter("test.metrics.shared");
        a.increment();
        assert_eq!(b.value(), a.value());
    }

    #[test]
    fn gauges_hold_the_last_value() {
        let g = gauge("test.metrics.gauge");
        assert_eq!(g.value(), 0.0);
        g.set(2.5);
        assert_eq!(g.value(), 2.5);
        g.set(-1.0);
        assert_eq!(gauge("test.metrics.gauge").value(), -1.0);
    }

    #[test]
    fn histograms_bucket_by_decade() {
        let h = histogram("test.metrics.hist");
        for value in [0.0005, 0.5, 0.7, 5000.0] {
            h.record(value);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5001.2005).abs() < 1e-9);
        let snapshot = MetricsSnapshot::capture();
        let hist = snapshot
            .histograms
            .iter()
            .find(|h| h.name == "test.metrics.hist")
            .expect("captured");
        assert_eq!(hist.min, 0.0005);
        assert_eq!(hist.max, 5000.0);
        assert_eq!(hist.buckets[0], 1, "sub-millisecond bucket");
        assert_eq!(hist.buckets[3], 2, "(0.1, 1.0] bucket");
        assert_eq!(hist.buckets[HISTOGRAM_BOUNDS.len()], 1, "overflow bucket");
    }

    #[test]
    fn snapshot_json_is_canonical_and_sorted() {
        counter("test.metrics.zz").increment();
        counter("test.metrics.aa").increment();
        let snapshot = MetricsSnapshot::capture();
        let json = snapshot.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"gauges\":{"));
        assert!(json.contains("\"histograms\":{"));
        let aa = json.find("test.metrics.aa").expect("aa present");
        let zz = json.find("test.metrics.zz").expect("zz present");
        assert!(aa < zz, "counters sorted by name");
        assert!(!json.contains(' '), "no whitespace in canonical form");
        assert_eq!(snapshot.to_json(), json, "capture is stable");
    }
}
