//! Determinism of the tuner registry: name ordering and builder output are pinned
//! across independent constructions, which campaign grids (and their fingerprints)
//! rely on.

use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
use dg_tuners::{Tuner, TunerRegistry, TuningBudget, TuningOutcome};
use dg_workloads::{Application, Workload};

/// The pinned baseline order. Changing it silently re-keys every campaign grid, so a
/// deliberate change must update this test (and regenerate any stored golden reports).
const BASELINE_ORDER: [&str; 6] = [
    "Exhaustive",
    "BLISS",
    "OpenTuner",
    "ActiveHarmony",
    "RandomSearch",
    "NTBEA",
];

#[test]
fn baseline_name_ordering_is_pinned_across_constructions() {
    let first = TunerRegistry::baselines();
    let second = TunerRegistry::baselines();
    assert_eq!(first.names(), BASELINE_ORDER.to_vec());
    assert_eq!(first.names(), second.names());
}

fn tune_with(registry: &TunerRegistry, name: &str, seed: u64, env_seed: u64) -> TuningOutcome {
    let workload = Workload::scaled(Application::Redis, 2_000);
    let mut cloud =
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), env_seed);
    let mut tuner: Box<dyn Tuner> = registry
        .build(name, seed, VmType::M5_8xlarge)
        .expect("baseline is registered");
    tuner.tune(&workload, &mut cloud, TuningBudget::evaluations(12))
}

#[test]
fn builders_produce_identical_tuner_behavior_across_constructions() {
    // Two independently constructed registries, same (name, seed, vm): the built
    // tuners must behave identically down to the bit when run on identical
    // environments.
    for name in BASELINE_ORDER {
        let a = tune_with(&TunerRegistry::baselines(), name, 7, 21);
        let b = tune_with(&TunerRegistry::baselines(), name, 7, 21);
        assert_eq!(a.tuner, b.tuner, "{name}: display name");
        assert_eq!(a.chosen, b.chosen, "{name}: chosen configuration");
        assert_eq!(a.samples, b.samples, "{name}: sample count");
        assert_eq!(
            a.core_hours.to_bits(),
            b.core_hours.to_bits(),
            "{name}: core-hours must match bitwise"
        );
        assert_eq!(
            a.wall_clock_seconds.to_bits(),
            b.wall_clock_seconds.to_bits(),
            "{name}: wall clock must match bitwise"
        );
        let history_a: Vec<(u64, u64)> = a
            .history
            .iter()
            .map(|s| (s.config, s.observed_time.to_bits()))
            .collect();
        let history_b: Vec<(u64, u64)> = b
            .history
            .iter()
            .map(|s| (s.config, s.observed_time.to_bits()))
            .collect();
        assert_eq!(history_a, history_b, "{name}: full sample history");
    }
}

#[test]
fn different_seeds_and_vms_reach_the_same_factory() {
    let registry = TunerRegistry::baselines();
    // Same registry, different seeds: behavior may differ, identity must not.
    let a = tune_with(&registry, "RandomSearch", 1, 5);
    let b = tune_with(&registry, "RandomSearch", 2, 5);
    assert_eq!(a.tuner, b.tuner);
    assert_ne!(
        a.history.iter().map(|s| s.config).collect::<Vec<_>>(),
        b.history.iter().map(|s| s.config).collect::<Vec<_>>(),
        "different tuner seeds must explore differently"
    );
}
