//! Baseline application tuners used as comparison points in the DarwinGame paper.
//!
//! Every tuner here is *interference-unaware by design*: it evaluates one configuration
//! at a time in the shared cloud and trusts the observed execution time. That is exactly
//! the failure mode DarwinGame (the `darwin-core` crate) is built to avoid, and the
//! experiments in the paper's Sec. 5 quantify the gap.
//!
//! Implemented baselines:
//!
//! * [`RandomSearch`] — uniform random sampling.
//! * [`ExhaustiveSearch`] — the brute-force strategy of Sec. 2.
//! * [`OracleTuner`] — the dedicated-environment optimum ("Optimal" in the figures).
//! * [`ActiveHarmony`] — rank-order simplex search (Nelder–Mead with restarts).
//! * [`OpenTuner`] — an ensemble of techniques arbitrated by an AUC bandit.
//! * [`Bliss`] — a pool of lightweight Bayesian-optimisation models.
//! * [`Ntbea`] — the N-Tuple Bandit Evolutionary Algorithm (model-based search).
//!
//! [`TunerRegistry`] exposes all of them (and anything downstream crates register) as
//! named `Box<dyn Tuner>` factories, which is how campaign drivers sweep over tuners.
//!
//! # Quick example
//!
//! ```
//! use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
//! use dg_tuners::{Bliss, Tuner, TuningBudget};
//! use dg_workloads::{Application, Workload};
//!
//! let workload = Workload::scaled(Application::Redis, 5_000);
//! let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
//! let outcome = Bliss::new(7).tune(&workload, &mut cloud, TuningBudget::evaluations(30));
//! assert!(outcome.samples <= 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activeharmony;
mod bliss;
mod evaluator;
mod exhaustive;
mod gp;
mod ntbea;
mod opentuner;
mod oracle;
mod outcome;
mod random;
mod registry;
mod simplex;
mod techniques;
mod tuner;

pub use activeharmony::ActiveHarmony;
pub use bliss::Bliss;
pub use evaluator::{CloudEvaluator, TuningBudget};
pub use exhaustive::ExhaustiveSearch;
pub use gp::GaussianProcess;
pub use ntbea::Ntbea;
pub use opentuner::OpenTuner;
pub use oracle::OracleTuner;
pub use outcome::{SampleRecord, TuningOutcome};
pub use random::RandomSearch;
pub use registry::{TunerFactory, TunerRegistry};
pub use simplex::nelder_mead;
pub use techniques::{
    EvolutionTechnique, HillClimbTechnique, PatternSearchTechnique, RandomTechnique, SearchContext,
    Technique,
};
pub use tuner::Tuner;
