//! The shared evaluation harness every baseline tuner samples through.

use crate::outcome::{SampleRecord, TuningOutcome};
use dg_cloudsim::CostSnapshot;
use dg_exec::ExecutionBackend;
use dg_workloads::{ConfigId, Workload};

/// A sampling budget for a tuning session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningBudget {
    /// Maximum number of configuration evaluations the tuner may perform.
    pub max_evaluations: usize,
}

impl TuningBudget {
    /// Creates a budget of `max_evaluations` samples.
    ///
    /// # Panics
    ///
    /// Panics if `max_evaluations == 0`.
    pub fn evaluations(max_evaluations: usize) -> Self {
        assert!(
            max_evaluations > 0,
            "budget must allow at least one evaluation"
        );
        Self { max_evaluations }
    }
}

impl Default for TuningBudget {
    /// 200 evaluations: roughly the sample count existing tuners use in the paper's
    /// experiments before their outcome stops improving.
    fn default() -> Self {
        Self {
            max_evaluations: 200,
        }
    }
}

/// Counts samples, records history, and charges the execution backend on behalf of a
/// baseline tuner.
///
/// Baseline tuners evaluate one configuration at a time, alone on the node — exactly how
/// OpenTuner/ActiveHarmony/BLISS operate when pointed at a cloud VM. (DarwinGame, in the
/// `darwin-core` crate, instead plays co-located games and does not use this type.)
pub struct CloudEvaluator<'a> {
    workload: &'a Workload,
    exec: &'a mut dyn ExecutionBackend,
    budget: TuningBudget,
    history: Vec<SampleRecord>,
    cost_at_start: CostSnapshot,
}

impl<'a> CloudEvaluator<'a> {
    /// Creates an evaluator bound to a workload, an execution backend, and a budget.
    pub fn new(
        workload: &'a Workload,
        exec: &'a mut dyn ExecutionBackend,
        budget: TuningBudget,
    ) -> Self {
        let cost_at_start = exec.cost().snapshot();
        Self {
            workload,
            exec,
            budget,
            history: Vec::new(),
            cost_at_start,
        }
    }

    /// The workload under tuning.
    pub fn workload(&self) -> &Workload {
        self.workload
    }

    /// Number of samples taken so far.
    pub fn samples_taken(&self) -> usize {
        self.history.len()
    }

    /// Remaining evaluations in the budget.
    pub fn remaining(&self) -> usize {
        self.budget
            .max_evaluations
            .saturating_sub(self.history.len())
    }

    /// True once the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Evaluates configuration `id` once in the noisy cloud, alone on the node.
    ///
    /// Returns the observed execution time. If the budget is already exhausted the
    /// configuration is *not* run and the last known observation (or `f64::INFINITY`)
    /// is returned, so tuner loops can simply keep asking until [`exhausted`] is true.
    ///
    /// [`exhausted`]: Self::exhausted
    pub fn evaluate(&mut self, id: ConfigId) -> f64 {
        if self.exhausted() {
            return self
                .history
                .iter()
                .rev()
                .find(|s| s.config == id)
                .map(|s| s.observed_time)
                .unwrap_or(f64::INFINITY);
        }
        let observed = self.exec.run_single(self.workload.spec(id)).observed_time;
        self.history.push(SampleRecord {
            config: id,
            observed_time: observed,
        });
        observed
    }

    /// The best sample taken so far, if any.
    pub fn best(&self) -> Option<SampleRecord> {
        self.history.iter().copied().min_by(|a, b| {
            a.observed_time
                .partial_cmp(&b.observed_time)
                .expect("no NaN")
        })
    }

    /// The recorded history so far.
    pub fn history(&self) -> &[SampleRecord] {
        &self.history
    }

    /// Finalises the session: the tuner declares its chosen configuration and the
    /// evaluator wraps it together with the resource usage delta.
    pub fn finish(self, tuner: &str, chosen: ConfigId) -> TuningOutcome {
        let believed_time = self
            .history
            .iter()
            .filter(|s| s.config == chosen)
            .map(|s| s.observed_time)
            .fold(f64::INFINITY, f64::min);
        let believed_time = if believed_time.is_finite() {
            believed_time
        } else {
            // The tuner picked a configuration it never sampled (should not happen for
            // the baselines, but stay total).
            self.best().map(|s| s.observed_time).unwrap_or(0.0)
        };
        let spent = self.cost_at_start.delta(self.exec.cost());
        TuningOutcome {
            tuner: tuner.to_string(),
            chosen,
            believed_time,
            samples: self.history.len(),
            core_hours: spent.core_hours,
            wall_clock_seconds: spent.wall_clock_seconds,
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    fn setup() -> (Workload, CloudEnvironment) {
        (
            Workload::scaled(Application::Redis, 5_000),
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 7),
        )
    }

    #[test]
    fn evaluation_consumes_budget_and_charges_cost() {
        let (workload, mut cloud) = setup();
        let mut evaluator =
            CloudEvaluator::new(&workload, &mut cloud, TuningBudget::evaluations(3));
        assert_eq!(evaluator.remaining(), 3);
        evaluator.evaluate(0);
        evaluator.evaluate(1);
        assert_eq!(evaluator.samples_taken(), 2);
        assert_eq!(evaluator.remaining(), 1);
        let outcome = evaluator.finish("test", 1);
        assert_eq!(outcome.samples, 2);
        assert!(outcome.core_hours > 0.0);
        assert!(outcome.wall_clock_seconds > 0.0);
    }

    #[test]
    fn exhausted_budget_stops_running() {
        let (workload, mut cloud) = setup();
        let mut evaluator =
            CloudEvaluator::new(&workload, &mut cloud, TuningBudget::evaluations(1));
        let first = evaluator.evaluate(5);
        assert!(first.is_finite());
        assert!(evaluator.exhausted());
        // Second evaluation of an unseen config returns infinity and takes no sample.
        let second = evaluator.evaluate(6);
        assert!(second.is_infinite());
        assert_eq!(evaluator.samples_taken(), 1);
        // Re-asking about the already-seen config returns the recorded value.
        let again = evaluator.evaluate(5);
        assert_eq!(again, first);
    }

    #[test]
    fn believed_time_is_best_observation_of_chosen() {
        let (workload, mut cloud) = setup();
        let mut evaluator =
            CloudEvaluator::new(&workload, &mut cloud, TuningBudget::evaluations(4));
        evaluator.evaluate(10);
        evaluator.evaluate(10);
        evaluator.evaluate(20);
        let history: Vec<f64> = evaluator
            .history()
            .iter()
            .filter(|s| s.config == 10)
            .map(|s| s.observed_time)
            .collect();
        let outcome = evaluator.finish("test", 10);
        assert_eq!(
            outcome.believed_time,
            history.iter().copied().fold(f64::INFINITY, f64::min)
        );
    }

    #[test]
    #[should_panic(expected = "at least one evaluation")]
    fn zero_budget_rejected() {
        TuningBudget::evaluations(0);
    }
}
