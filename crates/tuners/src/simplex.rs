//! A Nelder–Mead simplex optimiser over the unit hypercube.
//!
//! ActiveHarmony's search core is a parallel rank-order simplex method; this module
//! provides the sequential Nelder–Mead variant it degenerates to when evaluations are
//! performed one at a time (which is how a tuner operates against a single cloud VM).

/// Standard Nelder–Mead coefficients.
const REFLECTION: f64 = 1.0;
const EXPANSION: f64 = 2.0;
const CONTRACTION: f64 = 0.5;
const SHRINK: f64 = 0.5;

/// Minimises `objective` over `[0, 1]^dims` starting from the given simplex vertices.
///
/// The objective is called at most `max_evaluations` times; the best point seen and its
/// value are returned. Vertices are clamped into the unit cube after every move.
///
/// # Panics
///
/// Panics if `initial` has fewer than `dims + 1` vertices or any vertex has the wrong
/// dimensionality.
pub fn nelder_mead<F>(
    dims: usize,
    initial: Vec<Vec<f64>>,
    max_evaluations: usize,
    mut objective: F,
) -> (Vec<f64>, f64)
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(
        initial.len() > dims,
        "Nelder–Mead needs at least dims + 1 starting vertices"
    );
    assert!(
        initial.iter().all(|v| v.len() == dims),
        "all vertices must have the requested dimensionality"
    );

    let mut evaluations = 0usize;
    let mut evaluate = |point: &[f64], evaluations: &mut usize| -> f64 {
        *evaluations += 1;
        objective(point)
    };

    // (value, point) pairs, kept sorted ascending by value.
    let mut simplex: Vec<(f64, Vec<f64>)> = initial
        .into_iter()
        .take(dims + 1)
        .map(|v| {
            let clamped = clamp_unit(&v);
            let value = evaluate(&clamped, &mut evaluations);
            (value, clamped)
        })
        .collect();
    sort_simplex(&mut simplex);

    while evaluations < max_evaluations {
        let centroid = centroid_of_best(&simplex, dims);
        let worst = simplex.last().expect("simplex is non-empty").clone();

        // Reflection.
        let reflected = move_point(&centroid, &worst.1, REFLECTION);
        let reflected_value = evaluate(&reflected, &mut evaluations);

        if reflected_value < simplex[0].0 {
            // Expansion.
            if evaluations < max_evaluations {
                let expanded = move_point(&centroid, &worst.1, EXPANSION);
                let expanded_value = evaluate(&expanded, &mut evaluations);
                if expanded_value < reflected_value {
                    replace_worst(&mut simplex, expanded, expanded_value);
                } else {
                    replace_worst(&mut simplex, reflected, reflected_value);
                }
            } else {
                replace_worst(&mut simplex, reflected, reflected_value);
            }
        } else if reflected_value < simplex[simplex.len() - 2].0 {
            replace_worst(&mut simplex, reflected, reflected_value);
        } else {
            // Contraction toward the centroid.
            if evaluations >= max_evaluations {
                break;
            }
            let contracted = move_point(&centroid, &worst.1, -CONTRACTION);
            let contracted_value = evaluate(&contracted, &mut evaluations);
            if contracted_value < worst.0 {
                replace_worst(&mut simplex, contracted, contracted_value);
            } else {
                // Shrink everything toward the best vertex.
                let best = simplex[0].1.clone();
                for vertex in simplex.iter_mut().skip(1) {
                    if evaluations >= max_evaluations {
                        break;
                    }
                    let shrunk: Vec<f64> = vertex
                        .1
                        .iter()
                        .zip(best.iter())
                        .map(|(v, b)| b + SHRINK * (v - b))
                        .collect();
                    let shrunk = clamp_unit(&shrunk);
                    vertex.0 = evaluate(&shrunk, &mut evaluations);
                    vertex.1 = shrunk;
                }
            }
        }
        sort_simplex(&mut simplex);

        // Convergence: the simplex has collapsed.
        let spread = simplex.last().expect("non-empty").0 - simplex[0].0;
        if spread.abs() < 1e-9 {
            break;
        }
    }

    let best = simplex.into_iter().next().expect("simplex is non-empty");
    (best.1, best.0)
}

fn clamp_unit(point: &[f64]) -> Vec<f64> {
    point.iter().map(|v| v.clamp(0.0, 1.0)).collect()
}

fn sort_simplex(simplex: &mut [(f64, Vec<f64>)]) {
    simplex.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("objective must not be NaN"));
}

fn centroid_of_best(simplex: &[(f64, Vec<f64>)], dims: usize) -> Vec<f64> {
    let count = simplex.len() - 1;
    let mut centroid = vec![0.0; dims];
    for (_, vertex) in simplex.iter().take(count) {
        for (c, v) in centroid.iter_mut().zip(vertex.iter()) {
            *c += v / count as f64;
        }
    }
    centroid
}

fn move_point(centroid: &[f64], worst: &[f64], coefficient: f64) -> Vec<f64> {
    let moved: Vec<f64> = centroid
        .iter()
        .zip(worst.iter())
        .map(|(c, w)| c + coefficient * (c - w))
        .collect();
    clamp_unit(&moved)
}

fn replace_worst(simplex: &mut [(f64, Vec<f64>)], point: Vec<f64>, value: f64) {
    let last = simplex.len() - 1;
    simplex[last] = (value, point);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regular_simplex(dims: usize, origin: f64) -> Vec<Vec<f64>> {
        let mut vertices = vec![vec![origin; dims]];
        for d in 0..dims {
            let mut v = vec![origin; dims];
            v[d] = (origin + 0.3).min(1.0);
            vertices.push(v);
        }
        vertices
    }

    #[test]
    fn minimises_a_quadratic_bowl() {
        let target = [0.3, 0.7];
        let (best, value) = nelder_mead(2, regular_simplex(2, 0.1), 200, |p| {
            (p[0] - target[0]).powi(2) + (p[1] - target[1]).powi(2)
        });
        assert!(value < 1e-3, "value {value}");
        assert!((best[0] - target[0]).abs() < 0.05);
        assert!((best[1] - target[1]).abs() < 0.05);
    }

    #[test]
    fn respects_evaluation_budget() {
        let mut calls = 0usize;
        nelder_mead(3, regular_simplex(3, 0.5), 25, |p| {
            calls += 1;
            p.iter().map(|x| x * x).sum()
        });
        assert!(calls <= 25 + 1, "calls {calls}");
    }

    #[test]
    fn stays_inside_unit_cube() {
        let (best, _) = nelder_mead(2, regular_simplex(2, 0.9), 100, |p| {
            // Minimum far outside the cube pushes the search against the boundary.
            (p[0] - 5.0).powi(2) + (p[1] - 5.0).powi(2)
        });
        assert!(best.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(best.iter().all(|v| *v > 0.9), "should push to the boundary");
    }

    #[test]
    #[should_panic(expected = "dims + 1")]
    fn too_few_vertices_rejected() {
        nelder_mead(3, vec![vec![0.0; 3]], 10, |_| 0.0);
    }
}
