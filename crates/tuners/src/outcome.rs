//! Tuning outcomes and sample records.

use dg_workloads::ConfigId;
use serde::{Deserialize, Serialize};

/// One configuration evaluation performed during tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// The evaluated configuration.
    pub config: ConfigId,
    /// The observed execution time in the (noisy) evaluation environment, seconds.
    pub observed_time: f64,
}

/// The result of one tuning session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// Name of the tuner that produced this outcome.
    pub tuner: String,
    /// The configuration the tuner finally selected.
    pub chosen: ConfigId,
    /// The observed execution time of the chosen configuration during tuning (the value
    /// the tuner believed when it made its choice), seconds.
    pub believed_time: f64,
    /// Number of configuration evaluations (samples) performed.
    pub samples: usize,
    /// Core-hours consumed by tuning.
    pub core_hours: f64,
    /// Wall-clock seconds of tuning.
    pub wall_clock_seconds: f64,
    /// Every sample taken, in order.
    pub history: Vec<SampleRecord>,
}

impl TuningOutcome {
    /// The best (lowest) observed time among all samples taken, if any.
    pub fn best_observed(&self) -> Option<SampleRecord> {
        self.history.iter().copied().min_by(|a, b| {
            a.observed_time
                .partial_cmp(&b.observed_time)
                .expect("no NaN")
        })
    }

    /// Number of *distinct* configurations evaluated.
    pub fn distinct_configs(&self) -> usize {
        let mut ids: Vec<ConfigId> = self.history.iter().map(|s| s.config).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> TuningOutcome {
        TuningOutcome {
            tuner: "test".into(),
            chosen: 7,
            believed_time: 120.0,
            samples: 3,
            core_hours: 1.5,
            wall_clock_seconds: 300.0,
            history: vec![
                SampleRecord {
                    config: 1,
                    observed_time: 200.0,
                },
                SampleRecord {
                    config: 7,
                    observed_time: 120.0,
                },
                SampleRecord {
                    config: 1,
                    observed_time: 210.0,
                },
            ],
        }
    }

    #[test]
    fn best_observed_finds_minimum() {
        let best = outcome().best_observed().unwrap();
        assert_eq!(best.config, 7);
        assert_eq!(best.observed_time, 120.0);
    }

    #[test]
    fn distinct_configs_deduplicates() {
        assert_eq!(outcome().distinct_configs(), 2);
    }

    #[test]
    fn empty_history_has_no_best() {
        let mut o = outcome();
        o.history.clear();
        assert!(o.best_observed().is_none());
        assert_eq!(o.distinct_configs(), 0);
    }
}
