//! A factory registry of named tuners.
//!
//! Experiment campaigns sweep over *tuners* the same way they sweep over applications or
//! VM types, which requires constructing fresh tuner instances by name with an arbitrary
//! seed. The registry maps a display name to a factory closure; factories also receive
//! the VM type of the evaluation environment so tuners that size themselves to the
//! hardware (DarwinGame's players-per-game, for instance) can adapt per cell.
//!
//! The baselines of this crate are available out of the box via
//! [`TunerRegistry::baselines`]; downstream crates (the tournament tuner in
//! `darwin-core`, campaign drivers) register their own entries on top.
//!
//! ```
//! use dg_cloudsim::VmType;
//! use dg_tuners::{RandomSearch, Tuner, TunerRegistry};
//!
//! let mut registry = TunerRegistry::baselines();
//! registry.register("RandomSearch/2x", |seed, _vm| Box::new(RandomSearch::new(seed * 2)));
//! let tuner = registry.build("RandomSearch", 7, VmType::M5_8xlarge).expect("registered");
//! assert_eq!(tuner.name(), "RandomSearch");
//! ```

use crate::activeharmony::ActiveHarmony;
use crate::bliss::Bliss;
use crate::exhaustive::ExhaustiveSearch;
use crate::ntbea::Ntbea;
use crate::opentuner::OpenTuner;
use crate::random::RandomSearch;
use crate::tuner::Tuner;
use dg_cloudsim::VmType;

/// Factory closure type: `(seed, vm) -> tuner`.
pub type TunerFactory = Box<dyn Fn(u64, VmType) -> Box<dyn Tuner> + Send + Sync>;

/// An ordered registry of named tuner factories.
///
/// Registration order is preserved: iterating [`names`](Self::names) (and therefore any
/// campaign grid built from them) is stable across runs, which campaign determinism
/// relies on. Registering a name twice replaces the earlier factory in place.
#[derive(Default)]
pub struct TunerRegistry {
    entries: Vec<(String, TunerFactory)>,
}

impl std::fmt::Debug for TunerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TunerRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl TunerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// A registry pre-populated with this crate's baselines, in the paper's figure
    /// order — Exhaustive, BLISS, OpenTuner, ActiveHarmony, RandomSearch — followed by
    /// NTBEA (appended last so grids built from the original five keep their order).
    pub fn baselines() -> Self {
        let mut registry = Self::new();
        registry.register("Exhaustive", |_seed, _vm| Box::new(ExhaustiveSearch::new()));
        registry.register("BLISS", |seed, _vm| Box::new(Bliss::new(seed)));
        registry.register("OpenTuner", |seed, _vm| Box::new(OpenTuner::new(seed)));
        registry.register("ActiveHarmony", |seed, _vm| {
            Box::new(ActiveHarmony::new(seed))
        });
        registry.register("RandomSearch", |seed, _vm| {
            Box::new(RandomSearch::new(seed))
        });
        registry.register("NTBEA", |seed, _vm| Box::new(Ntbea::new(seed)));
        registry
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn(u64, VmType) -> Box<dyn Tuner> + Send + Sync + 'static,
    {
        let name = name.into();
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = Box::new(factory);
        } else {
            self.entries.push((name, Box::new(factory)));
        }
    }

    /// True when a factory is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds a fresh tuner instance by name, or `None` for an unknown name.
    pub fn build(&self, name: &str, seed: u64, vm: VmType) -> Option<Box<dyn Tuner>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, factory)| factory(seed, vm))
    }

    /// Builds a tuner by name and warm-starts it with `hints` (the incumbent champion
    /// and hall-of-fame of an online retuning loop). Tuners without warm-start support
    /// silently ignore the hints.
    pub fn build_warm(
        &self,
        name: &str,
        seed: u64,
        vm: VmType,
        hints: &[dg_workloads::ConfigId],
    ) -> Option<Box<dyn Tuner>> {
        let mut tuner = self.build(name, seed, vm)?;
        tuner.warm_start(hints);
        Some(tuner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::TuningBudget;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile};
    use dg_workloads::{Application, Workload};

    #[test]
    fn baselines_are_registered_in_stable_order() {
        let registry = TunerRegistry::baselines();
        assert_eq!(
            registry.names(),
            vec![
                "Exhaustive",
                "BLISS",
                "OpenTuner",
                "ActiveHarmony",
                "RandomSearch",
                "NTBEA"
            ]
        );
        assert_eq!(registry.len(), 6);
        assert!(!registry.is_empty());
    }

    #[test]
    fn build_returns_working_tuners() {
        let registry = TunerRegistry::baselines();
        let workload = Workload::scaled(Application::Redis, 2_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
        let mut tuner = registry
            .build("RandomSearch", 3, VmType::M5_8xlarge)
            .expect("Random is a baseline");
        let outcome = tuner.tune(&workload, &mut cloud, TuningBudget::evaluations(10));
        assert_eq!(outcome.tuner, "RandomSearch");
        assert!(outcome.samples <= 10);
    }

    #[test]
    fn build_warm_seeds_supporting_tuners() {
        let registry = TunerRegistry::baselines();
        let workload = Workload::scaled(Application::Redis, 2_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
        let mut tuner = registry
            .build_warm("RandomSearch", 3, VmType::M5_8xlarge, &[7])
            .expect("Random is a baseline");
        let outcome = tuner.tune(&workload, &mut cloud, TuningBudget::evaluations(5));
        assert_eq!(outcome.history[0].config, 7, "the hint is evaluated first");

        // Tuners without warm-start support ignore the hints but still build.
        assert!(registry
            .build_warm("Exhaustive", 3, VmType::M5_8xlarge, &[7])
            .is_some());
    }

    #[test]
    fn unknown_name_builds_nothing() {
        let registry = TunerRegistry::baselines();
        assert!(registry.build("nope", 1, VmType::M5Large).is_none());
        assert!(!registry.contains("nope"));
    }

    #[test]
    fn register_replaces_existing_name_in_place() {
        let mut registry = TunerRegistry::baselines();
        let before: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
        registry.register("RandomSearch", |seed, _vm| {
            Box::new(RandomSearch::new(seed + 100))
        });
        assert_eq!(registry.names(), before, "replacement must keep the order");
        assert_eq!(registry.len(), 6);
    }

    #[test]
    fn factories_receive_the_vm_type() {
        let mut registry = TunerRegistry::new();
        registry.register("vm-aware", |seed, vm| {
            Box::new(RandomSearch::new(seed + vm.vcpus() as u64))
        });
        assert!(registry.build("vm-aware", 0, VmType::M5Large).is_some());
    }
}
