//! The dedicated-environment oracle ("Optimal" in the paper's figures).

use crate::evaluator::TuningBudget;
use crate::outcome::{SampleRecord, TuningOutcome};
use dg_cloudsim::{DedicatedEnvironment, VmType};
use dg_workloads::Workload;

/// The infeasible-in-practice reference point: the configuration with the minimum
/// execution time in a dedicated, interference-free environment.
///
/// The oracle does not implement [`Tuner`](crate::Tuner) because it does not tune in the
/// cloud at all — it corresponds to the paper's "Optimal" bar, obtained from extensive
/// dedicated-environment experiments performed purely for evaluation purposes.
#[derive(Debug, Clone)]
pub struct OracleTuner {
    /// How many configurations the oracle samples in the dedicated environment (in
    /// addition to the surface's planted optimum, which it always checks).
    pub sample_budget: usize,
}

impl Default for OracleTuner {
    fn default() -> Self {
        Self {
            sample_budget: 4_000,
        }
    }
}

impl OracleTuner {
    /// Creates an oracle with the default dedicated-environment sampling budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Determines the optimal configuration and its dedicated execution time.
    pub fn tune(&self, workload: &Workload, vm: VmType, budget: TuningBudget) -> TuningOutcome {
        let sample_budget = self.sample_budget.max(budget.max_evaluations);
        let chosen = workload.oracle_index(sample_budget);
        let mut dedicated = DedicatedEnvironment::new(vm, workload.surface().seed());
        let believed_time = dedicated.measure(workload.spec(chosen));
        TuningOutcome {
            tuner: "Optimal".to_string(),
            chosen,
            believed_time,
            samples: sample_budget,
            core_hours: dedicated.cost().core_hours(),
            wall_clock_seconds: dedicated.cost().wall_clock_seconds(),
            history: vec![SampleRecord {
                config: chosen,
                observed_time: believed_time,
            }],
        }
    }

    /// The dedicated-environment execution time of the optimal configuration — the
    /// reference value every figure normalises against.
    pub fn optimal_time(&self, workload: &Workload, vm: VmType) -> f64 {
        let chosen = workload.oracle_index(self.sample_budget);
        DedicatedEnvironment::new(vm, workload.surface().seed()).true_time(workload.spec(chosen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_workloads::Application;

    #[test]
    fn oracle_beats_random_configurations() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let oracle = OracleTuner::new();
        let outcome = oracle.tune(
            &workload,
            VmType::M5_8xlarge,
            TuningBudget::evaluations(100),
        );
        let optimal_base = workload.base_time(outcome.chosen);
        // Every configuration in a random sample must be at least as slow.
        let mut rng = dg_cloudsim::SimRng::new(5);
        for id in workload.random_configs(1_000, &mut rng) {
            assert!(workload.base_time(id) >= optimal_base - 1e-9);
        }
    }

    #[test]
    fn optimal_time_matches_configured_best_scale() {
        let workload = Workload::scaled(Application::Ffmpeg, 10_000);
        let t = OracleTuner::new().optimal_time(&workload, VmType::M5_8xlarge);
        let best = Application::Ffmpeg.surface_config().best_time;
        assert!(t >= best * 0.95 && t <= best * 1.15, "oracle time {t}");
    }

    #[test]
    fn oracle_outcome_is_well_formed() {
        let workload = Workload::scaled(Application::Gromacs, 5_000);
        let outcome =
            OracleTuner::new().tune(&workload, VmType::M5_8xlarge, TuningBudget::evaluations(10));
        assert_eq!(outcome.tuner, "Optimal");
        assert!(outcome.believed_time > 0.0);
        assert_eq!(outcome.history.len(), 1);
    }
}
