//! An ActiveHarmony-style tuner: rank-order simplex search with restarts.

use crate::evaluator::{CloudEvaluator, TuningBudget};
use crate::outcome::TuningOutcome;
use crate::simplex::nelder_mead;
use crate::tuner::Tuner;
use dg_cloudsim::SimRng;
use dg_exec::ExecutionBackend;
use dg_workloads::{ConfigId, Workload};

/// ActiveHarmony [Hollingsworth & Tiwari]: a server-directed simplex search over the
/// parameter space.
///
/// Parameters are relaxed to the unit hypercube (one axis per free parameter); the
/// simplex proposes continuous points that are rounded to the nearest discrete level for
/// evaluation. When a simplex converges before the sampling budget is exhausted, the
/// search restarts from a fresh random simplex, mirroring ActiveHarmony's restart
/// behaviour on plateaus.
#[derive(Debug, Clone)]
pub struct ActiveHarmony {
    seed: u64,
}

impl ActiveHarmony {
    /// Creates an ActiveHarmony-style tuner with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

/// Converts a point in the unit hypercube to a configuration id.
pub(crate) fn vector_to_config(workload: &Workload, vector: &[f64]) -> ConfigId {
    let space = workload.space();
    let point: Vec<usize> = space
        .parameters()
        .iter()
        .zip(vector.iter())
        .map(|(parameter, value)| {
            let levels = parameter.level_count();
            ((value.clamp(0.0, 1.0) * (levels - 1) as f64).round() as usize).min(levels - 1)
        })
        .collect();
    space.index_of(&point)
}

/// Converts a configuration id to its unit-hypercube representation.
pub(crate) fn config_to_vector(workload: &Workload, id: ConfigId) -> Vec<f64> {
    let space = workload.space();
    space
        .point_of(id)
        .iter()
        .zip(space.parameters().iter())
        .map(|(level, parameter)| {
            let levels = parameter.level_count();
            if levels <= 1 {
                0.0
            } else {
                *level as f64 / (levels - 1) as f64
            }
        })
        .collect()
}

impl Tuner for ActiveHarmony {
    fn name(&self) -> &str {
        "ActiveHarmony"
    }

    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        budget: TuningBudget,
    ) -> TuningOutcome {
        let mut rng = SimRng::new(self.seed).derive("active-harmony");
        let dims = workload.space().dimensions();
        let mut evaluator = CloudEvaluator::new(workload, exec, budget);

        while !evaluator.exhausted() {
            // Fresh random simplex for this restart.
            let vertices: Vec<Vec<f64>> = (0..dims + 1)
                .map(|_| (0..dims).map(|_| rng.uniform()).collect())
                .collect();
            let per_restart = evaluator.remaining().min(budget.max_evaluations / 2).max(1);
            nelder_mead(dims, vertices, per_restart, |point| {
                let id = vector_to_config(workload, point);
                evaluator.evaluate(id)
            });
        }

        let chosen = evaluator.best().map(|s| s.config).unwrap_or(0);
        evaluator.finish(self.name(), chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    #[test]
    fn vector_config_round_trip() {
        let workload = Workload::scaled(Application::Redis, 5_000);
        for id in [0u64, 7, 101, workload.size() - 1] {
            let vector = config_to_vector(&workload, id);
            assert_eq!(vector_to_config(&workload, &vector), id);
        }
    }

    #[test]
    fn finds_better_than_median_configuration() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 13);
        let outcome =
            ActiveHarmony::new(1).tune(&workload, &mut cloud, TuningBudget::evaluations(120));
        // The chosen configuration should at least beat the surface's midpoint time.
        let config = workload.application().surface_config();
        let midpoint = (config.best_time + config.worst_time) / 2.0;
        assert!(
            workload.base_time(outcome.chosen) < midpoint,
            "ActiveHarmony should beat the midpoint"
        );
        assert!(outcome.samples <= 120);
    }

    #[test]
    fn is_deterministic_for_fixed_seeds() {
        let workload = Workload::scaled(Application::Gromacs, 5_000);
        let run = || {
            let mut cloud =
                CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 21);
            ActiveHarmony::new(3)
                .tune(&workload, &mut cloud, TuningBudget::evaluations(60))
                .chosen
        };
        assert_eq!(run(), run());
    }
}
