//! Exhaustive search in the noisy cloud.

use crate::evaluator::{CloudEvaluator, TuningBudget};
use crate::outcome::TuningOutcome;
use crate::tuner::Tuner;
use dg_exec::ExecutionBackend;
use dg_workloads::Workload;

/// Exhaustive search: evaluate every configuration once, in the cloud, and keep the best
/// observation.
///
/// This is the brute-force strategy defined in Sec. 2 of the paper. Because every
/// configuration is observed exactly once under whatever interference happened to be
/// present, the winner is frequently a configuration that got lucky rather than the
/// configuration that is genuinely fastest — which is why even exhaustive search falls
/// short of the dedicated-environment optimum.
///
/// When the search space is larger than the evaluation budget, an evenly strided subset
/// of `budget.max_evaluations` configurations is evaluated instead (the full sweep on the
/// paper's 7.8M-point spaces is infeasible for anyone, including the paper, whose
/// exhaustive baseline is similarly bounded).
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveSearch;

impl ExhaustiveSearch {
    /// Creates the exhaustive-search baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Tuner for ExhaustiveSearch {
    fn name(&self) -> &str {
        "Exhaustive"
    }

    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        budget: TuningBudget,
    ) -> TuningOutcome {
        let size = workload.size();
        let mut evaluator = CloudEvaluator::new(workload, exec, budget);
        let evaluations = (budget.max_evaluations as u64).min(size);
        // Evenly strided coverage of the index space; stride >= 1.
        let stride = (size / evaluations).max(1);
        let mut id = 0u64;
        while id < size && !evaluator.exhausted() {
            evaluator.evaluate(id);
            id += stride;
        }
        let chosen = evaluator.best().map(|s| s.config).unwrap_or(0);
        evaluator.finish(self.name(), chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    #[test]
    fn covers_entire_small_space() {
        let workload = Workload::scaled(Application::Redis, 64);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 2);
        let size = workload.size() as usize;
        let outcome = ExhaustiveSearch::new().tune(
            &workload,
            &mut cloud,
            TuningBudget::evaluations(size + 10),
        );
        assert_eq!(outcome.samples, size);
        assert_eq!(outcome.distinct_configs(), size);
    }

    #[test]
    fn strides_when_space_exceeds_budget() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 2);
        let outcome =
            ExhaustiveSearch::new().tune(&workload, &mut cloud, TuningBudget::evaluations(50));
        assert!(outcome.samples <= 50);
        assert!(outcome.distinct_configs() > 40);
    }

    #[test]
    fn chosen_config_is_best_observed() {
        let workload = Workload::scaled(Application::Lammps, 500);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 4);
        let outcome =
            ExhaustiveSearch::new().tune(&workload, &mut cloud, TuningBudget::evaluations(200));
        assert_eq!(outcome.chosen, outcome.best_observed().unwrap().config);
    }
}
