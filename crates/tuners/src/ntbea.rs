//! The N-Tuple Bandit Evolutionary Algorithm (NTBEA).

use crate::evaluator::{CloudEvaluator, TuningBudget};
use crate::outcome::TuningOutcome;
use crate::tuner::Tuner;
use dg_cloudsim::SimRng;
use dg_exec::ExecutionBackend;
use dg_workloads::{ConfigId, Workload};
use std::collections::HashMap;

/// NTBEA [Lucas, Liu, Perez-Liebana]: a bandit-driven evolutionary search that fits an
/// n-tuple model over the parameter space. Every real evaluation updates the running
/// mean fitness of each tuple covering the evaluated point (all 1-tuples, all
/// 2-tuples, plus the full point when the space has more than two dimensions); the
/// next point is chosen by mutating the current one and scoring a neighbourhood of
/// candidates with a UCB blend of the tuple means and an exploration bonus. The model
/// makes each noisy sample inform *every* configuration sharing a parameter setting,
/// which is what lets NTBEA find good configurations in far fewer evaluations than
/// direct search — the "model-based is best" result the surrogate backend mirrors at
/// the execution layer.
#[derive(Debug, Clone)]
pub struct Ntbea {
    seed: u64,
    /// Mutated candidates scored per iteration.
    neighbours: usize,
    /// UCB exploration constant `k`, in units of the observed fitness range.
    exploration: f64,
    /// Per-dimension probability of resampling beyond the one forced mutation.
    mutation_rate: f64,
    /// Warm-start configurations, evaluated (and modelled) before the bandit walk.
    hints: Vec<ConfigId>,
}

impl Ntbea {
    /// Creates an NTBEA tuner with the standard neighbourhood and exploration.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            neighbours: 16,
            exploration: 1.4,
            mutation_rate: 0.3,
            hints: Vec::new(),
        }
    }

    /// Creates an NTBEA tuner with a custom neighbourhood size and exploration
    /// constant.
    ///
    /// # Panics
    ///
    /// Panics if `neighbours` is zero.
    pub fn with_neighbourhood(seed: u64, neighbours: usize, exploration: f64) -> Self {
        assert!(neighbours > 0, "the neighbourhood must not be empty");
        Self {
            seed,
            neighbours,
            exploration,
            mutation_rate: 0.3,
            hints: Vec::new(),
        }
    }
}

/// The tuple dimension sets of a `dims`-dimensional space: all 1-tuples, all
/// 2-tuples, and (beyond two dimensions) the full point.
fn tuple_sets(dims: usize) -> Vec<Vec<usize>> {
    let mut tuples = Vec::new();
    for i in 0..dims {
        tuples.push(vec![i]);
    }
    for i in 0..dims {
        for j in (i + 1)..dims {
            tuples.push(vec![i, j]);
        }
    }
    if dims > 2 {
        tuples.push((0..dims).collect());
    }
    tuples
}

/// Packs the levels of `point` at the dimensions of `tuple` into one mixed-radix key.
fn pack(point: &[usize], tuple: &[usize], levels: &[usize]) -> u64 {
    let mut key = 0u64;
    let mut stride = 1u64;
    for &dim in tuple {
        key += point[dim] as u64 * stride;
        stride *= levels[dim] as u64;
    }
    key
}

/// The running n-tuple fitness model: per-tuple sample counts and mean fitness.
struct TupleModel {
    tuples: Vec<Vec<usize>>,
    levels: Vec<usize>,
    stats: HashMap<(usize, u64), (u64, f64)>,
    total: u64,
    fit_min: f64,
    fit_max: f64,
}

impl TupleModel {
    fn new(levels: Vec<usize>) -> Self {
        Self {
            tuples: tuple_sets(levels.len()),
            levels,
            stats: HashMap::new(),
            total: 0,
            fit_min: f64::INFINITY,
            fit_max: f64::NEG_INFINITY,
        }
    }

    fn update(&mut self, point: &[usize], fitness: f64) {
        self.total += 1;
        self.fit_min = self.fit_min.min(fitness);
        self.fit_max = self.fit_max.max(fitness);
        for (index, tuple) in self.tuples.iter().enumerate() {
            let key = (index, pack(point, tuple, &self.levels));
            let entry = self.stats.entry(key).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += (fitness - entry.1) / entry.0 as f64;
        }
    }

    /// Mean fitness of the tuples covering `point` (exploitation only).
    fn value(&self, point: &[usize]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for (index, tuple) in self.tuples.iter().enumerate() {
            if let Some(&(_, mean)) = self.stats.get(&(index, pack(point, tuple, &self.levels))) {
                sum += mean;
                n += 1;
            }
        }
        if n == 0 {
            f64::NEG_INFINITY
        } else {
            sum / n as f64
        }
    }

    /// UCB score of `point`: tuple-mean value plus an exploration bonus scaled to the
    /// observed fitness range (unseen tuples count as nearly-unvisited).
    fn ucb(&self, point: &[usize], k: f64) -> f64 {
        let log_total = ((self.total + 1) as f64).ln();
        let mut value_sum = 0.0;
        let mut value_n = 0u64;
        let mut explore = 0.0;
        for (index, tuple) in self.tuples.iter().enumerate() {
            match self.stats.get(&(index, pack(point, tuple, &self.levels))) {
                Some(&(count, mean)) => {
                    value_sum += mean;
                    value_n += 1;
                    explore += (log_total / count as f64).sqrt();
                }
                None => explore += (log_total / 0.01).sqrt(),
            }
        }
        let value = if value_n == 0 {
            0.0
        } else {
            value_sum / value_n as f64
        };
        let range = if self.fit_max > self.fit_min {
            self.fit_max - self.fit_min
        } else {
            1.0
        };
        value + k * range * explore / self.tuples.len() as f64
    }
}

impl Tuner for Ntbea {
    fn name(&self) -> &str {
        "NTBEA"
    }

    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        budget: TuningBudget,
    ) -> TuningOutcome {
        let mut rng = SimRng::new(self.seed).derive("ntbea");
        let mut evaluator = CloudEvaluator::new(workload, exec, budget);
        let space = workload.space();
        let levels: Vec<usize> = space.parameters().iter().map(|p| p.level_count()).collect();
        let dims = levels.len();
        let mut model = TupleModel::new(levels.clone());

        let mut current: Vec<usize> = levels.iter().map(|&l| rng.index(l)).collect();
        // Points actually evaluated, in insertion order, unique by configuration.
        let mut visited: Vec<(ConfigId, Vec<usize>)> = Vec::new();

        // Warm start: evaluate every hinted configuration first so its tuples inform
        // the model, and begin the bandit walk from the best-observed hint.
        let mut best_hint: Option<(Vec<usize>, f64)> = None;
        for hint in &self.hints {
            if evaluator.exhausted() {
                break;
            }
            let id = (*hint).min(workload.size() - 1);
            let point = space.point_of(id);
            let observed = evaluator.evaluate(id);
            if observed.is_finite() {
                model.update(&point, -observed);
                if best_hint.as_ref().map_or(true, |(_, t)| observed < *t) {
                    best_hint = Some((point.clone(), observed));
                }
            }
            if !visited.iter().any(|(v, _)| *v == id) {
                visited.push((id, point));
            }
        }
        if let Some((point, _)) = best_hint {
            current = point;
        }

        while !evaluator.exhausted() {
            let id = space.index_of(&current);
            let observed = evaluator.evaluate(id);
            if observed.is_finite() {
                // Fitness is negated time: the model maximises.
                model.update(&current, -observed);
            }
            if !visited.iter().any(|(v, _)| *v == id) {
                visited.push((id, current.clone()));
            }

            // Score a mutated neighbourhood of the current point; strict `>` keeps the
            // first of tied candidates, so the walk is deterministic.
            let mut best: Option<(Vec<usize>, f64)> = None;
            for _ in 0..self.neighbours {
                let mut candidate = current.clone();
                let forced = rng.index(dims);
                candidate[forced] = rng.index(levels[forced]);
                for (dim, level) in candidate.iter_mut().enumerate() {
                    if dim != forced && rng.uniform() < self.mutation_rate {
                        *level = rng.index(levels[dim]);
                    }
                }
                let score = model.ucb(&candidate, self.exploration);
                if best.as_ref().map_or(true, |(_, s)| score > *s) {
                    best = Some((candidate, score));
                }
            }
            current = best.expect("the neighbourhood is never empty").0;
        }

        // Recommend the visited point the model believes best (ties keep the earliest).
        let mut chosen: Option<(ConfigId, f64)> = None;
        for (id, point) in &visited {
            let value = model.value(point);
            if chosen.map_or(true, |(_, v)| value > v) {
                chosen = Some((*id, value));
            }
        }
        let chosen = chosen
            .map(|(id, _)| id)
            .or_else(|| evaluator.best().map(|s| s.config))
            .unwrap_or(0);
        evaluator.finish(self.name(), chosen)
    }

    fn warm_start(&mut self, hints: &[ConfigId]) {
        self.hints = hints.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    #[test]
    fn consumes_budget_and_recommends_a_visited_configuration() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 37);
        let outcome = Ntbea::new(2).tune(&workload, &mut cloud, TuningBudget::evaluations(60));
        assert_eq!(outcome.samples, 60);
        assert!(outcome.chosen < workload.size());
        assert!(outcome
            .history
            .iter()
            .any(|record| record.config == outcome.chosen));
    }

    #[test]
    fn beats_random_search_on_average_base_time() {
        // The n-tuple model should make NTBEA competitive with (usually better than)
        // random search on the same budget, averaged over seeds to absorb noise.
        let workload = Workload::scaled(Application::Redis, 20_000);
        let budget = TuningBudget::evaluations(70);
        let mut ntbea_total = 0.0;
        let mut random_total = 0.0;
        for seed in 0..3u64 {
            let mut cloud_a = CloudEnvironment::new(
                VmType::M5_8xlarge,
                InterferenceProfile::typical(),
                100 + seed,
            );
            let mut cloud_b = CloudEnvironment::new(
                VmType::M5_8xlarge,
                InterferenceProfile::typical(),
                100 + seed,
            );
            let ntbea = Ntbea::new(seed).tune(&workload, &mut cloud_a, budget);
            let random = crate::RandomSearch::new(seed).tune(&workload, &mut cloud_b, budget);
            ntbea_total += workload.base_time(ntbea.chosen);
            random_total += workload.base_time(random.chosen);
        }
        assert!(
            ntbea_total <= random_total * 1.1,
            "NTBEA ({ntbea_total}) should be competitive with random ({random_total})"
        );
    }

    #[test]
    fn warm_start_evaluates_hints_and_walks_from_the_best() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 37);
        let mut tuner = Ntbea::new(2);
        tuner.warm_start(&[5, 900]);
        let outcome = tuner.tune(&workload, &mut cloud, TuningBudget::evaluations(20));
        assert_eq!(outcome.samples, 20);
        assert_eq!(outcome.history[0].config, 5);
        assert_eq!(outcome.history[1].config, 900);
    }

    #[test]
    fn deterministic_given_seeds() {
        let workload = Workload::scaled(Application::Gromacs, 5_000);
        let run = || {
            let mut cloud =
                CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 41);
            Ntbea::new(9)
                .tune(&workload, &mut cloud, TuningBudget::evaluations(40))
                .chosen
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_neighbourhood_rejected() {
        Ntbea::with_neighbourhood(1, 0, 1.4);
    }
}
