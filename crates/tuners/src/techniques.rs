//! Search techniques used by the OpenTuner-style ensemble.
//!
//! OpenTuner's key idea is a *meta-technique*: a bandit that allocates evaluations among
//! several complete search techniques (hill climbing, evolutionary search, pattern
//! search, random sampling), crediting whichever technique has recently produced
//! improvements. The individual techniques live here; the bandit lives in
//! [`crate::OpenTuner`].

use dg_cloudsim::SimRng;
use dg_workloads::{ConfigId, Workload};

/// Shared state the techniques draw on: the best configuration found so far and a pool of
/// recent elites.
#[derive(Debug, Clone, Default)]
pub struct SearchContext {
    /// Best configuration observed so far, with its observed time.
    pub best: Option<(ConfigId, f64)>,
    /// Recent good configurations (most recent last).
    pub elites: Vec<(ConfigId, f64)>,
}

impl SearchContext {
    /// Records an observation, maintaining the best value and a bounded elite pool.
    pub fn record(&mut self, config: ConfigId, observed_time: f64) {
        if self.best.map_or(true, |(_, t)| observed_time < t) {
            self.best = Some((config, observed_time));
        }
        self.elites.push((config, observed_time));
        self.elites
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("times are not NaN"));
        self.elites.truncate(16);
    }
}

/// A proposal-generating search technique.
pub trait Technique {
    /// Short name for bookkeeping.
    fn name(&self) -> &'static str;

    /// Proposes the next configuration to evaluate.
    fn propose(
        &mut self,
        workload: &Workload,
        context: &SearchContext,
        rng: &mut SimRng,
    ) -> ConfigId;
}

/// Uniform random sampling.
#[derive(Debug, Default)]
pub struct RandomTechnique;

impl Technique for RandomTechnique {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(
        &mut self,
        workload: &Workload,
        _context: &SearchContext,
        rng: &mut SimRng,
    ) -> ConfigId {
        let size = workload.size();
        ((rng.uniform() * size as f64) as u64).min(size - 1)
    }
}

/// Hill climbing: perturb one random dimension of the best configuration.
#[derive(Debug, Default)]
pub struct HillClimbTechnique;

impl Technique for HillClimbTechnique {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn propose(
        &mut self,
        workload: &Workload,
        context: &SearchContext,
        rng: &mut SimRng,
    ) -> ConfigId {
        let space = workload.space();
        let Some((best, _)) = context.best else {
            return RandomTechnique.propose(workload, context, rng);
        };
        let mut point = space.point_of(best);
        let dim = rng.index(point.len());
        let levels = space.parameters()[dim].level_count();
        if levels > 1 {
            let mut new_level = rng.index(levels);
            if new_level == point[dim] {
                new_level = (new_level + 1) % levels;
            }
            point[dim] = new_level;
        }
        space.index_of(&point)
    }
}

/// Pattern search: step ±1 level in a cycling dimension around the best configuration.
#[derive(Debug, Default)]
pub struct PatternSearchTechnique {
    cursor: usize,
    direction_up: bool,
}

impl Technique for PatternSearchTechnique {
    fn name(&self) -> &'static str {
        "pattern-search"
    }

    fn propose(
        &mut self,
        workload: &Workload,
        context: &SearchContext,
        rng: &mut SimRng,
    ) -> ConfigId {
        let space = workload.space();
        let Some((best, _)) = context.best else {
            return RandomTechnique.propose(workload, context, rng);
        };
        let mut point = space.point_of(best);
        let dims = point.len();
        // Find the next non-pinned dimension from the cursor.
        for _ in 0..dims {
            let dim = self.cursor % dims;
            self.cursor += 1;
            let levels = space.parameters()[dim].level_count();
            if levels <= 1 {
                continue;
            }
            let level = point[dim] as isize;
            let stepped = if self.direction_up {
                level + 1
            } else {
                level - 1
            };
            self.direction_up = !self.direction_up;
            point[dim] = stepped.clamp(0, levels as isize - 1) as usize;
            return space.index_of(&point);
        }
        best
    }
}

/// Evolutionary search: uniform crossover of two elites plus a point mutation.
#[derive(Debug, Default)]
pub struct EvolutionTechnique;

impl Technique for EvolutionTechnique {
    fn name(&self) -> &'static str {
        "evolution"
    }

    fn propose(
        &mut self,
        workload: &Workload,
        context: &SearchContext,
        rng: &mut SimRng,
    ) -> ConfigId {
        let space = workload.space();
        if context.elites.len() < 2 {
            return RandomTechnique.propose(workload, context, rng);
        }
        let a = context.elites[rng.index(context.elites.len().min(8))].0;
        let b = context.elites[rng.index(context.elites.len().min(8))].0;
        let point_a = space.point_of(a);
        let point_b = space.point_of(b);
        let mut child: Vec<usize> = point_a
            .iter()
            .zip(point_b.iter())
            .map(|(x, y)| if rng.chance(0.5) { *x } else { *y })
            .collect();
        // Point mutation.
        let dim = rng.index(child.len());
        let levels = space.parameters()[dim].level_count();
        if levels > 1 {
            child[dim] = rng.index(levels);
        }
        space.index_of(&child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_workloads::Application;

    fn workload() -> Workload {
        Workload::scaled(Application::Redis, 5_000)
    }

    #[test]
    fn context_tracks_best_and_elites() {
        let mut context = SearchContext::default();
        context.record(1, 300.0);
        context.record(2, 250.0);
        context.record(3, 400.0);
        assert_eq!(context.best, Some((2, 250.0)));
        assert_eq!(context.elites[0].0, 2);
    }

    #[test]
    fn elites_are_bounded() {
        let mut context = SearchContext::default();
        for i in 0..100 {
            context.record(i, 1000.0 - i as f64);
        }
        assert!(context.elites.len() <= 16);
    }

    #[test]
    fn techniques_propose_valid_configs() {
        let workload = workload();
        let mut rng = SimRng::new(1);
        let mut context = SearchContext::default();
        context.record(workload.size() / 2, 400.0);
        context.record(workload.size() / 3, 380.0);

        let mut techniques: Vec<Box<dyn Technique>> = vec![
            Box::new(RandomTechnique),
            Box::new(HillClimbTechnique),
            Box::new(PatternSearchTechnique::default()),
            Box::new(EvolutionTechnique),
        ];
        for technique in &mut techniques {
            for _ in 0..50 {
                let id = technique.propose(&workload, &context, &mut rng);
                assert!(id < workload.size(), "{} proposed {id}", technique.name());
            }
        }
    }

    #[test]
    fn hill_climb_stays_near_best() {
        let workload = workload();
        let mut rng = SimRng::new(2);
        let mut context = SearchContext::default();
        let best = workload.size() / 2;
        context.record(best, 100.0);
        let space = workload.space();
        let best_point = space.point_of(best);
        let id = HillClimbTechnique.propose(&workload, &context, &mut rng);
        let proposed = space.point_of(id);
        let differing = best_point
            .iter()
            .zip(proposed.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            differing <= 1,
            "hill climb should change at most one dimension"
        );
    }

    #[test]
    fn techniques_fall_back_to_random_without_context() {
        let workload = workload();
        let mut rng = SimRng::new(3);
        let context = SearchContext::default();
        let id = EvolutionTechnique.propose(&workload, &context, &mut rng);
        assert!(id < workload.size());
        let id = HillClimbTechnique.propose(&workload, &context, &mut rng);
        assert!(id < workload.size());
    }
}
