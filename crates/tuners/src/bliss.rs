//! A BLISS-style tuner: a pool of lightweight Bayesian-optimisation models.

use crate::activeharmony::{config_to_vector, vector_to_config};
use crate::evaluator::{CloudEvaluator, TuningBudget};
use crate::gp::GaussianProcess;
use crate::outcome::TuningOutcome;
use crate::tuner::Tuner;
use dg_cloudsim::SimRng;
use dg_exec::ExecutionBackend;
use dg_workloads::{ConfigId, Workload};

/// Number of candidate configurations scored by the acquisition function per iteration.
const CANDIDATE_POOL: usize = 192;

/// Maximum number of (most recent) observations each model is fit to, bounding the
/// cubic-cost Cholesky factorisation.
const FIT_WINDOW: usize = 120;

/// BLISS [Roy et al., PLDI'21]: instead of one heavyweight Bayesian-optimisation model,
/// keep a pool of cheap models (here: Gaussian processes with different length scales)
/// and probabilistically pick which model drives each sampling decision, favouring the
/// models whose recent predictions were most accurate.
#[derive(Debug, Clone)]
pub struct Bliss {
    seed: u64,
    length_scales: Vec<f64>,
}

impl Bliss {
    /// Creates a BLISS-style tuner with the default model pool.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            length_scales: vec![0.08, 0.18, 0.35, 0.7],
        }
    }

    /// Creates a BLISS-style tuner with a custom pool of RBF length scales.
    ///
    /// # Panics
    ///
    /// Panics if `length_scales` is empty.
    pub fn with_length_scales(seed: u64, length_scales: Vec<f64>) -> Self {
        assert!(
            !length_scales.is_empty(),
            "the model pool must not be empty"
        );
        Self {
            seed,
            length_scales,
        }
    }
}

struct ModelSlot {
    gp: GaussianProcess,
    /// Recent absolute prediction errors (seconds); lower means more trustworthy.
    errors: Vec<f64>,
}

impl ModelSlot {
    fn weight(&self) -> f64 {
        if self.errors.is_empty() {
            return 1.0;
        }
        let mean_error = self.errors.iter().sum::<f64>() / self.errors.len() as f64;
        1.0 / (1.0 + mean_error)
    }

    fn record_error(&mut self, error: f64) {
        self.errors.push(error);
        if self.errors.len() > 12 {
            self.errors.remove(0);
        }
    }
}

impl Tuner for Bliss {
    fn name(&self) -> &str {
        "BLISS"
    }

    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        budget: TuningBudget,
    ) -> TuningOutcome {
        let mut rng = SimRng::new(self.seed).derive("bliss");
        let mut evaluator = CloudEvaluator::new(workload, exec, budget);
        let size = workload.size();

        let mut models: Vec<ModelSlot> = self
            .length_scales
            .iter()
            .map(|ls| ModelSlot {
                gp: GaussianProcess::new(*ls, 1e-3),
                errors: Vec::new(),
            })
            .collect();

        // Warm-up with random samples (BLISS seeds its models the same way).
        let warmup = (budget.max_evaluations / 8).clamp(4, 24);
        let mut observations: Vec<(ConfigId, Vec<f64>, f64)> = Vec::new();
        for _ in 0..warmup {
            if evaluator.exhausted() {
                break;
            }
            let id = ((rng.uniform() * size as f64) as u64).min(size - 1);
            let observed = evaluator.evaluate(id);
            observations.push((id, config_to_vector(workload, id), observed));
        }

        while !evaluator.exhausted() {
            // Fit every model on the most recent window of observations.
            let window_start = observations.len().saturating_sub(FIT_WINDOW);
            let window = &observations[window_start..];
            let inputs: Vec<Vec<f64>> = window.iter().map(|(_, x, _)| x.clone()).collect();
            let targets: Vec<f64> = window.iter().map(|(_, _, y)| *y).collect();
            if inputs.is_empty() {
                break;
            }
            for slot in &mut models {
                slot.gp.fit(&inputs, &targets);
            }

            // Probabilistically select a model, weighted by recent accuracy.
            let weights: Vec<f64> = models.iter().map(ModelSlot::weight).collect();
            let model_index = rng.weighted_index(&weights);

            // Score a candidate pool with expected improvement.
            let best_observed = targets.iter().copied().fold(f64::INFINITY, f64::min);
            let mut best_candidate: Option<(ConfigId, f64)> = None;
            for _ in 0..CANDIDATE_POOL {
                let candidate = ((rng.uniform() * size as f64) as u64).min(size - 1);
                let vector = config_to_vector(workload, candidate);
                let ei = models[model_index]
                    .gp
                    .expected_improvement(&vector, best_observed);
                if best_candidate.map_or(true, |(_, best_ei)| ei > best_ei) {
                    best_candidate = Some((candidate, ei));
                }
            }
            // Also consider a local perturbation of the incumbent, which keeps the search
            // from ignoring the neighbourhood of the best-known configuration.
            if let Some(best) = evaluator.best() {
                let mut vector = config_to_vector(workload, best.config);
                if !vector.is_empty() {
                    let dim = rng.index(vector.len());
                    vector[dim] = (vector[dim] + rng.normal_with(0.0, 0.2)).clamp(0.0, 1.0);
                }
                let candidate = vector_to_config(workload, &vector);
                let ei = models[model_index]
                    .gp
                    .expected_improvement(&vector, best_observed);
                if best_candidate.map_or(true, |(_, best_ei)| ei > best_ei) {
                    best_candidate = Some((candidate, ei));
                }
            }

            let (chosen_candidate, _) = best_candidate.expect("candidate pool is never empty");
            let vector = config_to_vector(workload, chosen_candidate);
            let (predicted, _) = models[model_index].gp.predict(&vector);
            let observed = evaluator.evaluate(chosen_candidate);
            if observed.is_finite() {
                models[model_index].record_error((observed - predicted).abs());
                observations.push((chosen_candidate, vector, observed));
            }
        }

        let chosen = evaluator.best().map(|s| s.config).unwrap_or(0);
        evaluator.finish(self.name(), chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    #[test]
    fn consumes_budget_and_returns_best_observation() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 37);
        let outcome = Bliss::new(2).tune(&workload, &mut cloud, TuningBudget::evaluations(60));
        assert_eq!(outcome.samples, 60);
        assert_eq!(outcome.chosen, outcome.best_observed().unwrap().config);
    }

    #[test]
    fn beats_random_search_on_average_base_time() {
        // BLISS should usually find a configuration with a lower *dedicated* time than
        // pure random search given the same budget. Averaged over a few seeds to avoid
        // flakiness from the noisy environment.
        let workload = Workload::scaled(Application::Redis, 20_000);
        let budget = TuningBudget::evaluations(70);
        let mut bliss_total = 0.0;
        let mut random_total = 0.0;
        for seed in 0..3u64 {
            let mut cloud_a = CloudEnvironment::new(
                VmType::M5_8xlarge,
                InterferenceProfile::typical(),
                100 + seed,
            );
            let mut cloud_b = CloudEnvironment::new(
                VmType::M5_8xlarge,
                InterferenceProfile::typical(),
                100 + seed,
            );
            let bliss = Bliss::new(seed).tune(&workload, &mut cloud_a, budget);
            let random = crate::RandomSearch::new(seed).tune(&workload, &mut cloud_b, budget);
            bliss_total += workload.base_time(bliss.chosen);
            random_total += workload.base_time(random.chosen);
        }
        assert!(
            bliss_total <= random_total * 1.1,
            "BLISS ({bliss_total}) should be competitive with random ({random_total})"
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let workload = Workload::scaled(Application::Gromacs, 5_000);
        let run = || {
            let mut cloud =
                CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 41);
            Bliss::new(9)
                .tune(&workload, &mut cloud, TuningBudget::evaluations(40))
                .chosen
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_model_pool_rejected() {
        Bliss::with_length_scales(1, Vec::new());
    }
}
