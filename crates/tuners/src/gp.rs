//! A small Gaussian-process regressor used by the BLISS-style tuner.
//!
//! BLISS maintains a pool of lightweight Bayesian-optimisation models; each model here is
//! a Gaussian process with an RBF kernel of a particular length scale. The implementation
//! is intentionally minimal (dense Cholesky, no hyper-parameter optimisation) because the
//! model pool — not any individual model — is what the BLISS design relies on.

/// A Gaussian process with a radial-basis-function kernel, fit to normalised inputs in
/// `[0, 1]^d`.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    length_scale: f64,
    noise: f64,
    inputs: Vec<Vec<f64>>,
    /// `(K + noise * I)^-1 * (y - mean)` from the last fit.
    alpha: Vec<f64>,
    /// Cholesky factor `L` of `K + noise * I` (lower triangular, row-major).
    cholesky: Vec<Vec<f64>>,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// Creates an unfit GP with the given RBF length scale and observation noise.
    ///
    /// # Panics
    ///
    /// Panics if `length_scale` or `noise` is not strictly positive.
    pub fn new(length_scale: f64, noise: f64) -> Self {
        assert!(length_scale > 0.0, "length scale must be positive");
        assert!(noise > 0.0, "noise must be positive");
        Self {
            length_scale,
            noise,
            inputs: Vec::new(),
            alpha: Vec::new(),
            cholesky: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// The kernel length scale.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    /// True once [`fit`](Self::fit) has been called with at least one observation.
    pub fn is_fit(&self) -> bool {
        !self.inputs.is_empty()
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let squared: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
        (-squared / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// Fits the GP to `(inputs, targets)`.
    ///
    /// Targets are standardised internally so callers can pass raw execution times.
    ///
    /// # Panics
    ///
    /// Panics if the inputs and targets differ in length or are empty.
    // Index-based loops keep the triangular Cholesky recurrences in textbook form.
    #[allow(clippy::needless_range_loop)]
    pub fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        assert!(!inputs.is_empty(), "cannot fit a GP to zero observations");
        let n = inputs.len();
        self.y_mean = dg_stats::mean(targets);
        self.y_std = dg_stats::std_dev(targets).max(1e-9);
        let standardized: Vec<f64> = targets
            .iter()
            .map(|y| (y - self.y_mean) / self.y_std)
            .collect();

        // Build K + noise * I.
        let mut matrix = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let k = self.kernel(&inputs[i], &inputs[j]);
                matrix[i][j] = k;
                matrix[j][i] = k;
            }
            matrix[i][i] += self.noise;
        }

        // Cholesky decomposition (matrix = L * L^T).
        let mut l = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = matrix[i][j];
                for k in 0..j {
                    sum -= l[i][k] * l[j][k];
                }
                if i == j {
                    l[i][j] = sum.max(1e-12).sqrt();
                } else {
                    l[i][j] = sum / l[j][j];
                }
            }
        }

        // Solve L z = y, then L^T alpha = z.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = standardized[i];
            for k in 0..i {
                sum -= l[i][k] * z[k];
            }
            z[i] = sum / l[i][i];
        }
        let mut alpha = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in i + 1..n {
                sum -= l[k][i] * alpha[k];
            }
            alpha[i] = sum / l[i][i];
        }

        self.inputs = inputs.to_vec();
        self.alpha = alpha;
        self.cholesky = l;
    }

    /// Predictive mean and standard deviation at `point` (in the original target units).
    ///
    /// # Panics
    ///
    /// Panics if the GP has not been fit.
    // Index-based loops keep the triangular solves in textbook form.
    #[allow(clippy::needless_range_loop)]
    pub fn predict(&self, point: &[f64]) -> (f64, f64) {
        assert!(self.is_fit(), "predict called before fit");
        let n = self.inputs.len();
        let k_star: Vec<f64> = self.inputs.iter().map(|x| self.kernel(x, point)).collect();
        let mean_standardized: f64 = k_star
            .iter()
            .zip(self.alpha.iter())
            .map(|(k, a)| k * a)
            .sum();

        // v = L^-1 k_star; predictive variance = k(x,x) - v^T v.
        let mut v = vec![0.0; n];
        for i in 0..n {
            let mut sum = k_star[i];
            for k in 0..i {
                sum -= self.cholesky[i][k] * v[k];
            }
            v[i] = sum / self.cholesky[i][i];
        }
        let variance_standardized =
            (1.0 + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);

        let mean = mean_standardized * self.y_std + self.y_mean;
        let std_dev = variance_standardized.sqrt() * self.y_std;
        (mean, std_dev)
    }

    /// Expected improvement of `point` over the incumbent best target value
    /// (minimisation). Larger is better.
    ///
    /// # Panics
    ///
    /// Panics if the GP has not been fit.
    pub fn expected_improvement(&self, point: &[f64], best: f64) -> f64 {
        let (mean, std_dev) = self.predict(point);
        if std_dev < 1e-12 {
            return (best - mean).max(0.0);
        }
        let z = (best - mean) / std_dev;
        let (pdf, cdf) = standard_normal(z);
        ((best - mean) * cdf + std_dev * pdf).max(0.0)
    }
}

/// Standard normal PDF and CDF at `z` (Abramowitz–Stegun CDF approximation).
fn standard_normal(z: f64) -> (f64, f64) {
    let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    // CDF via the error-function approximation.
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let tail = pdf * poly;
    let cdf = if z >= 0.0 { 1.0 - tail } else { tail };
    (pdf, cdf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let inputs = grid_1d(6);
        let targets: Vec<f64> = inputs.iter().map(|x| 100.0 + 50.0 * x[0]).collect();
        let mut gp = GaussianProcess::new(0.3, 1e-6);
        gp.fit(&inputs, &targets);
        for (x, y) in inputs.iter().zip(targets.iter()) {
            let (mean, _) = gp.predict(x);
            assert!((mean - y).abs() < 1.0, "predicted {mean}, expected {y}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let inputs = vec![vec![0.0], vec![0.1], vec![0.2]];
        let targets = vec![1.0, 2.0, 3.0];
        let mut gp = GaussianProcess::new(0.1, 1e-4);
        gp.fit(&inputs, &targets);
        let (_, near) = gp.predict(&[0.1]);
        let (_, far) = gp.predict(&[0.9]);
        assert!(far > near * 2.0, "near={near} far={far}");
    }

    #[test]
    fn expected_improvement_prefers_unexplored_promising_regions() {
        // Decreasing function: the minimum continues beyond the sampled range.
        let inputs = grid_1d(5);
        let targets: Vec<f64> = inputs.iter().map(|x| 10.0 - 5.0 * x[0]).collect();
        let mut gp = GaussianProcess::new(0.25, 1e-4);
        gp.fit(&inputs, &targets);
        let best = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let ei_at_known_bad = gp.expected_improvement(&[0.0], best);
        let ei_at_frontier = gp.expected_improvement(&[1.0], best);
        assert!(ei_at_frontier >= ei_at_known_bad);
    }

    #[test]
    fn standard_normal_is_sane() {
        let (_, cdf0) = standard_normal(0.0);
        assert!((cdf0 - 0.5).abs() < 1e-3);
        let (_, cdf2) = standard_normal(2.0);
        assert!((cdf2 - 0.977).abs() < 5e-3);
        let (_, cdf_neg) = standard_normal(-2.0);
        assert!((cdf_neg - 0.023).abs() < 5e-3);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        GaussianProcess::new(0.5, 1e-3).predict(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_fit_rejected() {
        GaussianProcess::new(0.5, 1e-3).fit(&[vec![0.0]], &[1.0, 2.0]);
    }
}
