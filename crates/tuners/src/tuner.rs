//! The common interface implemented by every baseline tuner.

use crate::evaluator::TuningBudget;
use crate::outcome::TuningOutcome;
use dg_exec::ExecutionBackend;
use dg_workloads::{ConfigId, Workload};

/// An application performance tuner.
///
/// A tuner navigates the workload's search space by evaluating configurations through
/// the provided [`ExecutionBackend`] and finally selects the configuration it believes
/// is fastest. Implementations differ only in how they choose which configurations to
/// evaluate; they all observe the same noisy execution times. Because tuners only see
/// the backend trait, the same tuner runs unchanged against the cloud simulator, a
/// recorded trace, or a memoizing wrapper.
pub trait Tuner {
    /// The tuner's display name, as used in the paper's figures.
    fn name(&self) -> &str;

    /// Runs one tuning session and returns the selected configuration plus bookkeeping.
    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        budget: TuningBudget,
    ) -> TuningOutcome;

    /// Seeds the next [`tune`](Self::tune) call with known-good configurations — the
    /// incumbent champion and hall-of-fame of an online retuning loop. Tuners that
    /// support warm starting evaluate the hints before exploring; the default ignores
    /// them, so every tuner remains a valid (cold-start) retuning candidate.
    fn warm_start(&mut self, hints: &[ConfigId]) {
        let _ = hints;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CloudEvaluator;

    /// A trivial tuner used to exercise the trait object path.
    struct FirstConfigTuner;

    impl Tuner for FirstConfigTuner {
        fn name(&self) -> &str {
            "first-config"
        }

        fn tune(
            &mut self,
            workload: &Workload,
            exec: &mut dyn ExecutionBackend,
            budget: TuningBudget,
        ) -> TuningOutcome {
            let mut evaluator = CloudEvaluator::new(workload, exec, budget);
            evaluator.evaluate(0);
            evaluator.finish(self.name(), 0)
        }
    }

    #[test]
    fn trait_objects_work() {
        use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
        use dg_workloads::Application;

        let workload = Workload::scaled(Application::Redis, 2_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
        let mut tuner: Box<dyn Tuner> = Box::new(FirstConfigTuner);
        let outcome = tuner.tune(&workload, &mut cloud, TuningBudget::evaluations(5));
        assert_eq!(outcome.tuner, "first-config");
        assert_eq!(outcome.chosen, 0);
        assert_eq!(outcome.samples, 1);
    }
}
