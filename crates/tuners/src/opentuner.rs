//! An OpenTuner-style ensemble tuner with an AUC-bandit meta-technique.

use crate::evaluator::{CloudEvaluator, TuningBudget};
use crate::outcome::TuningOutcome;
use crate::techniques::{
    EvolutionTechnique, HillClimbTechnique, PatternSearchTechnique, RandomTechnique, SearchContext,
    Technique,
};
use crate::tuner::Tuner;
use dg_cloudsim::SimRng;
use dg_exec::ExecutionBackend;
use dg_workloads::Workload;

/// Length of the sliding window over which each technique's improvement credit is scored.
const CREDIT_WINDOW: usize = 20;

/// Exploration weight of the UCB-style bonus in technique selection.
const EXPLORATION: f64 = 1.2;

/// OpenTuner [Ansel et al.]: an ensemble of search techniques arbitrated by a
/// multi-armed bandit that credits whichever technique recently improved the best
/// observed time.
#[derive(Debug, Clone)]
pub struct OpenTuner {
    seed: u64,
}

impl OpenTuner {
    /// Creates an OpenTuner-style tuner with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

struct Arm {
    technique: Box<dyn Technique>,
    uses: usize,
    /// Sliding window of 1/0 credits: did the proposal improve the best observation?
    credits: Vec<f64>,
}

impl Arm {
    fn score(&self, total_uses: usize) -> f64 {
        let auc = if self.credits.is_empty() {
            // Unused arms get an optimistic prior so every technique is tried.
            1.0
        } else {
            self.credits.iter().sum::<f64>() / self.credits.len() as f64
        };
        let exploration = if self.uses == 0 {
            f64::INFINITY
        } else {
            EXPLORATION * ((total_uses.max(1) as f64).ln() / self.uses as f64).sqrt()
        };
        auc + exploration
    }

    fn credit(&mut self, improved: bool) {
        self.credits.push(if improved { 1.0 } else { 0.0 });
        if self.credits.len() > CREDIT_WINDOW {
            self.credits.remove(0);
        }
    }
}

impl Tuner for OpenTuner {
    fn name(&self) -> &str {
        "OpenTuner"
    }

    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        budget: TuningBudget,
    ) -> TuningOutcome {
        let mut rng = SimRng::new(self.seed).derive("opentuner");
        let mut evaluator = CloudEvaluator::new(workload, exec, budget);
        let mut context = SearchContext::default();

        let mut arms: Vec<Arm> = vec![
            Arm {
                technique: Box::new(RandomTechnique),
                uses: 0,
                credits: Vec::new(),
            },
            Arm {
                technique: Box::new(HillClimbTechnique),
                uses: 0,
                credits: Vec::new(),
            },
            Arm {
                technique: Box::new(PatternSearchTechnique::default()),
                uses: 0,
                credits: Vec::new(),
            },
            Arm {
                technique: Box::new(EvolutionTechnique),
                uses: 0,
                credits: Vec::new(),
            },
        ];

        // A small random warm-up seeds the context so structured techniques have a
        // starting point.
        let warmup = (budget.max_evaluations / 10).clamp(1, 10);
        for _ in 0..warmup {
            if evaluator.exhausted() {
                break;
            }
            let id = RandomTechnique.propose(workload, &context, &mut rng);
            let observed = evaluator.evaluate(id);
            context.record(id, observed);
        }

        let mut total_uses = 0usize;
        while !evaluator.exhausted() {
            // Pick the arm with the best AUC + exploration score.
            let chosen_arm = (0..arms.len())
                .max_by(|a, b| {
                    arms[*a]
                        .score(total_uses)
                        .partial_cmp(&arms[*b].score(total_uses))
                        .expect("scores are not NaN")
                })
                .expect("there is at least one arm");
            let previous_best = context.best.map(|(_, t)| t).unwrap_or(f64::INFINITY);
            let proposal = arms[chosen_arm]
                .technique
                .propose(workload, &context, &mut rng);
            let observed = evaluator.evaluate(proposal);
            context.record(proposal, observed);
            let improved = observed < previous_best;
            arms[chosen_arm].uses += 1;
            arms[chosen_arm].credit(improved);
            total_uses += 1;
        }

        let chosen = evaluator.best().map(|s| s.config).unwrap_or(0);
        evaluator.finish(self.name(), chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    #[test]
    fn consumes_budget_and_selects_best_observation() {
        let workload = Workload::scaled(Application::Redis, 10_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 17);
        let outcome = OpenTuner::new(4).tune(&workload, &mut cloud, TuningBudget::evaluations(80));
        assert_eq!(outcome.samples, 80);
        assert_eq!(outcome.chosen, outcome.best_observed().unwrap().config);
    }

    #[test]
    fn beats_the_search_space_midpoint() {
        let workload = Workload::scaled(Application::Ffmpeg, 10_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 23);
        let outcome = OpenTuner::new(5).tune(&workload, &mut cloud, TuningBudget::evaluations(120));
        let config = workload.application().surface_config();
        let midpoint = (config.best_time + config.worst_time) / 2.0;
        assert!(workload.base_time(outcome.chosen) < midpoint);
    }

    #[test]
    fn deterministic_given_seeds() {
        let workload = Workload::scaled(Application::Lammps, 5_000);
        let run = || {
            let mut cloud =
                CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 31);
            OpenTuner::new(6)
                .tune(&workload, &mut cloud, TuningBudget::evaluations(50))
                .chosen
        };
        assert_eq!(run(), run());
    }
}
