//! Uniform random search.

use crate::evaluator::{CloudEvaluator, TuningBudget};
use crate::outcome::TuningOutcome;
use crate::tuner::Tuner;
use dg_cloudsim::SimRng;
use dg_exec::ExecutionBackend;
use dg_workloads::{ConfigId, Workload};

/// Random search: sample uniformly at random and keep the best observation.
///
/// Random search is a surprisingly strong baseline in high-dimensional tuning spaces and
/// serves as a sanity floor for the more sophisticated tuners. When warm-started
/// ([`Tuner::warm_start`]) it spends the first evaluations on the hinted
/// configurations, so an online retuning loop never selects worse than a re-measured
/// incumbent.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
    hints: Vec<ConfigId>,
}

impl RandomSearch {
    /// Creates a random-search tuner with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            hints: Vec::new(),
        }
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &str {
        "RandomSearch"
    }

    fn tune(
        &mut self,
        workload: &Workload,
        exec: &mut dyn ExecutionBackend,
        budget: TuningBudget,
    ) -> TuningOutcome {
        let mut rng = SimRng::new(self.seed).derive("random-search");
        let mut evaluator = CloudEvaluator::new(workload, exec, budget);
        let size = workload.size();
        for hint in &self.hints {
            if evaluator.exhausted() {
                break;
            }
            evaluator.evaluate((*hint).min(size - 1));
        }
        while !evaluator.exhausted() {
            let id = ((rng.uniform() * size as f64) as u64).min(size - 1);
            evaluator.evaluate(id);
        }
        let chosen = evaluator.best().map(|s| s.config).unwrap_or(0);
        evaluator.finish(self.name(), chosen)
    }

    fn warm_start(&mut self, hints: &[ConfigId]) {
        self.hints = hints.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
    use dg_workloads::Application;

    #[test]
    fn uses_whole_budget_and_picks_best_observation() {
        let workload = Workload::scaled(Application::Redis, 5_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 3);
        let mut tuner = RandomSearch::new(11);
        let outcome = tuner.tune(&workload, &mut cloud, TuningBudget::evaluations(40));
        assert_eq!(outcome.samples, 40);
        let best = outcome.best_observed().unwrap();
        assert_eq!(outcome.chosen, best.config);
    }

    #[test]
    fn warm_start_evaluates_hints_first() {
        let workload = Workload::scaled(Application::Redis, 5_000);
        let mut cloud =
            CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 3);
        let mut tuner = RandomSearch::new(11);
        tuner.warm_start(&[17, 230]);
        let outcome = tuner.tune(&workload, &mut cloud, TuningBudget::evaluations(10));
        assert_eq!(outcome.samples, 10);
        assert_eq!(outcome.history[0].config, 17);
        assert_eq!(outcome.history[1].config, 230);

        // Hints consume budget like any evaluation: a 1-eval budget stops after the
        // first hint.
        let mut tiny = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 3);
        let mut tuner = RandomSearch::new(11);
        tuner.warm_start(&[42, 43, 44]);
        let outcome = tuner.tune(&workload, &mut tiny, TuningBudget::evaluations(1));
        assert_eq!(outcome.samples, 1);
        assert_eq!(outcome.chosen, 42);
    }

    #[test]
    fn deterministic_given_seed() {
        let workload = Workload::scaled(Application::Ffmpeg, 5_000);
        let run = |seed_env: u64| {
            let mut cloud =
                CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed_env);
            RandomSearch::new(5)
                .tune(&workload, &mut cloud, TuningBudget::evaluations(25))
                .chosen
        };
        assert_eq!(run(9), run(9));
    }
}
