//! A surrogate-model backend: serve evaluations from an online n-tuple model.
//!
//! Model-based search crushes direct evaluation on noisy objectives (Lucas et al.,
//! "Model-Based is Best"; the N-Tuple Bandit Evolutionary Algorithm). This module
//! brings that economics to *any* [`ExecutionBackend`]: [`SurrogateBackend`] wraps an
//! inner backend, fits an incremental low-order model of configuration → outcome
//! online from the real evaluations that pass through it, and — once a configuration's
//! tuples clear a confidence gate — serves a tunable fraction of solo evaluations and
//! observations straight from the model, cost-free and without touching the inner
//! backend. Everything else falls through unchanged, so with the serving fraction at
//! `0` the wrapper is bit-identical pass-through.

use crate::backend::{ExecutionBackend, GameBatchItem, GamePlay, GameRules};
use dg_cloudsim::{CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide mirrors of every [`SurrogateStats`] family, in serving order
/// (`model_solo`, `model_observations`, `real_solo`), so a
/// [`MetricsSnapshot`](dg_obs::MetricsSnapshot) sees surrogate serving across all
/// campaign cells without holding their per-cell handles.
fn surrogate_counters() -> &'static (dg_obs::Counter, dg_obs::Counter, dg_obs::Counter) {
    static COUNTERS: std::sync::OnceLock<(dg_obs::Counter, dg_obs::Counter, dg_obs::Counter)> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            dg_obs::metrics::counter("exec.surrogate_model_solo"),
            dg_obs::metrics::counter("exec.surrogate_model_observations"),
            dg_obs::metrics::counter("exec.surrogate_real_solo"),
        )
    })
}

/// Knobs of a [`SurrogateBackend`]: how aggressively to serve from the model and how
/// much evidence a tuple needs before the model is trusted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateConfig {
    /// Fraction of *confidently predictable* solo evaluations and observations served
    /// from the model instead of the inner backend, in `[0, 1]`. `0` disables the
    /// surrogate entirely (bit-identical pass-through); `1` serves every request the
    /// confidence gate clears.
    pub fraction: f64,
    /// Minimum number of real samples a tuple needs before its estimate can be served.
    pub min_samples: u64,
    /// Maximum relative standard deviation (`std / |mean|`) a tuple may show and still
    /// be served. Tuples noisier than this fall through to the inner backend.
    pub max_rel_std: f64,
    /// Resolution of the generalising tuples: bins per octave of base time, and total
    /// bins across the `[0, 1]` sensitivity range.
    pub bins: usize,
}

impl SurrogateConfig {
    /// A configuration that never serves from the model: bit-identical pass-through.
    pub fn passthrough() -> Self {
        Self {
            fraction: 0.0,
            ..Self::default()
        }
    }

    /// Whether this configuration can ever serve a model answer.
    pub fn is_active(&self) -> bool {
        self.fraction > 0.0
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or not finite, `max_rel_std` is
    /// negative or NaN, or `bins` is zero.
    pub fn validate(&self) {
        assert!(
            self.fraction.is_finite() && (0.0..=1.0).contains(&self.fraction),
            "surrogate fraction must be a finite number in [0, 1], got {}",
            self.fraction
        );
        assert!(
            self.max_rel_std >= 0.0,
            "surrogate max_rel_std must be non-negative, got {}",
            self.max_rel_std
        );
        assert!(self.bins > 0, "surrogate bins must be positive");
    }
}

impl Default for SurrogateConfig {
    /// The aggressive default: serve every request the confidence gate clears, after
    /// two real samples per tuple, tolerating heavy (cloud-grade) noise.
    fn default() -> Self {
        Self {
            fraction: 1.0,
            min_samples: 2,
            max_rel_std: 1.5,
            bins: 16,
        }
    }
}

/// Shared serving counters of a [`SurrogateBackend`] family.
///
/// The handle is cheap to clone and survives the backend being boxed behind the
/// `dyn ExecutionBackend` seam: campaign executors clone it before wrapping and read
/// the totals afterwards. Forked sub-backends share their parent's handle, so the
/// counts cover a whole cell including its per-region forks.
#[derive(Debug, Clone, Default)]
pub struct SurrogateStats {
    model_solo: Arc<AtomicU64>,
    model_observations: Arc<AtomicU64>,
    real_solo: Arc<AtomicU64>,
}

impl SurrogateStats {
    /// A fresh handle with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solo evaluations answered by the model (no inner call, no cost, no clock).
    pub fn model_solo(&self) -> u64 {
        self.model_solo.load(Ordering::Relaxed)
    }

    /// Observations answered by the model.
    pub fn model_observations(&self) -> u64 {
        self.model_observations.load(Ordering::Relaxed)
    }

    /// Solo evaluations that reached the inner backend (and trained the model).
    pub fn real_solo(&self) -> u64 {
        self.real_solo.load(Ordering::Relaxed)
    }

    /// Total requests served from the model.
    pub fn model_served(&self) -> u64 {
        self.model_solo() + self.model_observations()
    }
}

/// Welford-style online statistics of one tuple.
#[derive(Debug, Clone, Copy, Default)]
struct TupleStats {
    count: u64,
    mean: f64,
    m2: f64,
    elapsed_mean: f64,
}

impl TupleStats {
    fn observe(&mut self, time: f64, elapsed: f64) {
        self.count += 1;
        let n = self.count as f64;
        let delta = time - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (time - self.mean);
        self.elapsed_mean += (elapsed - self.elapsed_mean) / n;
    }

    /// Whether this tuple clears the `(min_samples, max_rel_std)` confidence gate.
    fn passes(&self, min_samples: u64, max_rel_std: f64) -> bool {
        if self.count < min_samples || self.count == 0 {
            return false;
        }
        let std = (self.m2 / self.count as f64).sqrt();
        std <= max_rel_std * self.mean.abs().max(f64::MIN_POSITIVE)
    }
}

/// Tuple levels, most specific first: the exact spec, the (base, sensitivity) bin
/// pair, and the two generalising 1-tuples.
const TUPLE_EXACT: u8 = 0;
const TUPLE_PAIR: u8 = 1;
const TUPLE_BASE: u8 = 2;
const TUPLE_SENS: u8 = 3;

/// An [`ExecutionBackend`] wrapper that learns an online n-tuple surrogate model from
/// real solo evaluations and serves confident repeat requests from it, cost-free.
///
/// The model keeps four tuples per spec — exact `(base_time, sensitivity)` bits, the
/// binned pair, and the two binned 1-tuples — each with Welford running statistics.
/// A request is served from the model only when (a) a tuple chain clears the
/// confidence gate (most specific first: exact, then pair, then a count-weighted
/// blend of the two 1-tuples) and (b) the deterministic serving schedule owes a model
/// answer under [`SurrogateConfig::fraction`]. Served solo evaluations commit **no**
/// cost and advance **no** clock; served observations skip the inner backend's
/// simulation. Every other request — games, commits, unconfident or unscheduled
/// evaluations — reaches the inner backend unchanged, which is why a `fraction` of
/// `0` is bit-identical pass-through.
///
/// Forked sub-backends start with a fresh (empty) model, because a fork is a
/// different noise realisation, but share the parent's [`SurrogateStats`] handle.
pub struct SurrogateBackend {
    inner: Box<dyn ExecutionBackend>,
    config: SurrogateConfig,
    model: HashMap<(u8, u64, u64), TupleStats>,
    solo_eligible: u64,
    solo_served: u64,
    obs_eligible: u64,
    obs_served: u64,
    stats: SurrogateStats,
}

impl SurrogateBackend {
    /// Wraps `inner` with an empty model under `config` (validated).
    pub fn new(inner: Box<dyn ExecutionBackend>, config: SurrogateConfig) -> Self {
        config.validate();
        Self::with_stats(inner, config, SurrogateStats::new())
    }

    /// Wraps `inner`, reporting serving counts through the shared `stats` handle.
    pub fn with_stats(
        inner: Box<dyn ExecutionBackend>,
        config: SurrogateConfig,
        stats: SurrogateStats,
    ) -> Self {
        config.validate();
        Self {
            inner,
            config,
            model: HashMap::new(),
            solo_eligible: 0,
            solo_served: 0,
            obs_eligible: 0,
            obs_served: 0,
            stats,
        }
    }

    /// The serving counters handle (clone it to keep reading after boxing).
    pub fn stats(&self) -> &SurrogateStats {
        &self.stats
    }

    /// The configuration this backend was built with.
    pub fn config(&self) -> &SurrogateConfig {
        &self.config
    }

    /// Unwraps the surrogate, discarding the model.
    pub fn into_inner(self) -> Box<dyn ExecutionBackend> {
        self.inner
    }

    /// The four tuple keys of `spec`, most specific first.
    fn tuple_keys(&self, spec: &ExecutionSpec) -> [(u8, u64, u64); 4] {
        let b = spec.base_time();
        let s = spec.sensitivity();
        let bins = self.config.bins as f64;
        // Log-scale base-time bins are scale-free: `bins` bins per octave.
        let base_bin = (b.max(f64::MIN_POSITIVE).log2() * bins).floor() as i64 as u64;
        let sens_bin =
            (((s.clamp(0.0, 1.0) * bins) as i64).min(self.config.bins as i64 - 1)).max(0) as u64;
        [
            (TUPLE_EXACT, b.to_bits(), s.to_bits()),
            (TUPLE_PAIR, base_bin, sens_bin),
            (TUPLE_BASE, base_bin, 0),
            (TUPLE_SENS, sens_bin, 0),
        ]
    }

    /// Feeds one real solo evaluation into every tuple of `spec`.
    fn train(&mut self, spec: &ExecutionSpec, observed_time: f64, elapsed: f64) {
        if !observed_time.is_finite() || !elapsed.is_finite() {
            return; // Failure sentinels (e.g. a failed process run) never train.
        }
        for key in self.tuple_keys(spec) {
            self.model
                .entry(key)
                .or_default()
                .observe(observed_time, elapsed);
        }
    }

    /// The model's `(observed_time, elapsed)` estimate for `spec` under an explicit
    /// confidence gate, or `None` when no tuple chain clears it.
    ///
    /// The gate is checked most specific tuple first: the exact spec, the binned
    /// `(base, sensitivity)` pair, and finally a count-weighted blend of the two
    /// 1-tuples (both must pass). Gates order by strength: whenever a *stricter*
    /// gate (higher `min_samples`, lower `max_rel_std`) returns `Some`, every looser
    /// gate returns `Some` too — the monotonicity property the proptest battery pins.
    pub fn prediction_with_gate(
        &self,
        spec: &ExecutionSpec,
        min_samples: u64,
        max_rel_std: f64,
    ) -> Option<(f64, f64)> {
        let keys = self.tuple_keys(spec);
        for key in &keys[..2] {
            if let Some(stats) = self.model.get(key) {
                if stats.passes(min_samples, max_rel_std) {
                    return Some((stats.mean, stats.elapsed_mean));
                }
            }
        }
        let base = self.model.get(&keys[2]).copied().unwrap_or_default();
        let sens = self.model.get(&keys[3]).copied().unwrap_or_default();
        if base.passes(min_samples, max_rel_std) && sens.passes(min_samples, max_rel_std) {
            let total = (base.count + sens.count) as f64;
            let wb = base.count as f64 / total;
            let ws = sens.count as f64 / total;
            return Some((
                wb * base.mean + ws * sens.mean,
                wb * base.elapsed_mean + ws * sens.elapsed_mean,
            ));
        }
        None
    }

    /// The model estimate under the configured gate.
    fn predict(&self, spec: &ExecutionSpec) -> Option<(f64, f64)> {
        self.prediction_with_gate(spec, self.config.min_samples, self.config.max_rel_std)
    }

    /// The deterministic serving schedule: among confident requests, serve whenever
    /// the served count lags `fraction` of the eligible count.
    fn take_slot(eligible: &mut u64, served: &mut u64, fraction: f64) -> bool {
        *eligible += 1;
        if (*served as f64) < fraction * (*eligible as f64) {
            *served += 1;
            true
        } else {
            false
        }
    }
}

impl ExecutionBackend for SurrogateBackend {
    fn vm(&self) -> VmType {
        self.inner.vm()
    }

    fn profile(&self) -> &InterferenceProfile {
        self.inner.profile()
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn clock(&self) -> SimTime {
        self.inner.clock()
    }

    fn set_clock(&mut self, t: SimTime) {
        self.inner.set_clock(t);
    }

    fn cost(&self) -> &CostTracker {
        self.inner.cost()
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        // Games depend on the full player set and the clock: always live, never
        // trained on (their observed times carry co-location slowdowns).
        self.inner.play_game(specs, rules)
    }

    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        // Always live, like play_game; delegate the batch so the inner fast path applies.
        self.inner.play_games_batch(games, rules)
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        if !self.config.is_active() {
            return self.inner.run_single(spec);
        }
        if let Some((observed_time, elapsed)) = self.predict(&spec) {
            if Self::take_slot(
                &mut self.solo_eligible,
                &mut self.solo_served,
                self.config.fraction,
            ) {
                self.stats.model_solo.fetch_add(1, Ordering::Relaxed);
                surrogate_counters().0.increment();
                // Model-served: no inner call, no cost, no clock advance.
                return ObservedRun {
                    observed_time,
                    started_at: self.inner.clock(),
                    elapsed,
                };
            }
        }
        let run = self.inner.run_single(spec);
        self.stats.real_solo.fetch_add(1, Ordering::Relaxed);
        surrogate_counters().2.increment();
        self.train(&spec, run.observed_time, run.elapsed);
        run
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        if !self.config.is_active() {
            return self.inner.observe_single_at(spec, start, salt);
        }
        if let Some((observed_time, _)) = self.predict(&spec) {
            if Self::take_slot(
                &mut self.obs_eligible,
                &mut self.obs_served,
                self.config.fraction,
            ) {
                self.stats
                    .model_observations
                    .fetch_add(1, Ordering::Relaxed);
                surrogate_counters().1.increment();
                return observed_time;
            }
        }
        self.inner.observe_single_at(spec, start, salt)
    }

    fn commit(&mut self, play: &GamePlay) {
        self.inner.commit(play);
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        self.inner.commit_parallel(plays);
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        // A fork is a different noise realisation: fresh model, shared counters.
        Box::new(SurrogateBackend::with_stats(
            self.inner.fork(seed),
            self.config,
            self.stats.clone(),
        ))
    }

    fn failure(&self) -> Option<String> {
        self.inner.failure()
    }
}

/// A [`BackendProvider`](crate::BackendProvider) that wraps every backend of an inner
/// provider in a [`SurrogateBackend`] — or hands the inner backend through untouched
/// when the configuration is inactive, so a `fraction` of `0` has zero overhead.
pub struct SurrogateProvider {
    inner: Box<dyn crate::BackendProvider>,
    config: SurrogateConfig,
    stats: SurrogateStats,
}

impl SurrogateProvider {
    /// Wraps `inner` under `config` (validated), with a fresh stats handle.
    pub fn new(inner: Box<dyn crate::BackendProvider>, config: SurrogateConfig) -> Self {
        config.validate();
        Self {
            inner,
            config,
            stats: SurrogateStats::new(),
        }
    }

    /// The shared serving counters, summed over every backend this provider created.
    pub fn stats(&self) -> &SurrogateStats {
        &self.stats
    }
}

impl crate::BackendProvider for SurrogateProvider {
    fn backend(
        &self,
        stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend> {
        let inner = self.inner.backend(stream, vm, profile, seed);
        if self.config.is_active() {
            Box::new(SurrogateBackend::with_stats(
                inner,
                self.config,
                self.stats.clone(),
            ))
        } else {
            inner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{sim_ops, SimBackend};

    fn sim(seed: u64) -> Box<dyn ExecutionBackend> {
        Box::new(SimBackend::new(
            VmType::M5_8xlarge,
            InterferenceProfile::typical(),
            seed,
        ))
    }

    /// Drives a backend through every trait operation and fingerprints the bits.
    fn drive(exec: &mut dyn ExecutionBackend) -> Vec<u64> {
        let mut bits = Vec::new();
        let specs = [
            ExecutionSpec::new(120.0, 0.7),
            ExecutionSpec::new(300.0, 0.2),
        ];
        let play = exec.play_game(&specs, &GameRules::default());
        exec.commit(&play);
        bits.extend(play.observed_times.iter().map(|t| t.to_bits()));
        for _ in 0..3 {
            let run = exec.run_single(specs[0]);
            bits.push(run.observed_time.to_bits());
            bits.push(run.elapsed.to_bits());
            bits.push(run.started_at.as_seconds().to_bits());
        }
        bits.extend(
            exec.observe_repeated(specs[1], 3, 900.0)
                .iter()
                .map(|t| t.to_bits()),
        );
        let mut fork = exec.fork(7);
        bits.push(fork.run_single(specs[0]).observed_time.to_bits());
        bits.push(exec.cost().core_hours().to_bits());
        bits.push(exec.clock().as_seconds().to_bits());
        bits
    }

    #[test]
    fn fraction_zero_is_bit_identical_pass_through() {
        let mut bare = sim(42);
        let mut wrapped = SurrogateBackend::new(sim(42), SurrogateConfig::passthrough());
        assert_eq!(drive(bare.as_mut()), drive(&mut wrapped));
        assert_eq!(wrapped.stats().model_served(), 0);
    }

    #[test]
    fn confident_repeats_are_served_without_cost_clock_or_sim_ops() {
        let mut exec = SurrogateBackend::new(sim(1), SurrogateConfig::default());
        let spec = ExecutionSpec::new(100.0, 0.8);
        // Two real runs clear the exact tuple's min_samples=2 gate.
        let first = exec.run_single(spec);
        let second = exec.run_single(spec);
        assert_eq!(exec.stats().real_solo(), 2);

        let ops = sim_ops();
        let cost = exec.cost().core_hours();
        let clock = exec.clock();
        let served = exec.run_single(spec);
        assert_eq!(exec.stats().model_solo(), 1);
        assert_eq!(sim_ops(), ops, "model answers run no simulation");
        assert_eq!(
            exec.cost().core_hours(),
            cost,
            "model answers are cost-free"
        );
        assert_eq!(
            exec.clock(),
            clock,
            "model answers do not advance the clock"
        );
        let mean = (first.observed_time + second.observed_time) / 2.0;
        assert!((served.observed_time - mean).abs() < 1e-9 * mean.abs());
    }

    #[test]
    fn observations_are_served_from_the_model_once_confident() {
        let mut exec = SurrogateBackend::new(sim(2), SurrogateConfig::default());
        let spec = ExecutionSpec::new(150.0, 0.5);
        let _ = exec.run_single(spec);
        let _ = exec.run_single(spec);
        let ops = sim_ops();
        let times = exec.observe_repeated(spec, 4, 600.0);
        assert_eq!(exec.stats().model_observations(), 4);
        assert_eq!(sim_ops(), ops, "served observations skip the simulator");
        assert!(times.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    }

    #[test]
    fn unconfident_specs_fall_through_to_the_inner_backend() {
        let mut exec = SurrogateBackend::new(sim(3), SurrogateConfig::default());
        let a = ExecutionSpec::new(100.0, 0.8);
        let b = ExecutionSpec::new(3_000.0, 0.05);
        let _ = exec.run_single(a);
        let _ = exec.run_single(a);
        // `b` lives in distant bins: no tuple of it has any samples yet.
        let ops = sim_ops();
        let _ = exec.run_single(b);
        assert_eq!(sim_ops(), ops + 1, "unknown specs run for real");
        assert_eq!(exec.stats().model_solo(), 0);
    }

    #[test]
    fn fraction_schedules_serving_deterministically() {
        let config = SurrogateConfig {
            fraction: 0.5,
            ..SurrogateConfig::default()
        };
        let mut exec = SurrogateBackend::new(sim(4), config);
        let spec = ExecutionSpec::new(80.0, 0.3);
        let _ = exec.run_single(spec);
        let _ = exec.run_single(spec);
        for _ in 0..10 {
            let _ = exec.run_single(spec);
        }
        // Half of the 10 confident requests are served, the rest run (and train).
        assert_eq!(exec.stats().model_solo(), 5);
        assert_eq!(exec.stats().real_solo(), 2 + 5);
    }

    #[test]
    fn stricter_gates_only_remove_predictions() {
        let mut exec = SurrogateBackend::new(
            sim(5),
            SurrogateConfig {
                // Keep everything real so training continues while we probe gates.
                min_samples: u64::MAX,
                ..SurrogateConfig::default()
            },
        );
        let spec = ExecutionSpec::new(200.0, 0.6);
        for _ in 0..6 {
            let _ = exec.run_single(spec);
        }
        for min in [1u64, 2, 4, 6, 7] {
            for rel in [0.01, 0.5, 2.0] {
                let strict = exec.prediction_with_gate(&spec, min + 1, rel / 2.0);
                let loose = exec.prediction_with_gate(&spec, min, rel);
                assert!(
                    strict.is_none() || loose.is_some(),
                    "gate ({min}, {rel}) lost a prediction its stricter form kept"
                );
            }
        }
        assert!(exec.prediction_with_gate(&spec, 7, 10.0).is_none());
        assert!(exec.prediction_with_gate(&spec, 1, 10.0).is_some());
    }

    #[test]
    fn forks_get_fresh_models_but_share_stats() {
        let mut exec = SurrogateBackend::new(sim(6), SurrogateConfig::default());
        let spec = ExecutionSpec::new(100.0, 0.8);
        let _ = exec.run_single(spec);
        let _ = exec.run_single(spec);
        let _ = exec.run_single(spec); // served
        let mut fork = exec.fork(99);
        let ops = sim_ops();
        let _ = fork.run_single(spec);
        assert_eq!(sim_ops(), ops + 1, "the fork's model starts empty");
        assert_eq!(exec.stats().model_solo(), 1);
        assert_eq!(
            exec.stats().real_solo(),
            3,
            "fork counts flow into the shared handle"
        );
    }

    #[test]
    fn failure_sentinels_never_train_the_model() {
        let mut exec = SurrogateBackend::new(sim(7), SurrogateConfig::default());
        let spec = ExecutionSpec::new(100.0, 0.8);
        exec.train(&spec.clone(), f64::INFINITY, 1.0);
        exec.train(&spec.clone(), f64::NAN, 1.0);
        assert!(exec.prediction_with_gate(&spec, 1, f64::INFINITY).is_none());
    }

    #[test]
    #[should_panic(expected = "surrogate fraction")]
    fn invalid_fractions_are_rejected() {
        SurrogateConfig {
            fraction: 1.5,
            ..SurrogateConfig::default()
        }
        .validate();
    }
}
