//! Observability decorator: a transparent backend wrapper emitting a typed
//! [`ObsEvent`] for every operation that crosses the seam.
//!
//! [`ObsBackend`] is the tracing sibling of [`TapBackend`](crate::TapBackend): it
//! forwards every call verbatim — clock, cost, noise, forks, failure latching — and
//! emits `game` / `solo` / `probe` events through the global `dg-obs` bus as a side
//! channel. When observability is inactive (the default) each operation pays one
//! relaxed atomic load and constructs nothing, and either way the wrapped backend is
//! bit-identical to the bare one in every output — the differential battery in
//! `tests/obs_backend.rs` pins that over every backend stack in the crate.

use crate::backend::{BackendProvider, ExecutionBackend, GameBatchItem, GamePlay, GameRules};
use dg_cloudsim::{CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType};
use dg_obs::{emit_with, obs_active, ObsEvent};

/// An [`ExecutionBackend`] decorator that reports every game, solo evaluation, and
/// probe to the global `dg-obs` event bus while forwarding all behaviour unchanged.
pub struct ObsBackend {
    inner: Box<dyn ExecutionBackend>,
}

impl ObsBackend {
    /// Instruments `inner`. The wrapper has no state of its own — events flow to
    /// whatever sinks are installed process-wide when they occur.
    pub fn new(inner: Box<dyn ExecutionBackend>) -> Self {
        Self { inner }
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> Box<dyn ExecutionBackend> {
        self.inner
    }

    fn emit_game(play: &GamePlay) {
        emit_with(|| ObsEvent::Game {
            players: play.players(),
            start: play.start.as_seconds(),
            elapsed: play.elapsed,
            early_terminated: play.early_terminated,
        });
    }
}

impl std::fmt::Debug for ObsBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsBackend")
            .field("active", &obs_active())
            .finish()
    }
}

impl ExecutionBackend for ObsBackend {
    fn vm(&self) -> VmType {
        self.inner.vm()
    }

    fn profile(&self) -> &InterferenceProfile {
        self.inner.profile()
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn clock(&self) -> SimTime {
        self.inner.clock()
    }

    fn set_clock(&mut self, t: SimTime) {
        self.inner.set_clock(t);
    }

    fn cost(&self) -> &CostTracker {
        self.inner.cost()
    }

    fn players_per_game(&self) -> usize {
        self.inner.players_per_game()
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        let play = self.inner.play_game(specs, rules);
        Self::emit_game(&play);
        play
    }

    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        // Delegate the whole batch (so the inner backend's fast path applies), then
        // emit in batch order — the same event sequence as the per-game loop.
        let plays = self.inner.play_games_batch(games, rules);
        if obs_active() {
            for play in &plays {
                Self::emit_game(play);
            }
        }
        plays
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        let run = self.inner.run_single(spec);
        emit_with(|| ObsEvent::Solo {
            start: run.started_at.as_seconds(),
            observed_time: run.observed_time,
        });
        run
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        let observed = self.inner.observe_single_at(spec, start, salt);
        emit_with(|| ObsEvent::Probe {
            start: start.as_seconds(),
            observed_time: observed,
        });
        observed
    }

    fn commit(&mut self, play: &GamePlay) {
        self.inner.commit(play);
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        self.inner.commit_parallel(plays);
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        // Forked sub-environments stay instrumented; the bus is global, so no state
        // travels with the fork.
        Box::new(ObsBackend::new(self.inner.fork(seed)))
    }

    fn failure(&self) -> Option<String> {
        self.inner.failure()
    }
}

/// A [`BackendProvider`] wrapping every backend it creates in an [`ObsBackend`].
pub struct ObsProvider {
    inner: Box<dyn BackendProvider>,
}

impl ObsProvider {
    /// Instruments every backend `inner` creates.
    pub fn new(inner: Box<dyn BackendProvider>) -> Self {
        Self { inner }
    }
}

impl BackendProvider for ObsProvider {
    fn backend(
        &self,
        stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend> {
        Box::new(ObsBackend::new(
            self.inner.backend(stream, vm, profile, seed),
        ))
    }
}
