//! Observation tap: a transparent decorator that logs every observed execution time
//! crossing the backend seam.
//!
//! Online serving loops ([`dg-serve`]'s drift monitor in particular) need to watch the
//! times a deployment produces *without* owning the backend or changing its numbers.
//! [`TapBackend`] wraps any [`ExecutionBackend`], forwards every call verbatim, and
//! appends each observed time to a shared [`ObservationTap`] the caller holds on to.
//! Because the tap never perturbs delegation — no clock movement, no extra charges, no
//! reordering — a tapped backend is bit-identical to the bare one in every output.
//!
//! [`dg-serve`]: https://docs.rs/dg-serve

use crate::backend::{BackendProvider, ExecutionBackend, GameBatchItem, GamePlay, GameRules};
use dg_cloudsim::{CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType};
use std::sync::{Arc, Mutex};

/// Which backend operation produced a tapped observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapSource {
    /// A player's observed time from a co-located game ([`ExecutionBackend::play_game`]).
    Game,
    /// A committed solo evaluation ([`ExecutionBackend::run_single`]).
    Single,
    /// A cost-free probe ([`ExecutionBackend::observe_single_at`]).
    Probe,
}

/// One observed execution time that crossed the backend seam.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapEvent {
    /// The operation that produced the observation.
    pub source: TapSource,
    /// Simulated start time of the operation, in seconds.
    pub start: f64,
    /// The observed execution time, in seconds.
    pub observed_time: f64,
}

/// A shared, thread-safe sink of [`TapEvent`]s.
///
/// Clones share the same underlying buffer, so the caller keeps one clone and gives
/// another to [`TapBackend`]; forked sub-backends keep feeding the same tap.
#[derive(Debug, Clone, Default)]
pub struct ObservationTap {
    events: Arc<Mutex<Vec<TapEvent>>>,
}

impl ObservationTap {
    /// Creates an empty tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns every event recorded since the last drain, oldest first.
    pub fn drain(&self) -> Vec<TapEvent> {
        std::mem::take(&mut *self.events.lock().expect("tap lock"))
    }

    /// Number of undrained events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("tap lock").len()
    }

    /// True when no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record(&self, source: TapSource, start: SimTime, observed_time: f64) {
        self.events.lock().expect("tap lock").push(TapEvent {
            source,
            start: start.as_seconds(),
            observed_time,
        });
    }
}

/// An [`ExecutionBackend`] decorator that reports every observed time to an
/// [`ObservationTap`] while forwarding all behaviour — clock, cost, noise, forks —
/// unchanged to the inner backend.
pub struct TapBackend {
    inner: Box<dyn ExecutionBackend>,
    tap: ObservationTap,
}

impl TapBackend {
    /// Taps `inner`, reporting observations to (a clone of) `tap`.
    pub fn new(inner: Box<dyn ExecutionBackend>, tap: ObservationTap) -> Self {
        Self { inner, tap }
    }

    /// The tap this backend reports to.
    pub fn tap(&self) -> &ObservationTap {
        &self.tap
    }
}

impl std::fmt::Debug for TapBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapBackend")
            .field("undrained", &self.tap.len())
            .finish()
    }
}

impl ExecutionBackend for TapBackend {
    fn vm(&self) -> VmType {
        self.inner.vm()
    }

    fn profile(&self) -> &InterferenceProfile {
        self.inner.profile()
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn clock(&self) -> SimTime {
        self.inner.clock()
    }

    fn set_clock(&mut self, t: SimTime) {
        self.inner.set_clock(t);
    }

    fn cost(&self) -> &CostTracker {
        self.inner.cost()
    }

    fn players_per_game(&self) -> usize {
        self.inner.players_per_game()
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        let play = self.inner.play_game(specs, rules);
        for time in &play.observed_times {
            self.tap.record(TapSource::Game, play.start, *time);
        }
        play
    }

    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        // Delegate the whole batch (so the inner backend's fast path applies), then tap
        // each play in batch order — the same event sequence as the per-game loop.
        let plays = self.inner.play_games_batch(games, rules);
        for play in &plays {
            for time in &play.observed_times {
                self.tap.record(TapSource::Game, play.start, *time);
            }
        }
        plays
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        let run = self.inner.run_single(spec);
        self.tap
            .record(TapSource::Single, run.started_at, run.observed_time);
        run
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        let observed = self.inner.observe_single_at(spec, start, salt);
        self.tap.record(TapSource::Probe, start, observed);
        observed
    }

    fn commit(&mut self, play: &GamePlay) {
        self.inner.commit(play);
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        self.inner.commit_parallel(plays);
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        // Forked sub-environments keep feeding the same tap, so a serving loop that
        // hands regions to a mini-tournament still sees every observation.
        Box::new(TapBackend::new(self.inner.fork(seed), self.tap.clone()))
    }

    fn failure(&self) -> Option<String> {
        self.inner.failure()
    }
}

/// A [`BackendProvider`] whose backends all report to one shared tap.
pub struct TapProvider {
    inner: Box<dyn BackendProvider>,
    tap: ObservationTap,
}

impl TapProvider {
    /// Taps every backend `inner` creates.
    pub fn new(inner: Box<dyn BackendProvider>, tap: ObservationTap) -> Self {
        Self { inner, tap }
    }

    /// The shared tap.
    pub fn tap(&self) -> &ObservationTap {
        &self.tap
    }
}

impl BackendProvider for TapProvider {
    fn backend(
        &self,
        stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend> {
        Box::new(TapBackend::new(
            self.inner.backend(stream, vm, profile, seed),
            self.tap.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimBackend;

    const VM: VmType = VmType::M5_8xlarge;

    fn tapped(seed: u64) -> (TapBackend, ObservationTap) {
        let tap = ObservationTap::new();
        let inner = Box::new(SimBackend::new(VM, InterferenceProfile::typical(), seed));
        (TapBackend::new(inner, tap.clone()), tap)
    }

    #[test]
    fn tapped_backend_is_bit_identical_to_bare() {
        let mut bare = SimBackend::new(VM, InterferenceProfile::typical(), 3);
        let (mut tapped, _tap) = tapped(3);
        let specs = [
            ExecutionSpec::new(100.0, 0.3),
            ExecutionSpec::new(150.0, 0.8),
        ];
        let a = ExecutionBackend::play_game(&mut bare, &specs, &GameRules::default());
        let b = tapped.play_game(&specs, &GameRules::default());
        assert_eq!(a, b);
        bare.commit(&a);
        tapped.commit(&b);
        let ra = ExecutionBackend::run_single(&mut bare, specs[0]);
        let rb = tapped.run_single(specs[0]);
        assert_eq!(ra.observed_time.to_bits(), rb.observed_time.to_bits());
    }

    #[test]
    fn every_observed_time_is_tapped_in_order() {
        let (mut backend, tap) = tapped(4);
        let specs = [
            ExecutionSpec::new(100.0, 0.3),
            ExecutionSpec::new(150.0, 0.8),
        ];
        let play = backend.play_game(&specs, &GameRules::default());
        let run = backend.run_single(specs[0]);
        let probe = backend.observe_single_at(specs[1], SimTime::from_seconds(500.0), 7);
        let events = tap.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].source, TapSource::Game);
        assert_eq!(
            events[0].observed_time.to_bits(),
            play.observed_times[0].to_bits()
        );
        assert_eq!(
            events[1].observed_time.to_bits(),
            play.observed_times[1].to_bits()
        );
        assert_eq!(events[2].source, TapSource::Single);
        assert_eq!(
            events[2].observed_time.to_bits(),
            run.observed_time.to_bits()
        );
        assert_eq!(events[3].source, TapSource::Probe);
        assert_eq!(events[3].start, 500.0);
        assert_eq!(events[3].observed_time.to_bits(), probe.to_bits());
        assert!(tap.is_empty(), "drain empties the tap");
    }

    #[test]
    fn forks_share_the_parent_tap() {
        let (mut backend, tap) = tapped(5);
        let mut fork = backend.fork(99);
        fork.run_single(ExecutionSpec::new(80.0, 0.2));
        assert_eq!(tap.len(), 1, "fork observations land in the shared tap");
    }
}
