//! Record/replay execution backends and the canonical execution-trace format.
//!
//! Recording wraps any [`BackendProvider`] and writes every non-deterministic outcome
//! the inner backends produce — games, solo evaluations, observations, forks — into an
//! [`ExecutionTrace`], keyed by execution stream. Replaying turns the trace back into
//! backends that answer every request from the recorded events, with **zero**
//! resimulation: a recorded campaign replays byte-identical to the live run (the cost
//! arithmetic is re-applied to the recorded elapsed times through the exact code path
//! the simulator uses), at a tiny fraction of the cost.
//!
//! Traces serialize to canonical JSON (fixed key order, no whitespace, shortest
//! round-trip floats — see [`crate::json`]), so a trace file is a stable, diffable
//! artifact. Non-finite floats, which JSON cannot express as numbers, are encoded as
//! the strings `"inf"`, `"-inf"`, and `"nan"`.
//!
//! # Trace schema
//!
//! ```json
//! {"campaign": "fig15-vm-sweep",
//!  "fingerprint": 1234567890123456789,
//!  "streams": [
//!    {"key": "cell-0", "vm": "m5.8xlarge", "profile": "typical", "seed": 42,
//!     "events": [
//!       {"op":"game","specs":[[230.5,0.8],[400.0,0.2]],"rules":[true,0.1,0.25],
//!        "start":0,"elapsed":245.25,"times":[244.1,410.9],"scores":[1,0.59],
//!        "early":false},
//!       {"op":"single","spec":[230.5,0.8],"time":244.1,"start":245.25,"elapsed":245.5},
//!       {"op":"observe","spec":[230.5,0.8],"at":1800,"salt":3,"time":244.9},
//!       {"op":"fork","seed":777}
//!     ]}
//!  ]}
//! ```
//!
//! Replay is strict: each stream's events must be consumed in order by the same
//! operations with the same arguments, and the trace's spec fingerprint must match the
//! campaign it is replayed against (typed [`TraceError`]s for the campaign-level
//! checks, descriptive panics for mid-stream divergence, which can only be reached by
//! driving a backend differently than it was recorded).

use crate::backend::{BackendProvider, ExecutionBackend, GameBatchItem, GamePlay, GameRules};
use crate::json::{self, push_f64, push_key, push_str_literal, JsonValue};
use dg_cloudsim::{CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// A short, human-readable label for an interference profile, used in trace stream
/// headers, campaign cell results, group keys, and JSON output.
///
/// The label is injective over the profile's parameters (distinct `Constant`/`Custom`
/// profiles get distinct labels), because it doubles as part of report group keys and
/// trace-header validation.
pub fn profile_label(profile: &InterferenceProfile) -> String {
    match profile {
        InterferenceProfile::Dedicated => "dedicated".to_string(),
        InterferenceProfile::Constant(level) => format!("constant({level})"),
        InterferenceProfile::Typical => "typical".to_string(),
        InterferenceProfile::Heavy => "heavy".to_string(),
        InterferenceProfile::Custom {
            base,
            value_amplitude,
            regime_scale,
            burst_magnitude,
        } => format!("custom({base},{value_amplitude},{regime_scale},{burst_magnitude})"),
    }
}

/// One recorded backend operation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A co-located game ([`ExecutionBackend::play_game`]).
    Game {
        /// The specs that played, in player order.
        specs: Vec<ExecutionSpec>,
        /// The rules the game was driven under.
        rules: GameRules,
        /// The recorded result.
        play: GamePlay,
    },
    /// A committed solo evaluation ([`ExecutionBackend::run_single`]).
    Single {
        /// The evaluated spec.
        spec: ExecutionSpec,
        /// The recorded observation (including the charged `elapsed`).
        run: ObservedRun,
    },
    /// A cost-free observation ([`ExecutionBackend::observe_single_at`]).
    Observe {
        /// The observed spec.
        spec: ExecutionSpec,
        /// The requested start time.
        start: SimTime,
        /// The requested decorrelation salt.
        salt: u64,
        /// The recorded observation.
        time: f64,
    },
    /// A sub-environment fork ([`ExecutionBackend::fork`]); the child's events live in
    /// their own stream keyed `<parent>/<ordinal>`.
    Fork {
        /// The seed the child was forked with.
        seed: u64,
    },
}

impl TraceEvent {
    fn op(&self) -> &'static str {
        match self {
            TraceEvent::Game { .. } => "game",
            TraceEvent::Single { .. } => "single",
            TraceEvent::Observe { .. } => "observe",
            TraceEvent::Fork { .. } => "fork",
        }
    }
}

/// The recorded event sequence of one execution stream (a campaign cell, a standalone
/// backend, or a forked sub-environment).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStream {
    /// Stream key: the provider-supplied label for root streams, `<parent>/<ordinal>`
    /// for forked sub-environments.
    pub key: String,
    /// Name of the VM type the stream executed on (header validation at replay).
    pub vm: String,
    /// Label of the interference profile (header validation at replay).
    pub profile: String,
    /// Root seed of the stream's backend.
    pub seed: u64,
    /// The permanent failure the stream's backend reported at the end of recording
    /// ([`ExecutionBackend::failure`]), if any. Replayed backends report it back, so
    /// failed real-process cells replay exactly as they ran.
    pub failure: Option<String>,
    /// The recorded operations, in execution order.
    pub events: Vec<TraceEvent>,
}

/// A full recorded execution: every stream of one campaign (or standalone run),
/// plus the identity of the spec it was recorded from.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// Name of the campaign (or driver) the trace was recorded from.
    pub campaign: String,
    /// Fingerprint of the campaign spec (see `CampaignSpec::fingerprint`); replay
    /// refuses traces whose fingerprint disagrees with the target spec.
    pub fingerprint: u64,
    streams: Vec<TraceStream>,
}

impl ExecutionTrace {
    /// The recorded streams, always sorted by key (replay relies on the order for
    /// binary-search lookups).
    pub fn streams(&self) -> &[TraceStream] {
        &self.streams
    }

    /// Looks up a stream by key.
    pub fn stream(&self, key: &str) -> Option<&TraceStream> {
        self.stream_index(key).map(|i| &self.streams[i])
    }

    fn stream_index(&self, key: &str) -> Option<usize> {
        self.streams
            .binary_search_by(|s| s.key.as_str().cmp(key))
            .ok()
    }

    /// Total number of recorded events across all streams.
    pub fn events_total(&self) -> usize {
        self.streams.iter().map(|s| s.events.len()).sum()
    }

    /// Canonical JSON serialization: fixed key order, no whitespace, shortest
    /// round-trip float rendering. Byte-identical for identical traces.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.events_total() * 128);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "campaign");
        push_str_literal(&mut out, &self.campaign);
        push_key(&mut out, &mut first, "fingerprint");
        let _ = write!(out, "{}", self.fingerprint);
        push_key(&mut out, &mut first, "streams");
        out.push('[');
        for (i, stream) in self.streams.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            stream.to_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses a trace from its canonical JSON form.
    pub fn from_json(text: &str) -> Result<Self, TraceError> {
        let root = json::parse(text).map_err(TraceError::Parse)?;
        let campaign = get_str(&root, "campaign")?;
        let fingerprint = get_u64(&root, "fingerprint")?;
        let mut streams = Vec::new();
        for value in get_array(&root, "streams")? {
            streams.push(TraceStream::from_value(value)?);
        }
        // Canonicalize: streams are key-sorted (the writer always emits them sorted;
        // sorting here keeps hand-edited documents working and lookups O(log n)).
        streams.sort_by(|a, b| a.key.cmp(&b.key));
        if streams.windows(2).any(|w| w[0].key == w[1].key) {
            return Err(TraceError::Parse("duplicate stream keys".into()));
        }
        Ok(Self {
            campaign,
            fingerprint,
            streams,
        })
    }
}

impl TraceStream {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        push_key(out, &mut first, "key");
        push_str_literal(out, &self.key);
        push_key(out, &mut first, "vm");
        push_str_literal(out, &self.vm);
        push_key(out, &mut first, "profile");
        push_str_literal(out, &self.profile);
        push_key(out, &mut first, "seed");
        let _ = write!(out, "{}", self.seed);
        if let Some(failure) = &self.failure {
            push_key(out, &mut first, "failure");
            push_str_literal(out, failure);
        }
        push_key(out, &mut first, "events");
        out.push('[');
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event.to_json(out);
        }
        out.push_str("]}");
    }

    fn from_value(value: &JsonValue) -> Result<Self, TraceError> {
        let mut events = Vec::new();
        for event in get_array(value, "events")? {
            events.push(TraceEvent::from_value(event)?);
        }
        let failure = match value.get("failure") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| TraceError::Parse("failure is not a string".into()))?,
            ),
        };
        Ok(Self {
            key: get_str(value, "key")?,
            vm: get_str(value, "vm")?,
            profile: get_str(value, "profile")?,
            seed: get_u64(value, "seed")?,
            failure,
            events,
        })
    }
}

impl TraceEvent {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        push_key(out, &mut first, "op");
        push_str_literal(out, self.op());
        match self {
            TraceEvent::Game { specs, rules, play } => {
                push_key(out, &mut first, "specs");
                push_spec_array(out, specs);
                push_key(out, &mut first, "rules");
                let _ = write!(out, "[{}", rules.early_termination);
                out.push(',');
                push_trace_f64(out, rules.work_done_deviation);
                out.push(',');
                push_trace_f64(out, rules.min_leader_progress);
                out.push(']');
                push_key(out, &mut first, "start");
                push_trace_f64(out, play.start.as_seconds());
                push_key(out, &mut first, "elapsed");
                push_trace_f64(out, play.elapsed);
                push_key(out, &mut first, "times");
                push_f64_array(out, &play.observed_times);
                push_key(out, &mut first, "scores");
                push_f64_array(out, &play.execution_scores);
                push_key(out, &mut first, "early");
                let _ = write!(out, "{}", play.early_terminated);
            }
            TraceEvent::Single { spec, run } => {
                push_key(out, &mut first, "spec");
                push_spec(out, spec);
                push_key(out, &mut first, "time");
                push_trace_f64(out, run.observed_time);
                push_key(out, &mut first, "start");
                push_trace_f64(out, run.started_at.as_seconds());
                push_key(out, &mut first, "elapsed");
                push_trace_f64(out, run.elapsed);
            }
            TraceEvent::Observe {
                spec,
                start,
                salt,
                time,
            } => {
                push_key(out, &mut first, "spec");
                push_spec(out, spec);
                push_key(out, &mut first, "at");
                push_trace_f64(out, start.as_seconds());
                push_key(out, &mut first, "salt");
                let _ = write!(out, "{salt}");
                push_key(out, &mut first, "time");
                push_trace_f64(out, *time);
            }
            TraceEvent::Fork { seed } => {
                push_key(out, &mut first, "seed");
                let _ = write!(out, "{seed}");
            }
        }
        out.push('}');
    }

    fn from_value(value: &JsonValue) -> Result<Self, TraceError> {
        let op = get_str(value, "op")?;
        match op.as_str() {
            "game" => {
                let specs = get_array(value, "specs")?
                    .iter()
                    .map(parse_spec)
                    .collect::<Result<Vec<_>, _>>()?;
                let rules_parts = field(value, "rules")?
                    .as_array()
                    .ok_or_else(|| TraceError::Parse("rules is not an array".into()))?;
                if rules_parts.len() != 3 {
                    return Err(TraceError::Parse("rules needs 3 entries".into()));
                }
                let rules = GameRules {
                    early_termination: rules_parts[0]
                        .as_bool()
                        .ok_or_else(|| TraceError::Parse("rules[0] is not a bool".into()))?,
                    work_done_deviation: parse_trace_f64(&rules_parts[1])?,
                    min_leader_progress: parse_trace_f64(&rules_parts[2])?,
                };
                let play = GamePlay {
                    start: parse_time(value, "start")?,
                    elapsed: get_f64(value, "elapsed")?,
                    observed_times: get_f64_array(value, "times")?,
                    execution_scores: get_f64_array(value, "scores")?,
                    early_terminated: field(value, "early")?
                        .as_bool()
                        .ok_or_else(|| TraceError::Parse("early is not a bool".into()))?,
                };
                if play.observed_times.len() != specs.len()
                    || play.execution_scores.len() != specs.len()
                {
                    return Err(TraceError::Parse(
                        "game player counts are inconsistent".into(),
                    ));
                }
                Ok(TraceEvent::Game { specs, rules, play })
            }
            "single" => Ok(TraceEvent::Single {
                spec: parse_spec(field(value, "spec")?)?,
                run: ObservedRun {
                    observed_time: get_f64(value, "time")?,
                    started_at: parse_time(value, "start")?,
                    elapsed: get_f64(value, "elapsed")?,
                },
            }),
            "observe" => Ok(TraceEvent::Observe {
                spec: parse_spec(field(value, "spec")?)?,
                start: parse_time(value, "at")?,
                salt: get_u64(value, "salt")?,
                time: get_f64(value, "time")?,
            }),
            "fork" => Ok(TraceEvent::Fork {
                seed: get_u64(value, "seed")?,
            }),
            other => Err(TraceError::Parse(format!("unknown trace op {other:?}"))),
        }
    }
}

/// Errors surfaced when parsing a trace or preparing a replay.
///
/// Mid-stream divergence (driving a replayed backend with different operations than
/// were recorded) panics with a descriptive message instead, because it indicates a
/// logic error rather than bad input.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace document is not valid canonical trace JSON.
    Parse(String),
    /// The trace was recorded from a spec with a different fingerprint than the one it
    /// is being replayed against.
    FingerprintMismatch {
        /// Fingerprint of the spec the replay was requested for.
        expected: u64,
        /// Fingerprint carried by the trace.
        found: u64,
    },
    /// The trace was recorded from a campaign with a different name.
    CampaignMismatch {
        /// Name of the campaign the replay was requested for.
        expected: String,
        /// Name carried by the trace.
        found: String,
    },
    /// The trace has no stream for an execution the replay needs.
    MissingStream {
        /// Key of the missing stream.
        stream: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse(detail) => write!(f, "trace parse error: {detail}"),
            TraceError::FingerprintMismatch { expected, found } => write!(
                f,
                "trace fingerprint {found:#018x} does not match the target spec's \
                 {expected:#018x}; the trace was recorded from a different campaign spec"
            ),
            TraceError::CampaignMismatch { expected, found } => write!(
                f,
                "trace was recorded from campaign {found:?}, not {expected:?}"
            ),
            TraceError::MissingStream { stream } => {
                write!(f, "trace has no stream {stream:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

// ---------- recording ----------

type TraceSink = Arc<Mutex<BTreeMap<String, TraceStream>>>;

/// A [`BackendProvider`] that records everything the backends of an inner provider
/// produce into an [`ExecutionTrace`].
///
/// Each stream records into its own event list, so recording is deterministic even when
/// streams execute on concurrent worker threads; serialization orders streams by key.
pub struct TraceRecorder {
    inner: Box<dyn BackendProvider>,
    campaign: String,
    fingerprint: u64,
    sink: TraceSink,
}

impl TraceRecorder {
    /// Records the backends of `inner`, stamping the trace with the recorded campaign's
    /// name and spec fingerprint.
    pub fn new(
        inner: Box<dyn BackendProvider>,
        campaign: impl Into<String>,
        fingerprint: u64,
    ) -> Self {
        Self {
            inner,
            campaign: campaign.into(),
            fingerprint,
            sink: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Finishes recording and assembles the trace (streams sorted by key).
    pub fn finish(self) -> ExecutionTrace {
        let streams = std::mem::take(&mut *self.sink.lock().expect("trace sink poisoned"));
        ExecutionTrace {
            campaign: self.campaign,
            fingerprint: self.fingerprint,
            streams: streams.into_values().collect(),
        }
    }
}

fn register_stream(
    sink: &TraceSink,
    key: &str,
    vm: VmType,
    profile: &InterferenceProfile,
    seed: u64,
) {
    let mut streams = sink.lock().expect("trace sink poisoned");
    let previous = streams.insert(
        key.to_string(),
        TraceStream {
            key: key.to_string(),
            vm: vm.name().to_string(),
            profile: profile_label(profile),
            seed,
            failure: None,
            events: Vec::new(),
        },
    );
    assert!(
        previous.is_none(),
        "execution stream {key:?} was recorded twice; stream keys must be unique"
    );
}

impl BackendProvider for TraceRecorder {
    fn backend(
        &self,
        stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend> {
        register_stream(&self.sink, stream, vm, profile, seed);
        Box::new(RecordingBackend {
            inner: self.inner.backend(stream, vm, profile, seed),
            sink: Arc::clone(&self.sink),
            key: stream.to_string(),
            events: Vec::new(),
            forks: 0,
        })
    }
}

/// An [`ExecutionBackend`] that delegates to an inner backend and records every
/// outcome. Created by [`TraceRecorder`].
///
/// Events buffer in the backend itself (each stream has exactly one owner, so no lock
/// is needed per event) and flush into the shared sink when the backend is dropped —
/// which is why [`TraceRecorder::finish`] must only be called after every backend is
/// gone (campaign executors drop each cell's backend at the end of the cell).
pub struct RecordingBackend {
    inner: Box<dyn ExecutionBackend>,
    sink: TraceSink,
    key: String,
    events: Vec<TraceEvent>,
    forks: usize,
}

impl RecordingBackend {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

impl Drop for RecordingBackend {
    fn drop(&mut self) {
        if let Ok(mut streams) = self.sink.lock() {
            // The stream is registered at construction; it is only absent when the
            // recorder was finished while this backend was still alive, in which case
            // the events have nowhere to go (never panic in a destructor).
            if let Some(stream) = streams.get_mut(&self.key) {
                stream.events = std::mem::take(&mut self.events);
                stream.failure = self.inner.failure();
            }
        }
    }
}

impl ExecutionBackend for RecordingBackend {
    fn vm(&self) -> VmType {
        self.inner.vm()
    }

    fn profile(&self) -> &InterferenceProfile {
        self.inner.profile()
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn clock(&self) -> SimTime {
        self.inner.clock()
    }

    fn set_clock(&mut self, t: SimTime) {
        self.inner.set_clock(t);
    }

    fn cost(&self) -> &CostTracker {
        self.inner.cost()
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        let play = self.inner.play_game(specs, rules);
        self.record(TraceEvent::Game {
            specs: specs.to_vec(),
            rules: *rules,
            play: play.clone(),
        });
        play
    }

    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        // Delegate the batch (inner fast path applies), then record one Game event per
        // play in batch order — the identical event stream to the per-game loop, so
        // traces recorded under either path replay interchangeably.
        let plays = self.inner.play_games_batch(games, rules);
        for (game, play) in games.iter().zip(&plays) {
            self.record(TraceEvent::Game {
                specs: game.specs.to_vec(),
                rules: *rules,
                play: play.clone(),
            });
        }
        plays
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        let run = self.inner.run_single(spec);
        self.record(TraceEvent::Single { spec, run });
        run
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        let time = self.inner.observe_single_at(spec, start, salt);
        self.record(TraceEvent::Observe {
            spec,
            start,
            salt,
            time,
        });
        time
    }

    fn commit(&mut self, play: &GamePlay) {
        self.inner.commit(play);
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        self.inner.commit_parallel(plays);
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        let child_key = format!("{}/{}", self.key, self.forks);
        self.forks += 1;
        self.record(TraceEvent::Fork { seed });
        let inner = self.inner.fork(seed);
        register_stream(&self.sink, &child_key, inner.vm(), inner.profile(), seed);
        Box::new(RecordingBackend {
            inner,
            sink: Arc::clone(&self.sink),
            key: child_key,
            events: Vec::new(),
            forks: 0,
        })
    }

    fn failure(&self) -> Option<String> {
        self.inner.failure()
    }
}

// ---------- replay ----------

/// A [`BackendProvider`] that replays a recorded [`ExecutionTrace`] with zero
/// resimulation.
///
/// Campaign-level compatibility (fingerprint, campaign name, stream coverage) should be
/// validated up front — `dg-campaign`'s `Campaign::replay` does — because provider
/// methods cannot return errors; a request for a stream the trace lacks panics.
pub struct TraceReplayer {
    trace: Arc<ExecutionTrace>,
}

impl TraceReplayer {
    /// Creates a replayer over a trace (pass an `Arc<ExecutionTrace>` to share one
    /// parsed trace across repeated replays without copying it).
    pub fn new(trace: impl Into<Arc<ExecutionTrace>>) -> Self {
        Self {
            trace: trace.into(),
        }
    }

    /// The replayed trace.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }
}

impl BackendProvider for TraceReplayer {
    fn backend(
        &self,
        stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend> {
        Box::new(ReplayBackend::open(
            Arc::clone(&self.trace),
            stream,
            vm,
            profile.clone(),
            seed,
        ))
    }
}

/// An [`ExecutionBackend`] that answers every request from a recorded stream. Created
/// by [`TraceReplayer`].
///
/// # Panics
///
/// Every trait method panics with a descriptive message when the requested operation
/// (or its arguments) diverges from what the stream recorded — replaying is only valid
/// for the exact execution that was recorded.
pub struct ReplayBackend {
    trace: Arc<ExecutionTrace>,
    stream: usize,
    cursor: usize,
    vm: VmType,
    profile: InterferenceProfile,
    seed: u64,
    clock: SimTime,
    cost: CostTracker,
    forks: usize,
}

impl ReplayBackend {
    fn open(
        trace: Arc<ExecutionTrace>,
        key: &str,
        vm: VmType,
        profile: InterferenceProfile,
        seed: u64,
    ) -> Self {
        let stream = trace.stream_index(key).unwrap_or_else(|| {
            panic!("trace has no stream {key:?}; was it recorded from the same spec?")
        });
        let header = &trace.streams[stream];
        assert_eq!(
            header.vm,
            vm.name(),
            "stream {key:?} was recorded on VM {:?}, replay requested {:?}",
            header.vm,
            vm.name()
        );
        let label = profile_label(&profile);
        assert_eq!(
            header.profile, label,
            "stream {key:?} was recorded under profile {:?}, replay requested {label:?}",
            header.profile
        );
        assert_eq!(
            header.seed, seed,
            "stream {key:?} was recorded with seed {}, replay requested {seed}",
            header.seed
        );
        Self {
            trace,
            stream,
            cursor: 0,
            vm,
            profile,
            seed,
            clock: SimTime::ZERO,
            cost: CostTracker::new(),
            forks: 0,
        }
    }

    fn key(&self) -> &str {
        &self.trace.streams[self.stream].key
    }

    /// Checks that the next recorded event is an `op`, advances the cursor, and
    /// returns the event's index (callers borrow the event itself from the trace, so
    /// replay never deep-clones event payloads it only validates against).
    fn expect_op(&mut self, op: &str) -> usize {
        let index = self.cursor;
        {
            let stream = &self.trace.streams[self.stream];
            let event = stream.events.get(index).unwrap_or_else(|| {
                panic!(
                    "replay diverged on stream {:?}: trace ended after {index} events but a \
                     {op:?} operation was requested",
                    stream.key
                )
            });
            assert_eq!(
                event.op(),
                op,
                "replay diverged on stream {:?} at event {index}: trace recorded a {:?} \
                 operation but a {op:?} operation was requested",
                stream.key,
                event.op()
            );
        }
        self.cursor = index + 1;
        index
    }

    fn assert_spec(&self, index: usize, expected: &ExecutionSpec, got: &ExecutionSpec) {
        assert!(
            expected.base_time().to_bits() == got.base_time().to_bits()
                && expected.sensitivity().to_bits() == got.sensitivity().to_bits(),
            "replay diverged on stream {:?} at event {}: recorded spec {expected:?}, \
             requested {got:?}",
            self.key(),
            index,
        );
    }
}

impl ExecutionBackend for ReplayBackend {
    fn vm(&self) -> VmType {
        self.vm
    }

    fn profile(&self) -> &InterferenceProfile {
        &self.profile
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn set_clock(&mut self, t: SimTime) {
        assert!(
            t.as_seconds() >= self.clock.as_seconds(),
            "the simulated clock cannot move backwards"
        );
        self.clock = t;
    }

    fn cost(&self) -> &CostTracker {
        &self.cost
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        let index = self.expect_op("game");
        let trace = Arc::clone(&self.trace);
        let TraceEvent::Game {
            specs: recorded,
            rules: recorded_rules,
            play,
        } = &trace.streams[self.stream].events[index]
        else {
            unreachable!("expect_op checked the op")
        };
        assert_eq!(
            recorded.len(),
            specs.len(),
            "replay diverged on stream {:?} at event {index}: player counts differ",
            self.key()
        );
        for (expected, got) in recorded.iter().zip(specs) {
            self.assert_spec(index, expected, got);
        }
        assert_eq!(
            recorded_rules,
            rules,
            "replay diverged on stream {:?} at event {index}: game rules differ",
            self.key()
        );
        play.clone()
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        let index = self.expect_op("single");
        let trace = Arc::clone(&self.trace);
        let TraceEvent::Single {
            spec: recorded,
            run,
        } = &trace.streams[self.stream].events[index]
        else {
            unreachable!("expect_op checked the op")
        };
        self.assert_spec(index, recorded, &spec);
        let run = *run;
        // Re-apply the exact accounting a live run_single performs.
        self.cost.charge_serial(self.vm, run.elapsed);
        self.clock += run.elapsed;
        run
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        let index = self.expect_op("observe");
        let trace = Arc::clone(&self.trace);
        let TraceEvent::Observe {
            spec: recorded,
            start: recorded_start,
            salt: recorded_salt,
            time,
        } = &trace.streams[self.stream].events[index]
        else {
            unreachable!("expect_op checked the op")
        };
        self.assert_spec(index, recorded, &spec);
        assert!(
            recorded_start.as_seconds().to_bits() == start.as_seconds().to_bits()
                && *recorded_salt == salt,
            "replay diverged on stream {:?} at event {index}: observation request differs",
            self.key()
        );
        *time
    }

    fn commit(&mut self, play: &GamePlay) {
        self.cost.charge_serial(self.vm, play.elapsed);
        self.clock += play.elapsed;
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        if plays.is_empty() {
            return;
        }
        let elapsed: Vec<f64> = plays.iter().map(|p| p.elapsed).collect();
        self.cost.charge_parallel(self.vm, &elapsed);
        let max_elapsed = elapsed.iter().copied().fold(0.0_f64, f64::max);
        self.clock += max_elapsed;
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        let index = self.expect_op("fork");
        let TraceEvent::Fork { seed: recorded } = self.trace.streams[self.stream].events[index]
        else {
            unreachable!("expect_op checked the op")
        };
        assert_eq!(
            recorded,
            seed,
            "replay diverged on stream {:?} at event {index}: fork seeds differ",
            self.key()
        );
        let child_key = format!("{}/{}", self.key(), self.forks);
        self.forks += 1;
        Box::new(ReplayBackend::open(
            Arc::clone(&self.trace),
            &child_key,
            self.vm,
            self.profile.clone(),
            seed,
        ))
    }

    fn failure(&self) -> Option<String> {
        self.trace.streams[self.stream].failure.clone()
    }
}

// ---------- JSON helpers ----------

/// Writes an f64 for the trace format. This is [`json::push_f64`] — the non-finite
/// string encoding (`"inf"`/`"-inf"`/`"nan"`) started here and is now the shared
/// wire discipline for every format in the workspace.
fn push_trace_f64(out: &mut String, value: f64) {
    push_f64(out, value);
}

fn parse_trace_f64(value: &JsonValue) -> Result<f64, TraceError> {
    json::parse_f64(value).map_err(TraceError::Parse)
}

fn push_spec(out: &mut String, spec: &ExecutionSpec) {
    out.push('[');
    push_trace_f64(out, spec.base_time());
    out.push(',');
    push_trace_f64(out, spec.sensitivity());
    out.push(']');
}

fn push_spec_array(out: &mut String, specs: &[ExecutionSpec]) {
    out.push('[');
    for (i, spec) in specs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_spec(out, spec);
    }
    out.push(']');
}

fn push_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_trace_f64(out, *value);
    }
    out.push(']');
}

fn parse_spec(value: &JsonValue) -> Result<ExecutionSpec, TraceError> {
    let parts = value
        .as_array()
        .ok_or_else(|| TraceError::Parse("spec is not an array".into()))?;
    if parts.len() != 2 {
        return Err(TraceError::Parse(
            "spec needs [base_time, sensitivity]".into(),
        ));
    }
    let base_time = parse_trace_f64(&parts[0])?;
    let sensitivity = parse_trace_f64(&parts[1])?;
    if !(base_time.is_finite() && base_time > 0.0 && sensitivity.is_finite() && sensitivity >= 0.0)
    {
        return Err(TraceError::Parse(format!(
            "invalid spec [{base_time}, {sensitivity}]"
        )));
    }
    Ok(ExecutionSpec::new(base_time, sensitivity))
}

fn field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue, TraceError> {
    value
        .get(key)
        .ok_or_else(|| TraceError::Parse(format!("missing field {key:?}")))
}

fn get_str(value: &JsonValue, key: &str) -> Result<String, TraceError> {
    field(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| TraceError::Parse(format!("field {key:?} is not a string")))
}

fn get_u64(value: &JsonValue, key: &str) -> Result<u64, TraceError> {
    field(value, key)?
        .number_token()
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| TraceError::Parse(format!("field {key:?} is not a u64")))
}

fn get_f64(value: &JsonValue, key: &str) -> Result<f64, TraceError> {
    parse_trace_f64(field(value, key)?)
}

fn get_array<'a>(value: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], TraceError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| TraceError::Parse(format!("field {key:?} is not an array")))
}

fn get_f64_array(value: &JsonValue, key: &str) -> Result<Vec<f64>, TraceError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| TraceError::Parse(format!("field {key:?} is not an array")))?
        .iter()
        .map(parse_trace_f64)
        .collect()
}

fn parse_time(value: &JsonValue, key: &str) -> Result<SimTime, TraceError> {
    let seconds = get_f64(value, key)?;
    if !seconds.is_finite() || seconds < 0.0 {
        return Err(TraceError::Parse(format!(
            "field {key:?} is not a valid time: {seconds}"
        )));
    }
    Ok(SimTime::from_seconds(seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{sim_ops, SimProvider};

    const VM: VmType = VmType::M5_8xlarge;

    fn drive(exec: &mut dyn ExecutionBackend) -> (Vec<f64>, f64, f64) {
        let fast = ExecutionSpec::new(100.0, 0.3);
        let slow = ExecutionSpec::new(220.0, 0.9);
        let play = exec.play_game(&[fast, slow], &GameRules::default());
        exec.commit(&play);
        let run = exec.run_single(fast);
        let observations = exec.observe_repeated(slow, 3, 900.0);
        let mut fork = exec.fork(4242);
        let fork_run = fork.run_single(slow);
        let mut times = play.observed_times.clone();
        times.push(run.observed_time);
        times.push(fork_run.observed_time);
        times.extend(observations);
        (times, exec.cost().core_hours(), exec.clock().as_seconds())
    }

    fn record_one() -> ((Vec<f64>, f64, f64), ExecutionTrace) {
        let recorder = TraceRecorder::new(Box::new(SimProvider), "unit", 0xfeed);
        let profile = InterferenceProfile::typical();
        let mut exec = recorder.backend("root", VM, &profile, 7);
        let live = drive(exec.as_mut());
        drop(exec);
        (live, recorder.finish())
    }

    #[test]
    fn record_then_replay_reproduces_everything_without_simulation() {
        let (live, trace) = record_one();
        assert_eq!(trace.campaign, "unit");
        assert_eq!(trace.streams().len(), 2, "root + one fork");
        assert!(trace.stream("root/0").is_some());

        let replayer = TraceReplayer::new(trace);
        let before = sim_ops();
        let mut exec = replayer.backend("root", VM, &InterferenceProfile::typical(), 7);
        let replayed = drive(exec.as_mut());
        assert_eq!(sim_ops(), before, "replay must not touch the simulator");
        assert_eq!(live.0, replayed.0);
        assert_eq!(live.1.to_bits(), replayed.1.to_bits(), "cost accounting");
        assert_eq!(live.2.to_bits(), replayed.2.to_bits(), "clock");
    }

    #[test]
    fn traces_round_trip_through_canonical_json() {
        let (_, trace) = record_one();
        let json = trace.to_json();
        let parsed = ExecutionTrace::from_json(&json).expect("canonical traces parse");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_json(), json, "byte-identical re-serialization");
    }

    #[test]
    fn non_finite_floats_survive_the_wire_format() {
        let mut out = String::new();
        for v in [f64::INFINITY, f64::NEG_INFINITY, 1.5, -0.0] {
            out.clear();
            push_trace_f64(&mut out, v);
            let parsed = parse_trace_f64(&json::parse(&out).unwrap()).unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits());
        }
        out.clear();
        push_trace_f64(&mut out, f64::NAN);
        assert!(parse_trace_f64(&json::parse(&out).unwrap())
            .unwrap()
            .is_nan());
    }

    #[test]
    fn malformed_traces_are_rejected_with_parse_errors() {
        for bad in [
            "{",
            "{\"campaign\":\"x\"}",
            "{\"campaign\":\"x\",\"fingerprint\":1,\"streams\":[{\"key\":\"a\"}]}",
            "{\"campaign\":\"x\",\"fingerprint\":1,\"streams\":[{\"key\":\"a\",\"vm\":\"m\",\
             \"profile\":\"p\",\"seed\":1,\"events\":[{\"op\":\"warp\"}]}]}",
        ] {
            assert!(
                matches!(ExecutionTrace::from_json(bad), Err(TraceError::Parse(_))),
                "{bad:?} must fail to parse"
            );
        }
    }

    #[test]
    #[should_panic(expected = "replay diverged")]
    fn replaying_a_different_operation_panics() {
        let (_, trace) = record_one();
        let replayer = TraceReplayer::new(trace);
        let mut exec = replayer.backend("root", VM, &InterferenceProfile::typical(), 7);
        // The trace starts with a game; requesting a solo run must fail loudly.
        let _ = exec.run_single(ExecutionSpec::new(100.0, 0.3));
    }

    #[test]
    #[should_panic(expected = "no stream")]
    fn replaying_a_missing_stream_panics() {
        let (_, trace) = record_one();
        let replayer = TraceReplayer::new(trace);
        let _ = replayer.backend("nope", VM, &InterferenceProfile::typical(), 7);
    }

    #[test]
    fn error_display_is_descriptive() {
        let err = TraceError::FingerprintMismatch {
            expected: 1,
            found: 2,
        };
        assert!(err.to_string().contains("different campaign spec"));
        let err = TraceError::MissingStream {
            stream: "cell-3".into(),
        };
        assert!(err.to_string().contains("cell-3"));
    }
}
