//! Execution backends: the seam between the tuning engine and *how* configurations run.
//!
//! Every layer of the DarwinGame reproduction — the four tournament phases in
//! `darwin-core`, the `CloudEvaluator` all baseline tuners sample through, and the
//! `dg-campaign` cell executor — asks its environment for the same handful of
//! operations: play a co-located game, evaluate one configuration solo, observe without
//! charging, charge cost, fork per-region sub-environments. This crate captures that
//! surface as the [`ExecutionBackend`] trait and ships four implementations:
//!
//! * [`SimBackend`] — wraps `dg_cloudsim::CloudEnvironment` and resimulates everything
//!   (the default; `CloudEnvironment` itself also implements the trait, so existing
//!   code keeps passing environments directly);
//! * [`ProcessBackend`] — runs actual OS processes as evaluations: command templates
//!   rendered per configuration, per-job stdout/stderr capture, `SUCCESS`/`FAIL`
//!   completion markers, timeouts, and typed [`ProcessError`]s latched into the
//!   backend's [`failure`](ExecutionBackend::failure) instead of panics;
//! * [`TraceRecorder`] / [`TraceReplayer`] — record every outcome into an
//!   [`ExecutionTrace`] (canonical JSON), then replay a whole campaign byte-identical
//!   to the live run with **zero** resimulation (and zero process launches);
//! * [`MemoBackend`] — a composable wrapper memoizing solo evaluations and
//!   observations for exhaustive/oracle/grid-heavy paths;
//! * [`SurrogateBackend`] — a composable wrapper fitting an online n-tuple model of
//!   configuration → outcome and serving confident repeat evaluations from it,
//!   cost-free, behind a tunable fraction and confidence gate.
//!
//! The [`BackendProvider`] trait is the factory side: campaign executors create one
//! backend per grid cell through a provider, which is what makes recording and
//! replaying whole campaigns a drop-in swap.
//!
//! # Quick example
//!
//! ```
//! use dg_cloudsim::{ExecutionSpec, InterferenceProfile, VmType};
//! use dg_exec::{ExecutionBackend, GameRules, SimBackend};
//!
//! let mut exec = SimBackend::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 42);
//! let fast = ExecutionSpec::new(230.0, 0.8);
//! let slow = ExecutionSpec::new(600.0, 0.2);
//! let play = exec.play_game(&[fast, slow], &GameRules::default());
//! assert!(play.observed_times[0] < play.observed_times[1]);
//! exec.commit(&play);
//! assert!(exec.cost().core_hours() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod memo;
mod obs;
mod process;
mod sim;
mod surrogate;
mod tap;
mod trace;

/// The canonical JSON writer/parser, re-exported from `dg-obs` (where it moved so
/// observability exports share the discipline). The long-standing `dg_exec::json`
/// path keeps working.
pub use dg_obs::json;

pub use backend::{BackendProvider, ExecutionBackend, GameBatchItem, GamePlay, GameRules};
pub use memo::MemoBackend;
pub use obs::{ObsBackend, ObsProvider};
pub use process::{
    process_launches, CommandTemplate, ProcessBackend, ProcessError, ProcessProvider, TimingSource,
};
pub use sim::{sim_ops, SimBackend, SimProvider};
pub use surrogate::{SurrogateBackend, SurrogateConfig, SurrogateProvider, SurrogateStats};
pub use tap::{ObservationTap, TapBackend, TapEvent, TapProvider, TapSource};
pub use trace::{
    profile_label, ExecutionTrace, RecordingBackend, ReplayBackend, TraceError, TraceEvent,
    TraceRecorder, TraceReplayer, TraceStream,
};
