//! The default backend: full resimulation through `dg_cloudsim::CloudEnvironment`.

use crate::backend::{BackendProvider, ExecutionBackend, GameBatchItem, GamePlay, GameRules};
use dg_cloudsim::{fast_path_enabled, GameTermination, MAX_RUN_MULTIPLIER};
use dg_cloudsim::{
    CloudEnvironment, CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType,
};
use dg_obs::Counter;
use std::sync::OnceLock;

/// The registry counter behind [`sim_ops`]: `exec.sim_ops` in the `dg-obs` metrics
/// registry, cached so the per-operation cost stays one atomic add plus a
/// thread-local add.
fn sim_ops_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| dg_obs::metrics::counter("exec.sim_ops"))
}

/// Number of simulator operations (games, solo runs, observations) performed so far
/// **on the current thread** by [`SimBackend`] / `CloudEnvironment` backends.
///
/// Replay backends never touch the simulator, so replaying on this thread (e.g. a
/// single-worker campaign replay, which runs on the caller's thread) leaves the
/// counter unchanged — the property the record/replay tests pin. The reading is
/// per-thread so concurrent tests (or campaign workers) cannot perturb each other;
/// the process-wide total is the `exec.sim_ops` counter in a
/// [`MetricsSnapshot`](dg_obs::MetricsSnapshot).
pub fn sim_ops() -> u64 {
    sim_ops_counter().thread_value()
}

fn count_sim_op() {
    sim_ops_counter().increment();
}

/// Plays one game on a concrete [`CloudEnvironment`], stepping the co-located run and
/// applying the early-termination rules. This is the single simulation loop behind both
/// the `CloudEnvironment` trait impl and [`SimBackend`].
fn play_on(env: &mut CloudEnvironment, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
    assert!(!specs.is_empty(), "a game needs at least one player");
    count_sim_op();
    if fast_path_enabled() {
        // The fused struct-of-arrays engine in dg-cloudsim: bit-identical to the
        // stepping loop below (proven by the differential batteries on both sides of
        // the crate seam), just faster.
        let play = env.play_game_fast(
            specs,
            &GameTermination {
                early_termination: rules.early_termination,
                work_done_deviation: rules.work_done_deviation,
                min_leader_progress: rules.min_leader_progress,
            },
        );
        return GamePlay {
            start: play.start,
            elapsed: play.elapsed,
            observed_times: play.observed_times,
            execution_scores: play.execution_scores,
            early_terminated: play.early_terminated,
        };
    }
    let mut run = env.start_colocated(specs);
    let step = run.default_step();
    // Safety cap: no game can run longer than a generous multiple of the slowest spec.
    let max_seconds = specs
        .iter()
        .map(ExecutionSpec::base_time)
        .fold(0.0_f64, f64::max)
        * MAX_RUN_MULTIPLIER;

    let mut early_terminated = false;
    while !run.any_finished() && run.elapsed() < max_seconds {
        run.step(step);
        if rules.early_termination && specs.len() > 1 {
            let fractions = run.work_fractions();
            let leader = run.leader();
            let leader_work = fractions[leader];
            if leader_work >= rules.min_leader_progress {
                let runner_up = fractions
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != leader)
                    .map(|(_, w)| *w)
                    .fold(0.0_f64, f64::max);
                let gap = if leader_work > 0.0 {
                    (leader_work - runner_up) / leader_work
                } else {
                    0.0
                };
                if gap >= rules.work_done_deviation {
                    early_terminated = true;
                    break;
                }
            }
        }
    }

    let outcome = run.into_outcome();
    GamePlay {
        start: outcome.start_time(),
        elapsed: outcome.elapsed(),
        observed_times: outcome.observed_times().to_vec(),
        execution_scores: outcome.execution_scores(),
        early_terminated,
    }
}

/// The cloud simulator is itself an execution backend; [`SimBackend`] is a thin
/// wrapper around exactly this implementation.
impl ExecutionBackend for CloudEnvironment {
    fn vm(&self) -> VmType {
        CloudEnvironment::vm(self)
    }

    fn profile(&self) -> &InterferenceProfile {
        CloudEnvironment::profile(self)
    }

    fn seed(&self) -> u64 {
        CloudEnvironment::seed(self)
    }

    fn clock(&self) -> SimTime {
        CloudEnvironment::clock(self)
    }

    fn set_clock(&mut self, t: SimTime) {
        CloudEnvironment::set_clock(self, t);
    }

    fn cost(&self) -> &CostTracker {
        CloudEnvironment::cost(self)
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        play_on(self, specs, rules)
    }

    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        games
            .iter()
            .map(|game| play_on(self, game.specs, rules))
            .collect()
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        count_sim_op();
        CloudEnvironment::run_single(self, spec)
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        count_sim_op();
        CloudEnvironment::observe_single_at(self, spec, start, salt)
    }

    fn commit(&mut self, play: &GamePlay) {
        self.commit_parts(play.players(), play.start, play.elapsed);
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        let parts: Vec<(usize, SimTime, f64)> = plays
            .iter()
            .map(|p| (p.players(), p.start, p.elapsed))
            .collect();
        self.commit_parallel_parts(&parts);
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        Box::new(CloudEnvironment::new(
            CloudEnvironment::vm(self),
            CloudEnvironment::profile(self).clone(),
            seed,
        ))
    }
}

/// The default [`ExecutionBackend`]: a wrapped [`CloudEnvironment`] that resimulates
/// every operation from scratch.
///
/// The wrapper exists so callers can name "the simulation backend" as a type, keep
/// access to simulator-only APIs ([`env`](Self::env) / [`env_mut`](Self::env_mut),
/// e.g. the run log), and so other backends have something concrete to wrap.
#[derive(Debug)]
pub struct SimBackend {
    env: CloudEnvironment,
}

impl SimBackend {
    /// Creates a simulation backend on the given VM type with the given interference
    /// profile and root seed.
    pub fn new(vm: VmType, profile: InterferenceProfile, seed: u64) -> Self {
        Self {
            env: CloudEnvironment::new(vm, profile, seed),
        }
    }

    /// Wraps an existing environment.
    pub fn from_env(env: CloudEnvironment) -> Self {
        Self { env }
    }

    /// The underlying simulated environment.
    pub fn env(&self) -> &CloudEnvironment {
        &self.env
    }

    /// The underlying simulated environment, mutably.
    pub fn env_mut(&mut self) -> &mut CloudEnvironment {
        &mut self.env
    }

    /// Unwraps the backend into its environment.
    pub fn into_env(self) -> CloudEnvironment {
        self.env
    }
}

impl ExecutionBackend for SimBackend {
    fn vm(&self) -> VmType {
        self.env.vm()
    }

    fn profile(&self) -> &InterferenceProfile {
        self.env.profile()
    }

    fn seed(&self) -> u64 {
        self.env.seed()
    }

    fn clock(&self) -> SimTime {
        self.env.clock()
    }

    fn set_clock(&mut self, t: SimTime) {
        self.env.set_clock(t);
    }

    fn cost(&self) -> &CostTracker {
        self.env.cost()
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        play_on(&mut self.env, specs, rules)
    }

    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        games
            .iter()
            .map(|game| play_on(&mut self.env, game.specs, rules))
            .collect()
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        ExecutionBackend::run_single(&mut self.env, spec)
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        ExecutionBackend::observe_single_at(&mut self.env, spec, start, salt)
    }

    fn commit(&mut self, play: &GamePlay) {
        ExecutionBackend::commit(&mut self.env, play);
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        ExecutionBackend::commit_parallel(&mut self.env, plays);
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        Box::new(SimBackend::new(
            self.env.vm(),
            self.env.profile().clone(),
            seed,
        ))
    }
}

/// The default [`BackendProvider`]: every stream gets a fresh [`SimBackend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimProvider;

impl BackendProvider for SimProvider {
    fn backend(
        &self,
        _stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend> {
        Box::new(SimBackend::new(vm, profile.clone(), seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend(seed: u64) -> SimBackend {
        SimBackend::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed)
    }

    #[test]
    fn games_are_uncommitted_until_commit() {
        let mut exec = backend(1);
        let specs = [
            ExecutionSpec::new(100.0, 0.5),
            ExecutionSpec::new(300.0, 0.5),
        ];
        let play = exec.play_game(&specs, &GameRules::default());
        assert_eq!(play.players(), 2);
        assert_eq!(exec.cost().core_hours(), 0.0);
        exec.commit(&play);
        assert!(exec.cost().core_hours() > 0.0);
        assert_eq!(exec.clock().as_seconds(), play.elapsed);
    }

    #[test]
    fn sim_backend_matches_bare_environment() {
        // The trait impl on CloudEnvironment and the SimBackend wrapper must be the
        // same simulation: identical seeds produce bitwise-identical plays.
        let mut wrapped = backend(7);
        let mut bare = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 7);
        let specs = [
            ExecutionSpec::new(120.0, 0.8),
            ExecutionSpec::new(150.0, 0.2),
        ];
        let a = wrapped.play_game(&specs, &GameRules::default());
        let b = ExecutionBackend::play_game(&mut bare, &specs, &GameRules::default());
        assert_eq!(a, b);
    }

    #[test]
    fn forks_are_deterministic_sub_environments() {
        let mut exec = backend(3);
        let mut fork_a = exec.fork(99);
        let mut fork_b = exec.fork(99);
        assert_eq!(fork_a.seed(), 99);
        assert_eq!(fork_a.vm(), exec.vm());
        let spec = ExecutionSpec::new(100.0, 0.6);
        let a = fork_a.run_single(spec);
        let b = fork_b.run_single(spec);
        assert_eq!(a.observed_time.to_bits(), b.observed_time.to_bits());
        // Forks do not disturb the parent's accounting.
        assert_eq!(exec.cost().core_hours(), 0.0);
    }

    #[test]
    fn run_single_reports_charged_elapsed() {
        let mut exec = backend(5);
        let run = ExecutionBackend::run_single(&mut exec, ExecutionSpec::new(100.0, 0.3));
        assert!(run.elapsed >= run.observed_time);
        assert_eq!(exec.clock().as_seconds(), run.elapsed);
    }

    #[test]
    fn sim_ops_counter_counts_this_threads_simulation() {
        let before = sim_ops();
        let mut exec = backend(11);
        let _ = exec.run_single(ExecutionSpec::new(50.0, 0.1));
        let _ = exec.observe_single_at(ExecutionSpec::new(50.0, 0.1), SimTime::ZERO, 0);
        assert_eq!(
            sim_ops(),
            before + 2,
            "the counter is thread-local and exact"
        );
    }
}
