//! The [`ExecutionBackend`] trait: everything the tuning stack asks of an execution
//! environment.

use dg_cloudsim::{CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType};
use serde::{Deserialize, Serialize};

/// How a co-located game should be driven.
///
/// These are the game-termination rules of Fig. 5 of the paper: the game runs until the
/// fastest player completes, or — when early termination is enabled and the leader has
/// completed at least `min_leader_progress` of its work — until the work-done gap
/// between the leader and the runner-up exceeds `work_done_deviation`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameRules {
    /// Stop the game early when the leader is far enough ahead (Fig. 5).
    pub early_termination: bool,
    /// Work-done deviation `d` that triggers early termination.
    pub work_done_deviation: f64,
    /// Minimum leader progress before early termination is allowed.
    pub min_leader_progress: f64,
}

impl Default for GameRules {
    fn default() -> Self {
        Self {
            early_termination: true,
            work_done_deviation: 0.10,
            min_leader_progress: 0.25,
        }
    }
}

impl GameRules {
    /// The rules used in the playoffs and final: two-player games that run until the
    /// faster player completes, with no early termination.
    pub fn playoff() -> Self {
        Self {
            early_termination: false,
            ..Self::default()
        }
    }
}

/// The backend-level result of one co-located game: exactly the observations the
/// tournament layer consumes, with no reference back to the simulator.
///
/// A `GamePlay` is *uncommitted*: playing a game does not charge cost or advance the
/// backend's clock. The tournament phases decide whether a round's games are accounted
/// serially ([`ExecutionBackend::commit`]) or in parallel
/// ([`ExecutionBackend::commit_parallel`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GamePlay {
    /// Simulated time at which the game started.
    pub start: SimTime,
    /// Wall-clock seconds the game occupied its node (the quantity committed to the
    /// cost tracker).
    pub elapsed: f64,
    /// Observed (or extrapolated) execution time per player, in player order.
    pub observed_times: Vec<f64>,
    /// Execution score per player (work done relative to the best player, in `[0, 1]`).
    pub execution_scores: Vec<f64>,
    /// Whether the game was stopped by the early-termination rule.
    pub early_terminated: bool,
}

impl GamePlay {
    /// Number of players in the game.
    pub fn players(&self) -> usize {
        self.observed_times.len()
    }
}

/// One game of a batch passed to [`ExecutionBackend::play_games_batch`]: a borrowed
/// player roster (the batch as a whole shares the caller's spec storage, so building a
/// round-sized batch allocates nothing per game).
#[derive(Debug, Clone, Copy)]
pub struct GameBatchItem<'a> {
    /// The players of this game, in player order.
    pub specs: &'a [ExecutionSpec],
}

/// An execution environment the tuning stack runs against.
///
/// This trait captures the complete surface the engine needs from an environment — play
/// a co-located game, evaluate one configuration solo, observe without charging, charge
/// cost, fork per-region sub-environments, and expose the clock/cost/RNG identity —
/// so every layer above (`darwin-core` tournament phases, the `CloudEvaluator` all
/// baselines sample through, `dg-campaign` cells) is written against `&mut dyn
/// ExecutionBackend` instead of the concrete simulator.
///
/// Implementations in this crate:
///
/// * [`SimBackend`](crate::SimBackend) — wraps `dg_cloudsim::CloudEnvironment` (the
///   default; `CloudEnvironment` itself also implements the trait);
/// * [`RecordingBackend`](crate::RecordingBackend) / [`ReplayBackend`](crate::ReplayBackend)
///   — record every outcome to an [`ExecutionTrace`](crate::ExecutionTrace), then replay
///   it with zero resimulation;
/// * [`MemoBackend`](crate::MemoBackend) — a composable wrapper memoising solo
///   evaluations.
pub trait ExecutionBackend: Send {
    /// The VM type this backend executes on.
    fn vm(&self) -> VmType;

    /// The interference profile of the node.
    fn profile(&self) -> &InterferenceProfile;

    /// The root seed identifying this backend's noise realisation (forked sub-backends
    /// report the seed they were forked with).
    fn seed(&self) -> u64;

    /// The current simulated wall-clock time.
    fn clock(&self) -> SimTime;

    /// Moves the wall clock to `t` (used to start tuning sessions at different times of
    /// day, as in Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current clock.
    fn set_clock(&mut self, t: SimTime);

    /// Resources consumed so far.
    fn cost(&self) -> &CostTracker;

    /// Default number of players per game on this VM (its vCPU count), the paper's `P`.
    fn players_per_game(&self) -> usize {
        self.vm().vcpus()
    }

    /// Plays one co-located game among `specs` under `rules`, starting at the current
    /// clock. The game's cost is **not** committed; pass the play to
    /// [`commit`](Self::commit) or [`commit_parallel`](Self::commit_parallel).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay;

    /// Plays a round's worth of co-located games as one batch, in batch order, under
    /// the same `rules`, all starting at the current clock. Nothing is committed.
    ///
    /// Semantically this is *exactly* `games.iter().map(|g| self.play_game(g.specs,
    /// rules)).collect()` — the default implementation is that loop, and every override
    /// must stay bit-identical to it in outcomes, cost accounting, clock movement, and
    /// RNG-stream consumption (games are processed in order). Overrides exist purely
    /// for speed: simulation backends drive the batch through a fused struct-of-arrays
    /// pass, and wrappers hoist per-batch work out of the per-game loop.
    ///
    /// # Panics
    ///
    /// Panics if any game's `specs` is empty.
    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        games
            .iter()
            .map(|game| self.play_game(game.specs, rules))
            .collect()
    }

    /// Evaluates a single configuration alone on the node, committing its cost and
    /// advancing the clock.
    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun;

    /// Observes a single run of `spec` starting at `start`, *without* committing cost
    /// or advancing the clock. The `salt` decorrelates repeated observations at the
    /// same start time.
    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64;

    /// Observes `count` runs of `spec`, spaced `spacing_seconds` apart starting from
    /// the current clock, without committing cost.
    fn observe_repeated(
        &mut self,
        spec: ExecutionSpec,
        count: usize,
        spacing_seconds: f64,
    ) -> Vec<f64> {
        (0..count)
            .map(|i| {
                let start = self.clock() + spacing_seconds * i as f64;
                self.observe_single_at(spec, start, i as u64)
            })
            .collect()
    }

    /// Accounts for a finished game and advances the wall clock by its elapsed time.
    fn commit(&mut self, play: &GamePlay);

    /// Accounts for a batch of games that ran concurrently on identical VMs: every game
    /// is charged in core-hours but the clock advances only by the longest one.
    fn commit_parallel(&mut self, plays: &[GamePlay]);

    /// Creates an independent sub-environment of the same kind — same VM type and
    /// interference profile, noise realisation derived from `seed`. The tournament's
    /// regional phase forks one sub-environment per region, the way the paper runs
    /// regions on separate VMs.
    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend>;

    /// A permanent failure this backend has hit, if any — e.g. a real-process backend
    /// whose command crashed, timed out, or never wrote its completion marker
    /// ([`ProcessBackend`](crate::ProcessBackend)). Once set, evaluations return
    /// `f64::INFINITY` sentinels instead of launching more work, and campaign
    /// executors persist the message in the cell result so a failed cell is recorded
    /// as failed rather than silently dropped. Simulation backends never fail.
    fn failure(&self) -> Option<String> {
        None
    }
}

/// A factory of [`ExecutionBackend`]s, one per independent execution stream.
///
/// Campaign executors create one backend per grid cell; the `stream` label names the
/// cell (e.g. `"cell-17"`) so recording providers can key their traces by it and replay
/// providers can find the matching stream again.
pub trait BackendProvider: Send + Sync {
    /// Creates the backend for the execution stream `stream` on the given VM type,
    /// interference profile, and root seed.
    fn backend(
        &self,
        stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_match_the_paper() {
        let rules = GameRules::default();
        assert!(rules.early_termination);
        assert_eq!(rules.work_done_deviation, 0.10);
        assert_eq!(rules.min_leader_progress, 0.25);
        let playoff = GameRules::playoff();
        assert!(!playoff.early_termination);
        assert_eq!(playoff.work_done_deviation, rules.work_done_deviation);
    }

    #[test]
    fn game_play_reports_player_count() {
        let play = GamePlay {
            start: SimTime::ZERO,
            elapsed: 10.0,
            observed_times: vec![10.0, 12.0],
            execution_scores: vec![1.0, 0.8],
            early_terminated: false,
        };
        assert_eq!(play.players(), 2);
    }
}
