//! A composable memoizing backend for solo-evaluation-heavy tuners.

use crate::backend::{ExecutionBackend, GameBatchItem, GamePlay, GameRules};
use dg_cloudsim::{CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType};
use std::collections::HashMap;

/// Bitwise cache key of an [`ExecutionSpec`].
fn spec_key(spec: &ExecutionSpec) -> (u64, u64) {
    (spec.base_time().to_bits(), spec.sensitivity().to_bits())
}

/// Process-wide mirrors of the per-instance hit/miss counts, so a
/// [`MetricsSnapshot`](dg_obs::MetricsSnapshot) sees memoization across every
/// backend instance without holding any of them.
fn memo_counters() -> &'static (dg_obs::Counter, dg_obs::Counter) {
    static COUNTERS: std::sync::OnceLock<(dg_obs::Counter, dg_obs::Counter)> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            dg_obs::metrics::counter("exec.memo_hits"),
            dg_obs::metrics::counter("exec.memo_misses"),
        )
    })
}

/// An [`ExecutionBackend`] wrapper that memoizes evaluations, for the
/// exhaustive/oracle/grid-heavy paths that ask the environment about the same
/// configuration over and over.
///
/// Two caches compose here:
///
/// * **Observations** ([`ExecutionBackend::observe_single_at`]) are pure functions of
///   `(spec, start, salt)` on every backend in this crate, so caching them is fully
///   transparent — same results, fewer simulations.
/// * **Solo evaluations** ([`ExecutionBackend::run_single`]) are *not* pure: a live
///   environment observes different interference at different clock times. The solo
///   cache therefore keys on the clock **as well as** the spec (mirroring the
///   observation key): a hit replays the first observation recorded for that exact
///   `(spec, start time)` and charges the same cost/clock advance the original run
///   incurred (through [`ExecutionBackend::commit`], the same code path a live run
///   uses). Because [`run_single`](ExecutionBackend::run_single) itself advances the
///   clock, the default key makes repeat evaluations at *later* times miss — which is
///   exactly right under a load-varying environment (e.g. a `ScenarioBackend` mid
///   regime shift), where replaying a time from a stale load regime would be wrong.
///   Callers that knowingly run against a stationary environment and want the old
///   aggressive behaviour opt in with [`assuming_stationary`](Self::assuming_stationary),
///   which drops the clock from the key — the approximation surrogate-assisted tuners
///   make when they substitute a cheap model for true fitness evaluation.
///
/// Games are never memoized (their outcomes depend on the full player set and the
/// clock) and always reach the inner backend. Forked sub-environments get their own
/// empty caches, because a fork is a different noise realisation.
pub struct MemoBackend {
    inner: Box<dyn ExecutionBackend>,
    /// When set, the solo key's clock component is pinned to zero: repeat evaluations
    /// of a spec hit regardless of when they run.
    stationary: bool,
    solo: HashMap<(u64, u64, u64), (f64, f64)>,
    observations: HashMap<(u64, u64, u64, u64), f64>,
    hits: u64,
    misses: u64,
}

impl MemoBackend {
    /// Wraps `inner` with empty caches. Solo evaluations are keyed by the clock as
    /// well as the spec, so the cache stays correct under time-varying environments.
    pub fn new(inner: Box<dyn ExecutionBackend>) -> Self {
        Self::with_stationary(inner, false)
    }

    /// Wraps `inner` with empty caches, *assuming the environment is stationary*:
    /// solo evaluations are keyed by the spec alone, so a configuration's first
    /// observation answers every repeat no matter the clock. Do not compose this
    /// with load-varying wrappers such as a non-steady `ScenarioBackend` — a hit
    /// would replay a time from a different load regime.
    pub fn assuming_stationary(inner: Box<dyn ExecutionBackend>) -> Self {
        Self::with_stationary(inner, true)
    }

    fn with_stationary(inner: Box<dyn ExecutionBackend>, stationary: bool) -> Self {
        Self {
            inner,
            stationary,
            solo: HashMap::new(),
            observations: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Whether solo hits ignore the clock (see [`assuming_stationary`](Self::assuming_stationary)).
    pub fn is_stationary(&self) -> bool {
        self.stationary
    }

    /// Number of requests answered from the caches.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of requests that reached the inner backend.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Unwraps the memoizer, discarding the caches.
    pub fn into_inner(self) -> Box<dyn ExecutionBackend> {
        self.inner
    }

    /// The solo cache key: spec bits plus the clock component (pinned to zero under
    /// the stationary assumption).
    fn solo_key(&self, spec: &ExecutionSpec) -> (u64, u64, u64) {
        let (b, s) = spec_key(spec);
        let clock = if self.stationary {
            0
        } else {
            self.inner.clock().as_seconds().to_bits()
        };
        (b, s, clock)
    }
}

impl ExecutionBackend for MemoBackend {
    fn vm(&self) -> VmType {
        self.inner.vm()
    }

    fn profile(&self) -> &InterferenceProfile {
        self.inner.profile()
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn clock(&self) -> SimTime {
        self.inner.clock()
    }

    fn set_clock(&mut self, t: SimTime) {
        self.inner.set_clock(t);
    }

    fn cost(&self) -> &CostTracker {
        self.inner.cost()
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        self.inner.play_game(specs, rules)
    }

    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        // Games are never memoised; hand the whole batch to the inner backend so its
        // fast path applies.
        self.inner.play_games_batch(games, rules)
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        let key = self.solo_key(&spec);
        if let Some(&(observed_time, elapsed)) = self.solo.get(&key) {
            self.hits += 1;
            memo_counters().0.increment();
            let started_at = self.inner.clock();
            // Charge exactly what the original run cost, through the same commit path
            // a live evaluation uses, so budgets and clocks keep advancing.
            self.inner.commit(&GamePlay {
                start: started_at,
                elapsed,
                observed_times: vec![observed_time],
                execution_scores: vec![1.0],
                early_terminated: false,
            });
            return ObservedRun {
                observed_time,
                started_at,
                elapsed,
            };
        }
        self.misses += 1;
        memo_counters().1.increment();
        let run = self.inner.run_single(spec);
        self.solo.insert(key, (run.observed_time, run.elapsed));
        run
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        let (b, s) = spec_key(&spec);
        let key = (b, s, start.as_seconds().to_bits(), salt);
        if let Some(&time) = self.observations.get(&key) {
            self.hits += 1;
            memo_counters().0.increment();
            return time;
        }
        self.misses += 1;
        memo_counters().1.increment();
        let time = self.inner.observe_single_at(spec, start, salt);
        self.observations.insert(key, time);
        time
    }

    fn commit(&mut self, play: &GamePlay) {
        self.inner.commit(play);
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        self.inner.commit_parallel(plays);
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        Box::new(MemoBackend::with_stationary(
            self.inner.fork(seed),
            self.stationary,
        ))
    }

    fn failure(&self) -> Option<String> {
        self.inner.failure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimBackend;

    fn sim(seed: u64) -> Box<dyn ExecutionBackend> {
        Box::new(SimBackend::new(
            VmType::M5_8xlarge,
            InterferenceProfile::typical(),
            seed,
        ))
    }

    #[test]
    fn solo_cache_keys_on_the_clock_by_default() {
        let mut exec = MemoBackend::new(sim(1));
        let spec = ExecutionSpec::new(100.0, 0.8);
        let _ = exec.run_single(spec);
        // `run_single` advanced the clock, so the repeat is a *different* start time:
        // a correct memoizer must re-evaluate, not replay the stale observation.
        let _ = exec.run_single(spec);
        assert_eq!(exec.hits(), 0);
        assert_eq!(exec.misses(), 2);
    }

    #[test]
    fn stationary_memo_hits_across_the_clock_and_still_charges() {
        let mut exec = MemoBackend::assuming_stationary(sim(1));
        assert!(exec.is_stationary());
        let spec = ExecutionSpec::new(100.0, 0.8);
        let first = exec.run_single(spec);
        let cost_after_first = exec.cost().core_hours();
        let second = exec.run_single(spec);
        assert_eq!(exec.hits(), 1);
        assert_eq!(exec.misses(), 1);
        assert_eq!(
            first.observed_time.to_bits(),
            second.observed_time.to_bits()
        );
        // The hit charges the same cost again and keeps the clock moving.
        assert!((exec.cost().core_hours() - 2.0 * cost_after_first).abs() < 1e-12);
        assert_eq!(second.started_at.as_seconds(), first.elapsed);
    }

    #[test]
    fn observations_are_transparently_cached() {
        let mut exec = MemoBackend::new(sim(2));
        let spec = ExecutionSpec::new(150.0, 0.5);
        let a = exec.observe_single_at(spec, SimTime::from_seconds(1000.0), 3);
        let b = exec.observe_single_at(spec, SimTime::from_seconds(1000.0), 3);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(exec.hits(), 1);
        // A different salt is a different observation.
        let c = exec.observe_single_at(spec, SimTime::from_seconds(1000.0), 4);
        assert_ne!(a.to_bits(), c.to_bits());
        assert_eq!(exec.misses(), 2);
        assert_eq!(exec.cost().core_hours(), 0.0);
    }

    #[test]
    fn games_and_forks_bypass_the_cache() {
        let mut exec = MemoBackend::assuming_stationary(sim(3));
        let specs = [ExecutionSpec::new(80.0, 0.2), ExecutionSpec::new(90.0, 0.9)];
        let play_a = exec.play_game(&specs, &GameRules::default());
        let play_b = exec.play_game(&specs, &GameRules::default());
        // Same clock, same specs, but fresh per-game jitter: games are live.
        assert_ne!(
            play_a.observed_times[0].to_bits(),
            play_b.observed_times[0].to_bits()
        );
        assert_eq!(exec.hits(), 0);

        let mut fork = exec.fork(99);
        let spec = ExecutionSpec::new(80.0, 0.2);
        let _ = exec.run_single(spec);
        // The fork's cache is independent: first evaluation there is a miss.
        let _ = fork.run_single(spec);
        assert_eq!(exec.hits(), 0);
    }
}
