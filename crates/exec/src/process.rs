//! Real-process execution: [`ProcessBackend`] runs actual OS programs as workload
//! evaluations.
//!
//! This is the seam the `ExecutionBackend` trait was built for: the same tuners,
//! tournament phases, and campaign executors that drive the simulator can drive real
//! programs. Each evaluation renders a [`CommandTemplate`] for the configuration's
//! [`ExecutionSpec`], launches the process with stdout/stderr captured into a fresh
//! per-job directory, waits under a configurable timeout, and checks the completion
//! marker the workload wrote (`SUCCESS` / `FAIL` in `<job dir>/status`).
//!
//! # Failure discipline
//!
//! Real processes crash, hang, and disappear; none of the `ExecutionBackend` methods
//! can return an error. The backend therefore *latches* the first [`ProcessError`] it
//! hits, returns `f64::INFINITY` for that observation, and short-circuits every later
//! evaluation (no more launches) so a broken workload fails one cell quickly instead
//! of grinding through its whole budget. Campaign executors read the latched error
//! through [`ExecutionBackend::failure`] and persist it in the cell result: a failed
//! cell is recorded as failed — and a resumed campaign skips it — rather than being
//! silently dropped or retried forever.
//!
//! # Timing
//!
//! [`TimingSource::WallClock`] (the default) observes the process's real wall-clock
//! duration — the TUNA-style measurement for actual tuning runs, inherently noisy and
//! machine-dependent. [`TimingSource::Reported`] instead requires the workload to
//! print `DG_TIME=<seconds>` on stdout and uses that value as both the observation
//! and the charged elapsed time, which makes reports a pure function of the workload's
//! own output — the mode the byte-identical resume and record/replay guarantees are
//! exercised under in CI.
//!
//! # Determinism & replay
//!
//! The backend composes with [`TraceRecorder`](crate::TraceRecorder) like any other:
//! record a real-process campaign once and every observation (and the latched failure,
//! if any) lands in the trace, so the campaign replays bit-for-bit afterwards with
//! **zero** process launches — [`process_launches`] is the proof hook.

use crate::backend::{BackendProvider, ExecutionBackend, GamePlay, GameRules};
use dg_cloudsim::{CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often a waiting backend polls a child process for completion.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// The registry counter behind [`process_launches`]: `exec.process_launches` in the
/// `dg-obs` metrics registry.
fn process_launches_counter() -> &'static dg_obs::Counter {
    static COUNTER: std::sync::OnceLock<dg_obs::Counter> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| dg_obs::metrics::counter("exec.process_launches"))
}

/// Number of OS processes launched so far by every [`ProcessBackend`] in this process.
///
/// The analogue of [`sim_ops`](crate::sim_ops) for real execution, but global rather
/// than thread-local because campaign workers spawn processes from many threads and
/// the interesting questions ("did the resumed campaign launch anything?", "did the
/// replay launch anything?") are fleet-wide. Read it before and after an operation
/// and compare.
pub fn process_launches() -> u64 {
    process_launches_counter().value()
}

/// The failure modes a real process evaluation can hit, each latched by the backend
/// and surfaced through [`ExecutionBackend::failure`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessError {
    /// The OS refused to start the process (missing binary, permissions, ...).
    Spawn {
        /// The rendered command that failed to start.
        command: String,
        /// The OS error message.
        message: String,
    },
    /// The process exited with a non-success status.
    NonZeroExit {
        /// The rendered command that failed.
        command: String,
        /// The exit status, as reported by the OS.
        status: String,
    },
    /// The process outlived the configured timeout and was killed.
    Timeout {
        /// The rendered command that was killed.
        command: String,
        /// The timeout that was exceeded, in seconds.
        limit_seconds: f64,
    },
    /// The process exited successfully but never wrote a recognizable completion
    /// marker to `<job dir>/status`.
    MarkerMissing {
        /// The job directory that was inspected.
        job_dir: String,
    },
    /// The workload itself reported failure (`FAIL` in `<job dir>/status`).
    MarkerFail {
        /// The job directory carrying the marker.
        job_dir: String,
    },
    /// Reported timing was requested but the process printed no parseable
    /// `DG_TIME=<seconds>` line on stdout.
    BadTimeReport {
        /// The job directory whose stdout was inspected.
        job_dir: String,
        /// What was wrong with the report.
        detail: String,
    },
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::Spawn { command, message } => {
                write!(f, "failed to spawn {command}: {message}")
            }
            ProcessError::NonZeroExit { command, status } => {
                write!(f, "{command} exited with {status}")
            }
            ProcessError::Timeout {
                command,
                limit_seconds,
            } => write!(
                f,
                "{command} exceeded the {limit_seconds}s timeout and was killed"
            ),
            ProcessError::MarkerMissing { job_dir } => {
                write!(f, "no SUCCESS/FAIL completion marker in {job_dir}/status")
            }
            ProcessError::MarkerFail { job_dir } => {
                write!(f, "workload reported FAIL in {job_dir}/status")
            }
            ProcessError::BadTimeReport { job_dir, detail } => {
                write!(f, "bad DG_TIME report in {job_dir}/stdout.log: {detail}")
            }
        }
    }
}

impl std::error::Error for ProcessError {}

/// Where an observation's duration comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingSource {
    /// Real wall-clock time between spawn and exit. Noisy and machine-dependent —
    /// what actual tuning measures.
    WallClock,
    /// The workload's own `DG_TIME=<seconds>` line on stdout (last one wins). Fully
    /// deterministic when the workload's report is; required for the byte-identical
    /// resume/replay guarantees.
    Reported,
}

/// A command line with placeholders, rendered once per evaluation.
///
/// Recognized placeholders in any argument (and the program itself):
///
/// | placeholder      | value                                               |
/// |------------------|-----------------------------------------------------|
/// | `{base_time}`    | the spec's base execution time, shortest-round-trip |
/// | `{sensitivity}`  | the spec's interference sensitivity                 |
/// | `{job_dir}`      | the per-job output directory                        |
/// | `{salt}`         | the observation's decorrelation salt                |
/// | `{seed}`         | the backend's root seed                             |
///
/// The child additionally receives the environment variables `DG_JOB_DIR`,
/// `DG_BASE_TIME`, `DG_SENSITIVITY`, `DG_SALT`, and `DG_SEED` with the same values,
/// so wrapper scripts need no argument plumbing at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandTemplate {
    program: String,
    args: Vec<String>,
}

impl CommandTemplate {
    /// Creates a template from a program and its argument list.
    pub fn new<P, I, A>(program: P, args: I) -> Self
    where
        P: Into<String>,
        I: IntoIterator<Item = A>,
        A: Into<String>,
    {
        Self {
            program: program.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// The program to execute (placeholders allowed).
    pub fn program(&self) -> &str {
        &self.program
    }

    /// The argument templates.
    pub fn args(&self) -> &[String] {
        &self.args
    }

    fn substitute(text: &str, spec: &ExecutionSpec, job_dir: &str, salt: u64, seed: u64) -> String {
        text.replace("{base_time}", &format!("{}", spec.base_time()))
            .replace("{sensitivity}", &format!("{}", spec.sensitivity()))
            .replace("{job_dir}", job_dir)
            .replace("{salt}", &salt.to_string())
            .replace("{seed}", &seed.to_string())
    }

    /// Renders `(program, args)` for one evaluation.
    pub fn render(
        &self,
        spec: &ExecutionSpec,
        job_dir: &Path,
        salt: u64,
        seed: u64,
    ) -> (String, Vec<String>) {
        let dir = job_dir.display().to_string();
        let program = Self::substitute(&self.program, spec, &dir, salt, seed);
        let args = self
            .args
            .iter()
            .map(|a| Self::substitute(a, spec, &dir, salt, seed))
            .collect();
        (program, args)
    }
}

/// One spawned, not-yet-reaped evaluation.
struct LaunchedJob {
    child: Child,
    job_dir: PathBuf,
    command: String,
    started: Instant,
}

/// An [`ExecutionBackend`] that evaluates configurations by running real OS processes.
///
/// See the [module docs](self) for the execution model, failure discipline, and
/// timing modes. Job artifacts land under the backend's directory as
/// `job-<n>/{stdout.log,stderr.log,status}`; forked sub-environments nest under
/// `fork-<n>/` and share the parent's failure latch (a failed region fails its cell).
pub struct ProcessBackend {
    template: CommandTemplate,
    dir: PathBuf,
    timing: TimingSource,
    timeout: Duration,
    vm: VmType,
    profile: InterferenceProfile,
    seed: u64,
    clock: SimTime,
    cost: CostTracker,
    jobs: usize,
    forks: usize,
    error: Arc<Mutex<Option<ProcessError>>>,
}

impl ProcessBackend {
    /// Creates a backend that renders `template` per evaluation and writes job
    /// artifacts under `dir`. Defaults: wall-clock timing, 1 hour timeout.
    pub fn new(
        template: CommandTemplate,
        dir: impl Into<PathBuf>,
        vm: VmType,
        profile: InterferenceProfile,
        seed: u64,
    ) -> Self {
        Self {
            template,
            dir: dir.into(),
            timing: TimingSource::WallClock,
            timeout: Duration::from_secs(3600),
            vm,
            profile,
            seed,
            clock: SimTime::ZERO,
            cost: CostTracker::new(),
            jobs: 0,
            forks: 0,
            error: Arc::new(Mutex::new(None)),
        }
    }

    /// Sets the timing source (builder-style).
    pub fn with_timing(mut self, timing: TimingSource) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the per-process timeout (builder-style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The first process error this backend (or any of its forks) hit, if any.
    pub fn last_error(&self) -> Option<ProcessError> {
        self.error
            .lock()
            .expect("process error latch poisoned")
            .clone()
    }

    fn failed(&self) -> bool {
        self.error
            .lock()
            .expect("process error latch poisoned")
            .is_some()
    }

    fn record_error(&self, error: ProcessError) {
        let mut slot = self.error.lock().expect("process error latch poisoned");
        if slot.is_none() {
            *slot = Some(error);
        }
    }

    /// Spawns one evaluation in a fresh `job-<n>` directory.
    fn launch(&mut self, spec: ExecutionSpec, salt: u64) -> Result<LaunchedJob, ProcessError> {
        let ordinal = self.jobs;
        self.jobs += 1;
        let job_dir = self.dir.join(format!("job-{ordinal}"));
        let (program, args) = self.template.render(&spec, &job_dir, salt, self.seed);
        let command = if args.is_empty() {
            program.clone()
        } else {
            format!("{program} {}", args.join(" "))
        };
        let io_error = |message: std::io::Error| ProcessError::Spawn {
            command: command.clone(),
            message: message.to_string(),
        };
        fs::create_dir_all(&job_dir).map_err(io_error)?;
        let stdout = fs::File::create(job_dir.join("stdout.log")).map_err(io_error)?;
        let stderr = fs::File::create(job_dir.join("stderr.log")).map_err(io_error)?;
        let child = Command::new(&program)
            .args(&args)
            .env("DG_JOB_DIR", &job_dir)
            .env("DG_BASE_TIME", format!("{}", spec.base_time()))
            .env("DG_SENSITIVITY", format!("{}", spec.sensitivity()))
            .env("DG_SALT", salt.to_string())
            .env("DG_SEED", self.seed.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::from(stdout))
            .stderr(Stdio::from(stderr))
            .spawn()
            .map_err(io_error)?;
        process_launches_counter().increment();
        Ok(LaunchedJob {
            child,
            job_dir,
            command,
            started: Instant::now(),
        })
    }

    /// Waits for a launched job (under the timeout), checks its completion marker,
    /// and extracts the observed duration.
    fn finish(&self, mut job: LaunchedJob) -> Result<f64, ProcessError> {
        let deadline = job.started + self.timeout;
        let status = loop {
            match job.child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = job.child.kill();
                        let _ = job.child.wait();
                        return Err(ProcessError::Timeout {
                            command: job.command,
                            limit_seconds: self.timeout.as_secs_f64(),
                        });
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => {
                    return Err(ProcessError::Spawn {
                        command: job.command,
                        message: format!("wait failed: {e}"),
                    })
                }
            }
        };
        let wall_seconds = job.started.elapsed().as_secs_f64();
        if !status.success() {
            return Err(ProcessError::NonZeroExit {
                command: job.command,
                status: status.to_string(),
            });
        }
        let job_dir = job.job_dir.display().to_string();
        let marker = fs::read_to_string(job.job_dir.join("status")).unwrap_or_default();
        let marker = marker.trim();
        if marker.starts_with("FAIL") {
            return Err(ProcessError::MarkerFail { job_dir });
        }
        if !marker.starts_with("SUCCESS") {
            return Err(ProcessError::MarkerMissing { job_dir });
        }
        match self.timing {
            TimingSource::WallClock => Ok(wall_seconds),
            TimingSource::Reported => {
                let stdout = fs::read_to_string(job.job_dir.join("stdout.log")).unwrap_or_default();
                let reported = stdout
                    .lines()
                    .filter_map(|line| line.trim().strip_prefix("DG_TIME="))
                    .next_back()
                    .ok_or_else(|| ProcessError::BadTimeReport {
                        job_dir: job_dir.clone(),
                        detail: "no DG_TIME=<seconds> line on stdout".to_string(),
                    })?;
                let seconds: f64 =
                    reported
                        .trim()
                        .parse()
                        .map_err(|_| ProcessError::BadTimeReport {
                            job_dir: job_dir.clone(),
                            detail: format!("unparseable DG_TIME value {reported:?}"),
                        })?;
                if !(seconds.is_finite() && seconds >= 0.0) {
                    return Err(ProcessError::BadTimeReport {
                        job_dir,
                        detail: format!("DG_TIME must be finite and non-negative, got {seconds}"),
                    });
                }
                Ok(seconds)
            }
        }
    }

    /// Runs one evaluation end to end. Returns the observed duration, or
    /// `f64::INFINITY` after latching the error — and launches nothing at all once an
    /// error is already latched.
    fn run_job(&mut self, spec: ExecutionSpec, salt: u64) -> f64 {
        if self.failed() {
            return f64::INFINITY;
        }
        match self.launch(spec, salt).and_then(|job| self.finish(job)) {
            Ok(seconds) => seconds,
            Err(error) => {
                self.record_error(error);
                f64::INFINITY
            }
        }
    }
}

impl ExecutionBackend for ProcessBackend {
    fn vm(&self) -> VmType {
        self.vm
    }

    fn profile(&self) -> &InterferenceProfile {
        &self.profile
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn set_clock(&mut self, t: SimTime) {
        assert!(
            t.as_seconds() >= self.clock.as_seconds(),
            "the clock cannot move backwards"
        );
        self.clock = t;
    }

    fn cost(&self) -> &CostTracker {
        &self.cost
    }

    /// Plays a game by launching every player's process concurrently — real
    /// co-location on the host. Early-termination rules cannot be applied to opaque
    /// processes, so every player runs to completion (`early_terminated` is always
    /// `false`); execution scores are the usual fastest-relative work fractions.
    fn play_game(&mut self, specs: &[ExecutionSpec], _rules: &GameRules) -> GamePlay {
        assert!(!specs.is_empty(), "a game needs at least one player");
        let start = self.clock;
        let mut times = vec![f64::INFINITY; specs.len()];
        if !self.failed() {
            let mut launched = Vec::with_capacity(specs.len());
            for (player, spec) in specs.iter().enumerate() {
                match self.launch(*spec, player as u64) {
                    Ok(job) => launched.push((player, job)),
                    Err(error) => {
                        self.record_error(error);
                        break;
                    }
                }
            }
            for (player, job) in launched {
                match self.finish(job) {
                    Ok(seconds) => times[player] = seconds,
                    Err(error) => self.record_error(error),
                }
            }
        }
        let best = times
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .fold(f64::INFINITY, f64::min);
        let slowest = times
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .fold(0.0_f64, f64::max);
        let scores = times
            .iter()
            .map(|&t| {
                if t.is_finite() && t > 0.0 && best.is_finite() {
                    (best / t).min(1.0)
                } else if t.is_finite() && best.is_finite() && best == 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        GamePlay {
            start,
            elapsed: slowest,
            observed_times: times,
            execution_scores: scores,
            early_terminated: false,
        }
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        let salt = self.jobs as u64;
        let started_at = self.clock;
        let observed = self.run_job(spec, salt);
        // A failed run charges nothing (elapsed 0), exactly what replay re-applies.
        let elapsed = if observed.is_finite() { observed } else { 0.0 };
        self.cost.charge_serial(self.vm, elapsed);
        self.clock += elapsed;
        ObservedRun {
            observed_time: observed,
            started_at,
            elapsed,
        }
    }

    /// Observes one run without accounting. Real time does not jump, so `start` only
    /// decorrelates the observation through the job ordinal; the process runs now.
    fn observe_single_at(&mut self, spec: ExecutionSpec, _start: SimTime, salt: u64) -> f64 {
        self.run_job(spec, salt)
    }

    fn commit(&mut self, play: &GamePlay) {
        self.cost.charge_serial(self.vm, play.elapsed);
        self.clock += play.elapsed;
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        if plays.is_empty() {
            return;
        }
        let elapsed: Vec<f64> = plays.iter().map(|p| p.elapsed).collect();
        self.cost.charge_parallel(self.vm, &elapsed);
        let max_elapsed = elapsed.iter().copied().fold(0.0_f64, f64::max);
        self.clock += max_elapsed;
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        let ordinal = self.forks;
        self.forks += 1;
        Box::new(ProcessBackend {
            template: self.template.clone(),
            dir: self.dir.join(format!("fork-{ordinal}")),
            timing: self.timing,
            timeout: self.timeout,
            vm: self.vm,
            profile: self.profile.clone(),
            seed,
            clock: SimTime::ZERO,
            cost: CostTracker::new(),
            jobs: 0,
            forks: 0,
            // Shared latch: a failure anywhere in the cell fails the whole cell.
            error: Arc::clone(&self.error),
        })
    }

    fn failure(&self) -> Option<String> {
        self.last_error().map(|e| e.to_string())
    }
}

/// A [`BackendProvider`] that gives every execution stream its own
/// [`ProcessBackend`] rooted at `<root>/<stream>/`.
///
/// Campaign executors name streams `cell-<index>`, so a campaign run against this
/// provider leaves a browsable `jobs/cell-3/job-17/stdout.log`-style tree behind.
pub struct ProcessProvider {
    template: CommandTemplate,
    root: PathBuf,
    timing: TimingSource,
    timeout: Duration,
}

impl ProcessProvider {
    /// Creates a provider rendering `template` with job trees under `root`.
    /// Defaults: wall-clock timing, 1 hour timeout.
    pub fn new(template: CommandTemplate, root: impl Into<PathBuf>) -> Self {
        Self {
            template,
            root: root.into(),
            timing: TimingSource::WallClock,
            timeout: Duration::from_secs(3600),
        }
    }

    /// Sets the timing source (builder-style).
    pub fn with_timing(mut self, timing: TimingSource) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the per-process timeout (builder-style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

impl BackendProvider for ProcessProvider {
    fn backend(
        &self,
        stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend> {
        Box::new(
            ProcessBackend::new(
                self.template.clone(),
                self.root.join(stream),
                vm,
                profile.clone(),
                seed,
            )
            .with_timing(self.timing)
            .with_timeout(self.timeout),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_render_all_placeholders() {
        let template = CommandTemplate::new(
            "/bin/echo",
            [
                "{base_time}",
                "{sensitivity}",
                "{job_dir}/x",
                "{salt}-{seed}",
            ],
        );
        let spec = ExecutionSpec::new(245.3, 0.8);
        let (program, args) = template.render(&spec, Path::new("/tmp/j"), 3, 42);
        assert_eq!(program, "/bin/echo");
        assert_eq!(args, vec!["245.3", "0.8", "/tmp/j/x", "3-42"]);
    }

    #[test]
    fn error_display_names_the_command() {
        let err = ProcessError::Timeout {
            command: "/bin/sleep 30".into(),
            limit_seconds: 0.5,
        };
        assert!(err.to_string().contains("/bin/sleep 30"));
        assert!(err.to_string().contains("0.5"));
        let err = ProcessError::MarkerMissing {
            job_dir: "/tmp/job-0".into(),
        };
        assert!(err.to_string().contains("/tmp/job-0/status"));
    }
}
