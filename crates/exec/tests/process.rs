//! The ProcessBackend `/bin/sh` battery: real processes behind the backend trait.
//!
//! Every test drives an actual shell through [`ProcessBackend`], covering the marker
//! contract (`SUCCESS`/`FAIL` in `$DG_JOB_DIR/status`), both timing modes, each
//! failure mode's typed [`ProcessError`], the short-circuit discipline (a failed
//! backend launches nothing further), and record/replay composition (a replayed
//! real-process session launches **zero** processes).
//!
//! The tests serialize themselves on a shared mutex: [`process_launches`] is a
//! process-wide counter, so launch-delta assertions must not interleave.

use dg_cloudsim::{ExecutionSpec, InterferenceProfile, VmType};
use dg_exec::{
    process_launches, BackendProvider, CommandTemplate, ExecutionBackend, GameRules,
    ProcessBackend, ProcessError, ProcessProvider, TimingSource, TraceRecorder, TraceReplayer,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes the whole battery: `process_launches()` is global to the test process.
fn launch_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A fresh working directory per test.
fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dg-process-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A backend running `script` under `/bin/sh -c`.
fn sh_backend(script: &str, dir: &Path) -> ProcessBackend {
    let template = CommandTemplate::new("/bin/sh", ["-c", script]);
    ProcessBackend::new(
        template,
        dir.to_path_buf(),
        VmType::M5_8xlarge,
        InterferenceProfile::typical(),
        42,
    )
}

/// A workload that reports its configured base time deterministically and succeeds.
const REPORTING_OK: &str = r#"echo "DG_TIME=$DG_BASE_TIME"; printf SUCCESS > "$DG_JOB_DIR/status""#;

#[test]
fn reported_timing_observes_the_workloads_own_clock() {
    let _guard = launch_lock();
    let dir = work_dir("reported-ok");
    let mut exec = sh_backend(REPORTING_OK, &dir).with_timing(TimingSource::Reported);
    let before = process_launches();
    let run = exec.run_single(ExecutionSpec::new(245.3, 0.8));
    assert_eq!(run.observed_time, 245.3);
    assert_eq!(run.elapsed, 245.3);
    assert_eq!(exec.clock().as_seconds(), 245.3);
    assert!(exec.cost().core_hours() > 0.0);
    assert_eq!(exec.failure(), None);
    assert_eq!(process_launches() - before, 1);
    // The job tree is browsable: stdout was captured, the marker is in place.
    let stdout = fs::read_to_string(dir.join("job-0/stdout.log")).expect("stdout captured");
    assert!(stdout.contains("DG_TIME=245.3"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wall_clock_timing_measures_real_elapsed_time() {
    let _guard = launch_lock();
    let dir = work_dir("wall-clock");
    let mut exec = sh_backend(r#"printf SUCCESS > "$DG_JOB_DIR/status""#, &dir);
    let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
    assert!(run.observed_time.is_finite() && run.observed_time >= 0.0);
    assert_eq!(exec.failure(), None);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn nonzero_exit_latches_a_typed_error() {
    let _guard = launch_lock();
    let dir = work_dir("nonzero");
    let mut exec = sh_backend("exit 7", &dir);
    let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
    assert_eq!(run.observed_time, f64::INFINITY);
    assert_eq!(run.elapsed, 0.0); // failures charge nothing
    assert!(matches!(
        exec.last_error(),
        Some(ProcessError::NonZeroExit { .. })
    ));
    assert!(exec.failure().expect("failure set").contains("exited"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fail_marker_latches_marker_fail() {
    let _guard = launch_lock();
    let dir = work_dir("fail-marker");
    let mut exec = sh_backend(r#"printf FAIL > "$DG_JOB_DIR/status""#, &dir);
    let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
    assert_eq!(run.observed_time, f64::INFINITY);
    assert!(matches!(
        exec.last_error(),
        Some(ProcessError::MarkerFail { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_marker_latches_marker_missing() {
    let _guard = launch_lock();
    let dir = work_dir("missing-marker");
    // Exits successfully but never writes the completion marker.
    let mut exec = sh_backend("true", &dir);
    let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
    assert_eq!(run.observed_time, f64::INFINITY);
    assert!(matches!(
        exec.last_error(),
        Some(ProcessError::MarkerMissing { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn hung_processes_are_killed_at_the_timeout() {
    let _guard = launch_lock();
    let dir = work_dir("timeout");
    let mut exec = sh_backend("sleep 30", &dir).with_timeout(Duration::from_millis(300));
    let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
    assert_eq!(run.observed_time, f64::INFINITY);
    assert!(matches!(
        exec.last_error(),
        Some(ProcessError::Timeout { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_binary_latches_a_spawn_error() {
    let _guard = launch_lock();
    let dir = work_dir("spawn");
    let template = CommandTemplate::new("/no/such/binary", ["x"]);
    let mut exec = ProcessBackend::new(
        template,
        dir.clone(),
        VmType::M5_8xlarge,
        InterferenceProfile::typical(),
        1,
    );
    let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
    assert_eq!(run.observed_time, f64::INFINITY);
    assert!(matches!(
        exec.last_error(),
        Some(ProcessError::Spawn { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_failed_backend_short_circuits_and_launches_nothing_further() {
    let _guard = launch_lock();
    let dir = work_dir("short-circuit");
    let mut exec = sh_backend("exit 1", &dir);
    let _ = exec.run_single(ExecutionSpec::new(100.0, 0.5));
    let first_error = exec.last_error().expect("first run fails");
    let before = process_launches();
    for salt in 0..5 {
        let observed = exec.observe_single_at(
            ExecutionSpec::new(100.0, 0.5),
            dg_cloudsim::SimTime::ZERO,
            salt,
        );
        assert_eq!(observed, f64::INFINITY);
    }
    assert_eq!(process_launches(), before, "short-circuit must not launch");
    // The latch keeps the *first* error.
    assert_eq!(exec.last_error(), Some(first_error.clone()));
    // Forks share the latch: they are born failed and launch nothing either.
    let mut fork = exec.fork(9);
    let run = fork.run_single(ExecutionSpec::new(100.0, 0.5));
    assert_eq!(run.observed_time, f64::INFINITY);
    assert_eq!(process_launches(), before);
    assert_eq!(exec.last_error(), Some(first_error));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn games_co_locate_players_and_score_relative_speed() {
    let _guard = launch_lock();
    let dir = work_dir("game");
    let mut exec = sh_backend(REPORTING_OK, &dir).with_timing(TimingSource::Reported);
    let fast = ExecutionSpec::new(100.0, 0.5);
    let slow = ExecutionSpec::new(400.0, 0.5);
    let before = process_launches();
    let play = exec.play_game(&[fast, slow], &GameRules::default());
    assert_eq!(process_launches() - before, 2);
    assert_eq!(play.observed_times, vec![100.0, 400.0]);
    assert_eq!(play.execution_scores, vec![1.0, 0.25]);
    assert_eq!(play.elapsed, 400.0); // the co-located game lasts as long as its slowest player
    assert!(!play.early_terminated);
    exec.commit(&play);
    assert_eq!(exec.clock().as_seconds(), 400.0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recorded_process_sessions_replay_bit_for_bit_with_zero_launches() {
    let _guard = launch_lock();
    let dir = work_dir("record-replay");
    let template = CommandTemplate::new("/bin/sh", ["-c", REPORTING_OK]);
    let provider = ProcessProvider::new(template, dir.clone()).with_timing(TimingSource::Reported);
    let recorder = TraceRecorder::new(Box::new(provider), "proc-rr", 0xfeed);
    let specs = [
        ExecutionSpec::new(245.3, 0.8),
        ExecutionSpec::new(100.0, 0.2),
        ExecutionSpec::new(512.5, 0.5),
    ];
    let live: Vec<_> = {
        let mut exec = recorder.backend(
            "cell-0",
            VmType::M5_8xlarge,
            &InterferenceProfile::typical(),
            7,
        );
        specs.iter().map(|s| exec.run_single(*s)).collect()
    };
    let trace = recorder.finish();

    let replayer = TraceReplayer::new(trace);
    let before = process_launches();
    let mut exec = replayer.backend(
        "cell-0",
        VmType::M5_8xlarge,
        &InterferenceProfile::typical(),
        7,
    );
    for (spec, recorded) in specs.iter().zip(&live) {
        let replayed = exec.run_single(*spec);
        assert_eq!(
            replayed.observed_time.to_bits(),
            recorded.observed_time.to_bits()
        );
        assert_eq!(replayed.elapsed.to_bits(), recorded.elapsed.to_bits());
    }
    assert_eq!(exec.failure(), None);
    assert_eq!(process_launches(), before, "replay must launch nothing");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recorded_failures_survive_the_round_trip_into_replay() {
    let _guard = launch_lock();
    let dir = work_dir("record-failure");
    let template = CommandTemplate::new("/bin/sh", ["-c", "exit 3"]);
    let provider = ProcessProvider::new(template, dir.clone());
    let recorder = TraceRecorder::new(Box::new(provider), "proc-fail", 0xfeed);
    let failure = {
        let mut exec = recorder.backend(
            "cell-0",
            VmType::M5_8xlarge,
            &InterferenceProfile::typical(),
            7,
        );
        let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
        assert_eq!(run.observed_time, f64::INFINITY);
        exec.failure().expect("live failure latched")
    };
    // The trace round-trips through its JSON wire format, failure included.
    let trace = recorder.finish();
    let text = trace.to_json();
    let trace = dg_exec::ExecutionTrace::from_json(&text).expect("trace parses");
    assert_eq!(
        trace.to_json(),
        text,
        "trace re-serializes byte-identically"
    );

    let replayer = TraceReplayer::new(trace);
    let before = process_launches();
    let mut exec = replayer.backend(
        "cell-0",
        VmType::M5_8xlarge,
        &InterferenceProfile::typical(),
        7,
    );
    let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
    assert_eq!(run.observed_time, f64::INFINITY);
    assert_eq!(run.elapsed, 0.0);
    assert_eq!(exec.failure(), Some(failure));
    assert_eq!(process_launches(), before);
    let _ = fs::remove_dir_all(&dir);
}
