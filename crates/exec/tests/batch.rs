//! The batched-execution differential battery.
//!
//! `ExecutionBackend::play_games_batch` is documented as an accounting-identical
//! reordering of the per-game loop: same outcomes, same cost, same clock, same RNG
//! stream. These tests enforce that contract across every composable backend — the
//! raw simulator, the memoizer, the surrogate, scenario wrappers (plain, coupled, and
//! integrated-load), and record→replay traces — over randomized tournaments, and pin
//! the fused fast path against the legacy scalar loop end to end.
//!
//! Every comparison is on `f64::to_bits`, not approximate equality: the batch path is
//! only allowed transforms that are bitwise invisible.

use dg_cloudsim::{set_fast_path, ExecutionSpec, InterferenceProfile, SimRng, VmType};
use dg_exec::{
    BackendProvider, ExecutionBackend, GameBatchItem, GamePlay, GameRules, MemoBackend, SimBackend,
    SimProvider, SurrogateBackend, SurrogateConfig, TraceRecorder, TraceReplayer,
};
use dg_scenario::{ScenarioBackend, ScenarioEvent, ScenarioSpec};

const VM: VmType = VmType::M5_8xlarge;

/// A randomized tournament: a few rounds, each of a few games, each of 1–8 players.
fn random_rounds(seed: u64) -> Vec<Vec<Vec<ExecutionSpec>>> {
    let mut rng = SimRng::new(seed).derive("batch-battery");
    let rounds = 1 + rng.index(3);
    (0..rounds)
        .map(|_| {
            let games = 1 + rng.index(4);
            (0..games)
                .map(|_| {
                    let players = 1 + rng.index(8);
                    (0..players)
                        .map(|_| {
                            ExecutionSpec::new(
                                rng.uniform_range(40.0, 400.0),
                                rng.uniform_range(0.0, 1.2),
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Rules alternate per round so both early-termination branches are exercised.
fn rules_for(round: usize) -> GameRules {
    if round % 2 == 0 {
        GameRules::default()
    } else {
        GameRules::playoff()
    }
}

/// Drives one tournament and returns every produced number as raw bits, in order.
///
/// Each round is committed in parallel (clock advances between rounds, so batches
/// start mid-stream), and the trailing solo run + observation prove the backend's RNG
/// stream ends in exactly the same state either way.
fn drive(
    exec: &mut dyn ExecutionBackend,
    rounds: &[Vec<Vec<ExecutionSpec>>],
    batched: bool,
) -> Vec<u64> {
    let mut bits = Vec::new();
    for (round, games) in rounds.iter().enumerate() {
        let rules = rules_for(round);
        let plays: Vec<GamePlay> = if batched {
            let items: Vec<GameBatchItem<'_>> =
                games.iter().map(|specs| GameBatchItem { specs }).collect();
            exec.play_games_batch(&items, &rules)
        } else {
            games
                .iter()
                .map(|specs| exec.play_game(specs, &rules))
                .collect()
        };
        for play in &plays {
            bits.push(play.start.as_seconds().to_bits());
            bits.push(play.elapsed.to_bits());
            bits.push(u64::from(play.early_terminated));
            bits.extend(play.observed_times.iter().map(|t| t.to_bits()));
            bits.extend(play.execution_scores.iter().map(|s| s.to_bits()));
        }
        exec.commit_parallel(&plays);
    }
    let probe = ExecutionSpec::new(130.0, 0.65);
    let run = exec.run_single(probe);
    bits.push(run.observed_time.to_bits());
    bits.push(run.elapsed.to_bits());
    bits.push(exec.observe_single_at(probe, exec.clock(), 23).to_bits());
    bits.push(exec.cost().core_hours().to_bits());
    bits.push(exec.clock().as_seconds().to_bits());
    bits
}

fn sim(seed: u64) -> Box<dyn ExecutionBackend> {
    Box::new(SimBackend::new(VM, InterferenceProfile::typical(), seed))
}

/// A scenario with every kind of timeline structure the batch path must respect.
fn eventful(name: &str, coupling: f64, integrated: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(name);
    spec.events = vec![
        ScenarioEvent::LoadShift {
            at: 60.0,
            factor: 1.5,
        },
        ScenarioEvent::Storm {
            at: 20.0,
            duration: 200.0,
            factor: 1.3,
        },
        ScenarioEvent::Diurnal {
            period: 500.0,
            amplitude: 0.4,
            phase: 0.1,
        },
        ScenarioEvent::Preemptions {
            start: 0.0,
            mean_interval: 150.0,
            downtime: 9.0,
            count: 10,
        },
    ];
    spec.load_coupling = coupling;
    if integrated {
        spec = spec.with_integrated_load();
    }
    spec
}

/// A seedable constructor for one composable backend stack.
type BackendFactory = Box<dyn Fn(u64) -> Box<dyn ExecutionBackend>>;

/// Every composable backend the batch contract covers, as seedable factories.
fn factories() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("sim", Box::new(sim)),
        (
            "memo",
            Box::new(|seed| Box::new(MemoBackend::new(sim(seed))) as Box<dyn ExecutionBackend>),
        ),
        (
            "surrogate",
            Box::new(|seed| {
                Box::new(SurrogateBackend::new(sim(seed), SurrogateConfig::default()))
                    as Box<dyn ExecutionBackend>
            }),
        ),
        (
            "scenario",
            Box::new(|seed| {
                Box::new(ScenarioBackend::new(
                    sim(seed),
                    eventful("plain", 0.0, false),
                    seed,
                )) as Box<dyn ExecutionBackend>
            }),
        ),
        (
            "scenario-coupled",
            Box::new(|seed| {
                Box::new(ScenarioBackend::new(
                    sim(seed),
                    eventful("coupled", 0.7, false),
                    seed,
                )) as Box<dyn ExecutionBackend>
            }),
        ),
        (
            "scenario-integrated",
            Box::new(|seed| {
                Box::new(ScenarioBackend::new(
                    sim(seed),
                    eventful("integrated", 0.0, true),
                    seed,
                )) as Box<dyn ExecutionBackend>
            }),
        ),
    ]
}

#[test]
fn batched_tournaments_are_bit_identical_on_every_backend() {
    for tournament in 0..64u64 {
        let rounds = random_rounds(tournament);
        for (name, factory) in factories() {
            let mut looped = factory(tournament);
            let mut batched = factory(tournament);
            let a = drive(looped.as_mut(), &rounds, false);
            let b = drive(batched.as_mut(), &rounds, true);
            assert_eq!(
                a, b,
                "tournament {tournament} on backend {name}: batch diverged from the loop"
            );
        }
    }
}

#[test]
fn recorded_batches_replay_interchangeably_with_the_loop() {
    // A trace recorded from a batched run must replay through the per-game loop (and
    // vice versa): the recorder is required to emit the identical event stream either
    // way, so traces stay mode-agnostic.
    for tournament in [2u64, 29] {
        let rounds = random_rounds(tournament);
        for (record_batched, replay_batched) in [(true, false), (false, true)] {
            let recorder = TraceRecorder::new(Box::new(SimProvider), "batch-battery", 0xBA7C);
            let recorded = {
                let mut backend =
                    recorder.backend("root", VM, &InterferenceProfile::typical(), tournament);
                drive(backend.as_mut(), &rounds, record_batched)
            };
            let trace = recorder.finish();
            let replayer = TraceReplayer::new(trace);
            let mut backend =
                replayer.backend("root", VM, &InterferenceProfile::typical(), tournament);
            let replayed = drive(backend.as_mut(), &rounds, replay_batched);
            assert_eq!(
                recorded, replayed,
                "tournament {tournament}: replay (batched={replay_batched}) diverged from \
                 recording (batched={record_batched})"
            );
        }
    }
}

#[test]
fn fused_batches_match_the_legacy_scalar_loop_end_to_end() {
    // The strongest cross-check: the legacy scalar stepping loop (fast path off,
    // per-game calls) against the fused struct-of-arrays batch path (fast path on),
    // over whole tournaments. This is the same-binary comparison the perf-smoke CI
    // job and the fig15 bench rely on for their speedup measurements.
    for tournament in [3u64, 19, 41] {
        let rounds = random_rounds(tournament);
        set_fast_path(false);
        let mut legacy = sim(tournament);
        let a = drive(legacy.as_mut(), &rounds, false);
        set_fast_path(true);
        let mut fused = sim(tournament);
        let b = drive(fused.as_mut(), &rounds, true);
        assert_eq!(
            a, b,
            "tournament {tournament}: the fused fast path diverged from the legacy loop"
        );
    }
}
