//! The `dg-obs` neutrality battery at the backend seam.
//!
//! [`ObsBackend`] is documented as a bit-transparent decorator: with observability
//! disabled it is invisible, and with it **enabled** (gate on, sinks installed, every
//! event actually constructed and delivered) the wrapped stack must still produce
//! byte-for-byte the numbers the bare stack produces. These tests enforce that over
//! every composable backend in the crate — simulator, memoizer, surrogate, scenario
//! wrapper, record→replay traces, and the real-process backend — plus the decorator's
//! side contracts: batch/unbatched interchangeability and `failure()` latching.
//!
//! The global event gate and sink registry are process-wide, so every test
//! serializes on a shared mutex and restores the disabled state before releasing it.

use dg_cloudsim::{ExecutionSpec, InterferenceProfile, SimRng, SimTime, VmType};
use dg_exec::{
    BackendProvider, CommandTemplate, ExecutionBackend, GameBatchItem, GamePlay, GameRules,
    MemoBackend, ObsBackend, ObsProvider, ProcessBackend, SimBackend, SimProvider,
    SurrogateBackend, SurrogateConfig, TraceRecorder, TraceReplayer,
};
use dg_obs::{install_sink, remove_sink, set_obs_enabled, ObsEvent, RingSink};
use dg_scenario::{ScenarioBackend, ScenarioEvent, ScenarioSpec};
use std::sync::{Arc, Mutex, MutexGuard};

const VM: VmType = VmType::M5_8xlarge;

/// Serializes the battery: the obs gate and sink registry are process-global.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` with observability fully live (gate on, a bounded ring installed) and
/// restores the disabled state afterwards, returning the result and the ring.
fn with_live_obs<T>(f: impl FnOnce() -> T) -> (T, Arc<RingSink>) {
    let ring = Arc::new(RingSink::new(65_536));
    set_obs_enabled(true);
    let id = install_sink(ring.clone());
    let result = f();
    remove_sink(id);
    set_obs_enabled(false);
    (result, ring)
}

/// A randomized tournament: a few rounds, each of a few games, each of 1–8 players.
fn random_rounds(seed: u64) -> Vec<Vec<Vec<ExecutionSpec>>> {
    let mut rng = SimRng::new(seed).derive("obs-battery");
    let rounds = 1 + rng.index(3);
    (0..rounds)
        .map(|_| {
            let games = 1 + rng.index(4);
            (0..games)
                .map(|_| {
                    let players = 1 + rng.index(8);
                    (0..players)
                        .map(|_| {
                            ExecutionSpec::new(
                                rng.uniform_range(40.0, 400.0),
                                rng.uniform_range(0.0, 1.2),
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Drives one tournament and returns every produced number as raw bits, in order.
fn drive(
    exec: &mut dyn ExecutionBackend,
    rounds: &[Vec<Vec<ExecutionSpec>>],
    batched: bool,
) -> Vec<u64> {
    let mut bits = Vec::new();
    for games in rounds {
        let rules = GameRules::default();
        let plays: Vec<GamePlay> = if batched {
            let items: Vec<GameBatchItem<'_>> =
                games.iter().map(|specs| GameBatchItem { specs }).collect();
            exec.play_games_batch(&items, &rules)
        } else {
            games
                .iter()
                .map(|specs| exec.play_game(specs, &rules))
                .collect()
        };
        for play in &plays {
            bits.push(play.start.as_seconds().to_bits());
            bits.push(play.elapsed.to_bits());
            bits.push(u64::from(play.early_terminated));
            bits.extend(play.observed_times.iter().map(|t| t.to_bits()));
            bits.extend(play.execution_scores.iter().map(|s| s.to_bits()));
        }
        exec.commit_parallel(&plays);
    }
    let probe = ExecutionSpec::new(130.0, 0.65);
    let run = exec.run_single(probe);
    bits.push(run.observed_time.to_bits());
    bits.push(run.elapsed.to_bits());
    bits.push(exec.observe_single_at(probe, exec.clock(), 23).to_bits());
    // A fork must stay instrumented without perturbing the parent's stream.
    let mut forked = exec.fork(91);
    bits.push(forked.run_single(probe).observed_time.to_bits());
    bits.push(exec.run_single(probe).observed_time.to_bits());
    bits.push(exec.cost().core_hours().to_bits());
    bits.push(exec.clock().as_seconds().to_bits());
    bits
}

fn sim(seed: u64) -> Box<dyn ExecutionBackend> {
    Box::new(SimBackend::new(VM, InterferenceProfile::typical(), seed))
}

/// A scenario exercising load shifts, storms, diurnal load, and preemptions, so the
/// decorator is proven neutral across every timeline transform (preemption strikes
/// emit their own events mid-operation).
fn eventful(seed: u64) -> Box<dyn ExecutionBackend> {
    let mut spec = ScenarioSpec::new("obs-eventful");
    spec.events = vec![
        ScenarioEvent::LoadShift {
            at: 60.0,
            factor: 1.5,
        },
        ScenarioEvent::Storm {
            at: 20.0,
            duration: 200.0,
            factor: 1.3,
        },
        ScenarioEvent::Diurnal {
            period: 500.0,
            amplitude: 0.4,
            phase: 0.1,
        },
        ScenarioEvent::Preemptions {
            start: 0.0,
            mean_interval: 150.0,
            downtime: 9.0,
            count: 10,
        },
    ];
    Box::new(ScenarioBackend::new(sim(seed), spec, seed))
}

/// A seedable constructor for one composable backend stack.
type BackendFactory = Box<dyn Fn(u64) -> Box<dyn ExecutionBackend>>;

/// Every composable backend the neutrality contract covers.
fn factories() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("sim", Box::new(sim)),
        (
            "memo",
            Box::new(|seed| Box::new(MemoBackend::new(sim(seed))) as Box<dyn ExecutionBackend>),
        ),
        (
            "surrogate",
            Box::new(|seed| {
                Box::new(SurrogateBackend::new(sim(seed), SurrogateConfig::default()))
                    as Box<dyn ExecutionBackend>
            }),
        ),
        ("scenario", Box::new(eventful)),
    ]
}

#[test]
fn instrumented_stacks_are_bit_identical_to_bare_with_obs_live() {
    let _guard = obs_lock();
    for tournament in 0..16u64 {
        let rounds = random_rounds(tournament);
        for (name, factory) in factories() {
            let mut bare = factory(tournament);
            let a = drive(bare.as_mut(), &rounds, false);
            let (b, ring) = with_live_obs(|| {
                let mut instrumented = ObsBackend::new(factory(tournament));
                drive(&mut instrumented, &rounds, false)
            });
            assert_eq!(
                a, b,
                "tournament {tournament} on {name}: instrumentation perturbed the run"
            );
            assert!(
                !ring.is_empty(),
                "tournament {tournament} on {name}: live obs produced no events"
            );
        }
    }
}

#[test]
fn instrumented_batches_interchange_with_the_bare_loop() {
    let _guard = obs_lock();
    for tournament in [3u64, 17, 40] {
        let rounds = random_rounds(tournament);
        for (name, factory) in factories() {
            let mut bare = factory(tournament);
            let looped = drive(bare.as_mut(), &rounds, false);
            let (batched, ring) = with_live_obs(|| {
                let mut instrumented = ObsBackend::new(factory(tournament));
                drive(&mut instrumented, &rounds, true)
            });
            assert_eq!(
                looped, batched,
                "tournament {tournament} on {name}: instrumented batch diverged from bare loop"
            );
            // Batch delegation emits in batch order: the game-event stream is the
            // same one the per-game loop would have produced.
            let games = ring
                .drain()
                .into_iter()
                .filter(|r| matches!(r.event, ObsEvent::Game { .. }))
                .count();
            let expected: usize = rounds.iter().map(Vec::len).sum();
            assert_eq!(games, expected, "one game event per game, in batch order");
        }
    }
}

#[test]
fn record_replay_stays_interchangeable_under_instrumentation() {
    let _guard = obs_lock();
    let tournament = 29u64;
    let rounds = random_rounds(tournament);
    // Record bare, replay instrumented with obs live: identical numbers.
    let recorder = TraceRecorder::new(Box::new(SimProvider), "obs-battery", 0xB0B);
    let recorded = {
        let mut backend = recorder.backend("root", VM, &InterferenceProfile::typical(), tournament);
        drive(backend.as_mut(), &rounds, false)
    };
    let trace = recorder.finish();
    let replayer = TraceReplayer::new(trace);
    let (replayed, _ring) = with_live_obs(|| {
        let provider = ObsProvider::new(Box::new(replayer));
        let mut backend = provider.backend("root", VM, &InterferenceProfile::typical(), tournament);
        drive(backend.as_mut(), &rounds, true)
    });
    assert_eq!(
        recorded, replayed,
        "instrumented replay diverged from bare recording"
    );
}

#[test]
fn failure_latching_passes_through_the_decorator() {
    let _guard = obs_lock();
    let dir = std::env::temp_dir().join(format!("dg-obs-failure-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let template = CommandTemplate::new("/bin/sh", ["-c", "exit 3"]);
    let inner = ProcessBackend::new(
        template,
        dir.clone(),
        VM,
        InterferenceProfile::typical(),
        42,
    );
    let ((run, failure), _ring) = with_live_obs(|| {
        let mut exec = ObsBackend::new(Box::new(inner));
        assert_eq!(exec.failure(), None);
        let run = exec.run_single(ExecutionSpec::new(100.0, 0.5));
        (run, exec.failure())
    });
    assert_eq!(run.elapsed, 0.0, "failures charge nothing through the seam");
    assert!(
        failure
            .expect("failure latched through the decorator")
            .contains("exited"),
        "the inner backend's latched failure must be visible through ObsBackend"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_seam_operation_emits_exactly_one_event() {
    let _guard = obs_lock();
    let ((), ring) = with_live_obs(|| {
        let mut exec = ObsBackend::new(sim(5));
        let specs = [
            ExecutionSpec::new(100.0, 0.3),
            ExecutionSpec::new(150.0, 0.8),
        ];
        let play = exec.play_game(&specs, &GameRules::default());
        exec.commit(&play);
        exec.run_single(specs[0]);
        exec.observe_single_at(specs[1], SimTime::from_seconds(500.0), 7);
    });
    let kinds: Vec<&'static str> = ring.drain().iter().map(|r| r.event.kind()).collect();
    assert_eq!(kinds, ["game", "solo", "probe"]);
}

#[test]
fn disabled_obs_emits_nothing_through_the_decorator() {
    let _guard = obs_lock();
    let ring = Arc::new(RingSink::new(16));
    set_obs_enabled(false);
    let id = install_sink(ring.clone());
    let mut exec = ObsBackend::new(sim(6));
    exec.run_single(ExecutionSpec::new(90.0, 0.4));
    remove_sink(id);
    assert!(ring.is_empty(), "gate off: no events may reach sinks");
}
