//! Deterministic expansion of a scenario's event timeline for one backend seed.

use crate::spec::{ScenarioEvent, ScenarioSpec};
use dg_cloudsim::{hash_unit, mix};
use std::cell::RefCell;

thread_local! {
    /// Scratch for [`Timeline::integrate_load`]'s piece boundaries. Integrated-load
    /// scenarios call it once per observed time on the hot game path; reusing one
    /// per-thread buffer keeps that path allocation-free after warm-up. (It cannot
    /// live on `Timeline` itself: the timeline derives `Clone + PartialEq` and is
    /// shared immutably.)
    static CUTS: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// A storm interval: `[at, at + duration)` multiplies observed times by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StormWindow {
    at: f64,
    duration: f64,
    factor: f64,
}

/// A diurnal curve (see [`ScenarioEvent::Diurnal`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct DiurnalCurve {
    period: f64,
    amplitude: f64,
    phase: f64,
}

/// The concrete, per-seed realisation of a [`ScenarioSpec`]'s timeline.
///
/// Expansion is a pure function of `(spec, seed)`: generator events draw their
/// schedules from [`hash_unit`]/[`mix`] streams keyed by the seed and the event's
/// position, so the same scenario yields the same incidents on the same backend every
/// run, and *different* incidents on backends with different seeds (two regions of one
/// tournament fail independently, the way distinct spot instances do).
///
/// The load factor ([`load_factor`](Self::load_factor)) and price factor
/// ([`price_factor`](Self::price_factor)) are pure functions of time; preemptions are
/// the one stateful part and are consumed by
/// [`ScenarioBackend`](crate::ScenarioBackend) as its clock advances.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// `(at, factor)`, sorted by time: the persistent load level from `at` on.
    shifts: Vec<(f64, f64)>,
    storms: Vec<StormWindow>,
    diurnals: Vec<DiurnalCurve>,
    /// `(at, downtime)`, sorted by time.
    preemptions: Vec<(f64, f64)>,
    /// `(at, factor)`, sorted by time: the billing multiplier from `at` on.
    prices: Vec<(f64, f64)>,
}

/// Domain-separation tags for the generator streams.
const TAG_PREEMPT_GAP: u64 = 0x9e37_0001;
const TAG_STORM_HIT: u64 = 0x9e37_0002;
const TAG_STORM_OFFSET: u64 = 0x9e37_0003;

impl Timeline {
    /// Expands `spec` for one backend seed. Generator events at position `i` in the
    /// spec draw from streams keyed `mix(mix(seed, i), tag)`, so reordering unrelated
    /// events does not perturb a generator's schedule.
    pub fn expand(spec: &ScenarioSpec, seed: u64) -> Timeline {
        let mut timeline = Timeline {
            shifts: Vec::new(),
            storms: Vec::new(),
            diurnals: Vec::new(),
            preemptions: Vec::new(),
            prices: Vec::new(),
        };
        for (position, event) in spec.events.iter().enumerate() {
            let stream = mix(seed, position as u64);
            match event {
                ScenarioEvent::LoadShift { at, factor } => timeline.shifts.push((*at, *factor)),
                ScenarioEvent::Storm {
                    at,
                    duration,
                    factor,
                } => timeline.storms.push(StormWindow {
                    at: *at,
                    duration: *duration,
                    factor: *factor,
                }),
                ScenarioEvent::StormFront {
                    start,
                    period,
                    chance,
                    duration,
                    factor,
                    windows,
                } => {
                    for window in 0..u64::from(*windows) {
                        if hash_unit(mix(stream, TAG_STORM_HIT), window) < *chance {
                            let slack = (period - duration).max(0.0);
                            let offset = hash_unit(mix(stream, TAG_STORM_OFFSET), window) * slack;
                            timeline.storms.push(StormWindow {
                                at: start + window as f64 * period + offset,
                                duration: *duration,
                                factor: *factor,
                            });
                        }
                    }
                }
                ScenarioEvent::Preemption { at, downtime } => {
                    timeline.preemptions.push((*at, *downtime))
                }
                ScenarioEvent::Preemptions {
                    start,
                    mean_interval,
                    downtime,
                    count,
                } => {
                    let mut t = *start;
                    for draw in 0..u64::from(*count) {
                        // Gaps are uniform on [0.25, 1.75] x mean_interval, so the mean
                        // gap is exactly mean_interval.
                        let gap = mean_interval
                            * (0.25 + 1.5 * hash_unit(mix(stream, TAG_PREEMPT_GAP), draw));
                        t += gap;
                        timeline.preemptions.push((t, *downtime));
                    }
                }
                ScenarioEvent::PriceChange { at, factor } => timeline.prices.push((*at, *factor)),
                ScenarioEvent::Diurnal {
                    period,
                    amplitude,
                    phase,
                } => timeline.diurnals.push(DiurnalCurve {
                    period: *period,
                    amplitude: *amplitude,
                    phase: *phase,
                }),
            }
        }
        timeline.shifts.sort_by(|a, b| a.0.total_cmp(&b.0));
        timeline.storms.sort_by(|a, b| a.at.total_cmp(&b.at));
        timeline.preemptions.sort_by(|a, b| a.0.total_cmp(&b.0));
        timeline.prices.sort_by(|a, b| a.0.total_cmp(&b.0));
        timeline
    }

    /// True when the timeline modifies nothing at any time.
    pub fn is_empty(&self) -> bool {
        self.shifts.is_empty()
            && self.storms.is_empty()
            && self.diurnals.is_empty()
            && self.preemptions.is_empty()
            && self.prices.is_empty()
    }

    /// The ambient load factor at time `t` (seconds): the persistent level of the last
    /// load shift at or before `t` (default `1.0`), times every active storm's factor,
    /// times every diurnal curve. Observed execution times scale by this factor.
    pub fn load_factor(&self, t: f64) -> f64 {
        let mut factor = last_level(&self.shifts, t);
        for storm in &self.storms {
            if t >= storm.at && t < storm.at + storm.duration {
                factor *= storm.factor;
            }
        }
        for curve in &self.diurnals {
            let angle = 2.0 * std::f64::consts::PI * (t / curve.period + curve.phase);
            factor *= 1.0 + curve.amplitude * (1.0 - angle.cos()) / 2.0;
        }
        factor
    }

    /// The integral of [`load_factor`](Self::load_factor) over `[start, end)`.
    ///
    /// Shift and storm edges are exact breakpoints: within each piece the step part of
    /// the factor is constant, so only the diurnal curves vary. A single diurnal curve
    /// is integrated analytically; the product of two or more is integrated by
    /// composite Simpson's rule per piece. With no events in the window this reduces
    /// to `load_factor(start) * (end - start)` exactly, and an operation straddling a
    /// [`LoadShift`](ScenarioEvent::LoadShift) is charged each level for precisely the
    /// wall-clock it spent under that level — the fix for sampling the factor once at
    /// op start and holding it stale for the whole span.
    pub fn integrate_load(&self, start: f64, end: f64) -> f64 {
        // `partial_cmp` so NaN endpoints also take the zero-span branch.
        if end.partial_cmp(&start) != Some(std::cmp::Ordering::Greater) {
            return 0.0;
        }
        CUTS.with(|scratch| {
            let mut cuts = scratch.borrow_mut();
            cuts.clear();
            cuts.push(start);
            cuts.push(end);
            for (at, _) in &self.shifts {
                if *at > start && *at < end {
                    cuts.push(*at);
                }
            }
            for storm in &self.storms {
                for edge in [storm.at, storm.at + storm.duration] {
                    if edge > start && edge < end {
                        cuts.push(edge);
                    }
                }
            }
            cuts.sort_by(|a, b| a.total_cmp(b));
            cuts.dedup();
            let mut total = 0.0;
            for piece in cuts.windows(2) {
                let (a, b) = (piece[0], piece[1]);
                total += self.step_factor(0.5 * (a + b)) * self.diurnal_integral(a, b);
            }
            total
        })
    }

    /// The piecewise-constant part of the load factor at `t`: shifts times storms.
    fn step_factor(&self, t: f64) -> f64 {
        let mut factor = last_level(&self.shifts, t);
        for storm in &self.storms {
            if t >= storm.at && t < storm.at + storm.duration {
                factor *= storm.factor;
            }
        }
        factor
    }

    /// The product of all diurnal curves at `t` (`1.0` with none).
    fn diurnal_product(&self, t: f64) -> f64 {
        let mut factor = 1.0;
        for curve in &self.diurnals {
            let angle = 2.0 * std::f64::consts::PI * (t / curve.period + curve.phase);
            factor *= 1.0 + curve.amplitude * (1.0 - angle.cos()) / 2.0;
        }
        factor
    }

    /// `∫ diurnal_product` over `[a, b]`: exact for zero or one curve, composite
    /// Simpson's rule (32 intervals) for the product of several.
    fn diurnal_integral(&self, a: f64, b: f64) -> f64 {
        match self.diurnals.len() {
            0 => b - a,
            1 => {
                // ∫ 1 + A(1 - cos θ(t))/2 dt with θ(t) = 2π(t/P + φ):
                // (1 + A/2)(b - a) - (A/2)(P/2π)(sin θ(b) - sin θ(a)).
                let curve = &self.diurnals[0];
                let theta = |t: f64| 2.0 * std::f64::consts::PI * (t / curve.period + curve.phase);
                let half_amp = curve.amplitude / 2.0;
                (1.0 + half_amp) * (b - a)
                    - half_amp * curve.period / (2.0 * std::f64::consts::PI)
                        * (theta(b).sin() - theta(a).sin())
            }
            _ => {
                const INTERVALS: usize = 32;
                let h = (b - a) / INTERVALS as f64;
                let mut sum = self.diurnal_product(a) + self.diurnal_product(b);
                for i in 1..INTERVALS {
                    let weight = if i % 2 == 1 { 4.0 } else { 2.0 };
                    sum += weight * self.diurnal_product(a + i as f64 * h);
                }
                sum * h / 3.0
            }
        }
    }

    /// The billing multiplier at time `t`: the factor of the last price change at or
    /// before `t` (default `1.0`).
    pub fn price_factor(&self, t: f64) -> f64 {
        last_level(&self.prices, t)
    }

    /// The expanded preemption schedule, `(at, downtime)` sorted by time.
    pub fn preemptions(&self) -> &[(f64, f64)] {
        &self.preemptions
    }
}

/// The level of the last `(at, level)` step at or before `t`; `1.0` before the first.
fn last_level(steps: &[(f64, f64)], t: f64) -> f64 {
    let next = steps.partition_point(|(at, _)| *at <= t);
    if next == 0 {
        1.0
    } else {
        steps[next - 1].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with(events: Vec<ScenarioEvent>) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new("unit");
        spec.events = events;
        spec
    }

    #[test]
    fn empty_scenario_is_the_identity() {
        let timeline = Timeline::expand(&ScenarioSpec::steady(), 7);
        assert!(timeline.is_empty());
        for t in [0.0, 10.0, 1e6] {
            assert_eq!(timeline.load_factor(t), 1.0);
            assert_eq!(timeline.price_factor(t), 1.0);
        }
    }

    #[test]
    fn load_shifts_step_the_persistent_level() {
        let timeline = Timeline::expand(
            &spec_with(vec![
                ScenarioEvent::LoadShift {
                    at: 100.0,
                    factor: 1.5,
                },
                ScenarioEvent::LoadShift {
                    at: 200.0,
                    factor: 2.0,
                },
            ]),
            1,
        );
        assert_eq!(timeline.load_factor(99.0), 1.0);
        assert_eq!(timeline.load_factor(100.0), 1.5);
        assert_eq!(timeline.load_factor(199.0), 1.5);
        assert_eq!(timeline.load_factor(5000.0), 2.0);
    }

    #[test]
    fn storms_apply_only_inside_their_window() {
        let timeline = Timeline::expand(
            &spec_with(vec![ScenarioEvent::Storm {
                at: 50.0,
                duration: 10.0,
                factor: 3.0,
            }]),
            1,
        );
        assert_eq!(timeline.load_factor(49.0), 1.0);
        assert_eq!(timeline.load_factor(50.0), 3.0);
        assert_eq!(timeline.load_factor(59.9), 3.0);
        assert_eq!(timeline.load_factor(60.0), 1.0);
    }

    #[test]
    fn diurnal_curve_peaks_mid_period_and_returns_to_baseline() {
        let timeline = Timeline::expand(
            &spec_with(vec![ScenarioEvent::Diurnal {
                period: 100.0,
                amplitude: 1.0,
                phase: 0.0,
            }]),
            1,
        );
        assert!((timeline.load_factor(0.0) - 1.0).abs() < 1e-12);
        assert!((timeline.load_factor(50.0) - 2.0).abs() < 1e-12);
        assert!((timeline.load_factor(100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn price_changes_step_the_billing_multiplier() {
        let timeline = Timeline::expand(
            &spec_with(vec![ScenarioEvent::PriceChange {
                at: 10.0,
                factor: 0.4,
            }]),
            1,
        );
        assert_eq!(timeline.price_factor(0.0), 1.0);
        assert_eq!(timeline.price_factor(10.0), 0.4);
        // Prices never leak into the load factor.
        assert_eq!(timeline.load_factor(20.0), 1.0);
    }

    #[test]
    fn generators_are_deterministic_per_seed_and_differ_across_seeds() {
        let spec = spec_with(vec![ScenarioEvent::Preemptions {
            start: 0.0,
            mean_interval: 100.0,
            downtime: 5.0,
            count: 16,
        }]);
        let a = Timeline::expand(&spec, 11);
        let b = Timeline::expand(&spec, 11);
        assert_eq!(a, b, "same (spec, seed) must expand identically");
        let c = Timeline::expand(&spec, 12);
        assert_ne!(
            a.preemptions(),
            c.preemptions(),
            "different seeds must draw different schedules"
        );
        assert_eq!(a.preemptions().len(), 16);
        // Sorted, positive gaps within the documented envelope.
        let gaps: Vec<f64> = a
            .preemptions()
            .windows(2)
            .map(|w| w[1].0 - w[0].0)
            .collect();
        assert!(gaps.iter().all(|g| *g >= 25.0 - 1e-9 && *g <= 175.0 + 1e-9));
    }

    #[test]
    fn integrate_load_matches_closed_forms() {
        // Constant load: the integral is exactly factor x width.
        let flat = Timeline::expand(&ScenarioSpec::steady(), 7);
        assert_eq!(flat.integrate_load(12.0, 112.0), 100.0);
        assert_eq!(flat.integrate_load(50.0, 50.0), 0.0);
        assert_eq!(
            flat.integrate_load(50.0, 40.0),
            0.0,
            "inverted window is empty"
        );

        // A window straddling a load shift charges each level for its own span.
        let shifted = Timeline::expand(
            &spec_with(vec![ScenarioEvent::LoadShift {
                at: 50.0,
                factor: 2.0,
            }]),
            1,
        );
        assert!((shifted.integrate_load(0.0, 100.0) - 150.0).abs() < 1e-9);

        // A storm contributes only its overlap with the window.
        let stormy = Timeline::expand(
            &spec_with(vec![ScenarioEvent::Storm {
                at: 40.0,
                duration: 20.0,
                factor: 3.0,
            }]),
            1,
        );
        assert!((stormy.integrate_load(0.0, 100.0) - (80.0 + 20.0 * 3.0)).abs() < 1e-9);

        // One full diurnal period integrates to (1 + amplitude/2) x period exactly.
        let diurnal = Timeline::expand(
            &spec_with(vec![ScenarioEvent::Diurnal {
                period: 100.0,
                amplitude: 1.0,
                phase: 0.25,
            }]),
            1,
        );
        assert!((diurnal.integrate_load(0.0, 100.0) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_load_agrees_with_fine_riemann_sums() {
        // Two overlapping diurnals plus a shift and a storm: compare the piecewise
        // integrator against a brute-force midpoint sum with a tiny step.
        let timeline = Timeline::expand(
            &spec_with(vec![
                ScenarioEvent::LoadShift {
                    at: 130.0,
                    factor: 1.6,
                },
                ScenarioEvent::Storm {
                    at: 60.0,
                    duration: 35.0,
                    factor: 2.2,
                },
                ScenarioEvent::Diurnal {
                    period: 90.0,
                    amplitude: 0.8,
                    phase: 0.1,
                },
                ScenarioEvent::Diurnal {
                    period: 230.0,
                    amplitude: 0.5,
                    phase: 0.6,
                },
            ]),
            1,
        );
        let (start, end) = (10.0, 310.0);
        let steps = 600_000;
        let h = (end - start) / steps as f64;
        let brute: f64 = (0..steps)
            .map(|i| timeline.load_factor(start + (i as f64 + 0.5) * h) * h)
            .sum();
        let fast = timeline.integrate_load(start, end);
        assert!(
            (fast - brute).abs() < 1e-4 * brute,
            "piecewise {fast} vs brute-force {brute}"
        );
    }

    #[test]
    fn storm_front_respects_chance_bounds() {
        let always = spec_with(vec![ScenarioEvent::StormFront {
            start: 0.0,
            period: 100.0,
            chance: 1.0,
            duration: 10.0,
            factor: 2.0,
            windows: 8,
        }]);
        assert_eq!(Timeline::expand(&always, 3).storms.len(), 8);
        let never = spec_with(vec![ScenarioEvent::StormFront {
            start: 0.0,
            period: 100.0,
            chance: 0.0,
            duration: 10.0,
            factor: 2.0,
            windows: 8,
        }]);
        assert!(Timeline::expand(&never, 3).storms.is_empty());
    }
}
