//! Declarative scenario specifications and the built-in scenario pack.

use crate::timeline::Timeline;
use dg_cloudsim::{InterferenceProfile, VmType};
use dg_exec::json::{
    self, fnv1a, parse_profile, push_f64, push_key, push_profile, push_str_literal, JsonValue,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One entry of a scenario's event timeline.
///
/// Point events carry absolute simulated-time anchors (`at`, seconds). Generator events
/// (`Preemptions`, `StormFront`) expand into point events deterministically per backend
/// seed when the [`Timeline`](crate::Timeline) is built, so two backends with the same
/// scenario but different seeds see *individually reproducible but distinct* incident
/// schedules — the way two tenants of the same cloud do. `Diurnal` is a continuous
/// curve rather than an event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Co-tenant arrival/departure: from `at` on, the ambient load level is `factor`
    /// (an absolute multiplier on observed times; `1.0` is the unperturbed node, values
    /// below `1.0` model departures that leave the node quieter than at start).
    LoadShift {
        /// Seconds at which the shift takes effect.
        at: f64,
        /// The new persistent load factor.
        factor: f64,
    },
    /// A transient slowdown storm: for `duration` seconds starting at `at`, observed
    /// times are additionally multiplied by `factor`.
    Storm {
        /// Seconds at which the storm begins.
        at: f64,
        /// Storm length in seconds.
        duration: f64,
        /// Multiplicative slowdown while the storm is active.
        factor: f64,
    },
    /// A seeded storm generator: each of the `windows` consecutive windows of `period`
    /// seconds (starting at `start`) contains, with probability `chance`, one storm of
    /// the given `duration` and `factor` at a pseudo-random offset.
    StormFront {
        /// Seconds at which the first window opens.
        start: f64,
        /// Window length in seconds.
        period: f64,
        /// Per-window storm probability, in `[0, 1]`.
        chance: f64,
        /// Storm length in seconds.
        duration: f64,
        /// Multiplicative slowdown while a storm is active.
        factor: f64,
        /// Number of windows to draw.
        windows: u32,
    },
    /// A spot-instance preemption at `at`: the operation in progress loses its work,
    /// the node is down for `downtime` seconds, and the operation restarts from
    /// scratch. A preemption whose time passes while the node is idle is skipped.
    Preemption {
        /// Seconds at which the instance is reclaimed.
        at: f64,
        /// Seconds until a replacement instance is up.
        downtime: f64,
    },
    /// A seeded preemption generator: `count` preemptions whose gaps are drawn
    /// uniformly from `[0.25, 1.75] × mean_interval` starting at `start`.
    Preemptions {
        /// Seconds before the first gap begins.
        start: f64,
        /// Mean seconds between consecutive preemptions.
        mean_interval: f64,
        /// Seconds until a replacement instance is up, per preemption.
        downtime: f64,
        /// Number of preemptions to draw.
        count: u32,
    },
    /// A spot-market price change: from `at` on, every committed core-hour is billed at
    /// `factor` times the VM's on-demand price
    /// (see [`ScenarioBackend::billed_dollars`](crate::ScenarioBackend::billed_dollars)).
    PriceChange {
        /// Seconds at which the new price takes effect.
        at: f64,
        /// Price multiplier relative to the on-demand hourly price.
        factor: f64,
    },
    /// A diurnal load curve: observed times are continuously multiplied by
    /// `1 + amplitude × (1 − cos(2π(t/period + phase)))/2`, peaking mid-period.
    Diurnal {
        /// Curve period in seconds (e.g. `86_400` for a daily cycle).
        period: f64,
        /// Peak extra slowdown at the top of the curve.
        amplitude: f64,
        /// Phase offset in periods (`0.5` starts at the peak).
        phase: f64,
    },
}

impl ScenarioEvent {
    /// The event with its time anchor shifted `dt` seconds later (used by
    /// [`ScenarioSpec::then`]). Diurnal curves shift phase so the shifted curve
    /// evaluates at `t` what the original evaluated at `t − dt`.
    fn shifted(&self, dt: f64) -> ScenarioEvent {
        let mut event = self.clone();
        match &mut event {
            ScenarioEvent::LoadShift { at, .. }
            | ScenarioEvent::Storm { at, .. }
            | ScenarioEvent::Preemption { at, .. }
            | ScenarioEvent::PriceChange { at, .. } => *at += dt,
            ScenarioEvent::StormFront { start, .. } | ScenarioEvent::Preemptions { start, .. } => {
                *start += dt
            }
            ScenarioEvent::Diurnal { period, phase, .. } => *phase -= dt / *period,
        }
        event
    }

    /// The event with its time axis stretched by `k` (used by [`ScenarioSpec::scale`]):
    /// anchors, durations, periods, and intervals all multiply; factors, probabilities,
    /// and counts are untouched.
    fn time_scaled(&self, k: f64) -> ScenarioEvent {
        let mut event = self.clone();
        match &mut event {
            ScenarioEvent::LoadShift { at, .. } | ScenarioEvent::PriceChange { at, .. } => *at *= k,
            ScenarioEvent::Storm { at, duration, .. } => {
                *at *= k;
                *duration *= k;
            }
            ScenarioEvent::StormFront {
                start,
                period,
                duration,
                ..
            } => {
                *start *= k;
                *period *= k;
                *duration *= k;
            }
            ScenarioEvent::Preemption { at, downtime } => {
                *at *= k;
                *downtime *= k;
            }
            ScenarioEvent::Preemptions {
                start,
                mean_interval,
                downtime,
                ..
            } => {
                *start *= k;
                *mean_interval *= k;
                *downtime *= k;
            }
            ScenarioEvent::Diurnal { period, .. } => *period *= k,
        }
        event
    }

    /// Validates one event.
    ///
    /// # Panics
    ///
    /// Panics when a time anchor is negative, a duration/period/interval is not
    /// strictly positive, a factor is not finite and positive, or a probability is
    /// outside `[0, 1]`.
    fn validate(&self) {
        let anchor = |at: f64| assert!(at.is_finite() && at >= 0.0, "event time must be >= 0");
        let span = |d: f64| assert!(d.is_finite() && d > 0.0, "durations/periods must be > 0");
        let load = |f: f64| assert!(f.is_finite() && f > 0.0, "factors must be finite and > 0");
        match self {
            ScenarioEvent::LoadShift { at, factor } | ScenarioEvent::PriceChange { at, factor } => {
                anchor(*at);
                load(*factor);
            }
            ScenarioEvent::Storm {
                at,
                duration,
                factor,
            } => {
                anchor(*at);
                span(*duration);
                load(*factor);
            }
            ScenarioEvent::StormFront {
                start,
                period,
                chance,
                duration,
                factor,
                ..
            } => {
                anchor(*start);
                span(*period);
                span(*duration);
                load(*factor);
                assert!(
                    (0.0..=1.0).contains(chance),
                    "storm chance must be in [0, 1]"
                );
            }
            ScenarioEvent::Preemption { at, downtime } => {
                anchor(*at);
                assert!(
                    downtime.is_finite() && *downtime >= 0.0,
                    "downtime must be >= 0"
                );
            }
            ScenarioEvent::Preemptions {
                start,
                mean_interval,
                downtime,
                ..
            } => {
                anchor(*start);
                span(*mean_interval);
                assert!(
                    downtime.is_finite() && *downtime >= 0.0,
                    "downtime must be >= 0"
                );
            }
            ScenarioEvent::Diurnal {
                period,
                amplitude,
                phase,
            } => {
                span(*period);
                assert!(
                    amplitude.is_finite() && *amplitude >= 0.0,
                    "amplitude must be >= 0"
                );
                assert!(phase.is_finite(), "phase must be finite");
            }
        }
    }

    fn op(&self) -> &'static str {
        match self {
            ScenarioEvent::LoadShift { .. } => "load",
            ScenarioEvent::Storm { .. } => "storm",
            ScenarioEvent::StormFront { .. } => "storm_front",
            ScenarioEvent::Preemption { .. } => "preempt",
            ScenarioEvent::Preemptions { .. } => "preemptions",
            ScenarioEvent::PriceChange { .. } => "price",
            ScenarioEvent::Diurnal { .. } => "diurnal",
        }
    }

    fn to_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        push_key(out, &mut first, "op");
        push_str_literal(out, self.op());
        let num = |out: &mut String, first: &mut bool, key: &str, value: f64| {
            push_key(out, first, key);
            push_f64(out, value);
        };
        match self {
            ScenarioEvent::LoadShift { at, factor } | ScenarioEvent::PriceChange { at, factor } => {
                num(out, &mut first, "at", *at);
                num(out, &mut first, "factor", *factor);
            }
            ScenarioEvent::Storm {
                at,
                duration,
                factor,
            } => {
                num(out, &mut first, "at", *at);
                num(out, &mut first, "duration", *duration);
                num(out, &mut first, "factor", *factor);
            }
            ScenarioEvent::StormFront {
                start,
                period,
                chance,
                duration,
                factor,
                windows,
            } => {
                num(out, &mut first, "start", *start);
                num(out, &mut first, "period", *period);
                num(out, &mut first, "chance", *chance);
                num(out, &mut first, "duration", *duration);
                num(out, &mut first, "factor", *factor);
                push_key(out, &mut first, "windows");
                let _ = write!(out, "{windows}");
            }
            ScenarioEvent::Preemption { at, downtime } => {
                num(out, &mut first, "at", *at);
                num(out, &mut first, "downtime", *downtime);
            }
            ScenarioEvent::Preemptions {
                start,
                mean_interval,
                downtime,
                count,
            } => {
                num(out, &mut first, "start", *start);
                num(out, &mut first, "mean_interval", *mean_interval);
                num(out, &mut first, "downtime", *downtime);
                push_key(out, &mut first, "count");
                let _ = write!(out, "{count}");
            }
            ScenarioEvent::Diurnal {
                period,
                amplitude,
                phase,
            } => {
                num(out, &mut first, "period", *period);
                num(out, &mut first, "amplitude", *amplitude);
                num(out, &mut first, "phase", *phase);
            }
        }
        out.push('}');
    }

    fn from_value(value: &JsonValue) -> Result<ScenarioEvent, String> {
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(JsonValue::number_token)
                .and_then(|t| t.parse::<f64>().ok())
                .ok_or_else(|| format!("event field {key:?} is not a number"))
        };
        let int = |key: &str| -> Result<u32, String> {
            value
                .get(key)
                .and_then(JsonValue::number_token)
                .and_then(|t| t.parse::<u32>().ok())
                .ok_or_else(|| format!("event field {key:?} is not a u32"))
        };
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "event has no \"op\"".to_string())?;
        let event = match op {
            "load" => ScenarioEvent::LoadShift {
                at: num("at")?,
                factor: num("factor")?,
            },
            "storm" => ScenarioEvent::Storm {
                at: num("at")?,
                duration: num("duration")?,
                factor: num("factor")?,
            },
            "storm_front" => ScenarioEvent::StormFront {
                start: num("start")?,
                period: num("period")?,
                chance: num("chance")?,
                duration: num("duration")?,
                factor: num("factor")?,
                windows: int("windows")?,
            },
            "preempt" => ScenarioEvent::Preemption {
                at: num("at")?,
                downtime: num("downtime")?,
            },
            "preemptions" => ScenarioEvent::Preemptions {
                start: num("start")?,
                mean_interval: num("mean_interval")?,
                downtime: num("downtime")?,
                count: int("count")?,
            },
            "price" => ScenarioEvent::PriceChange {
                at: num("at")?,
                factor: num("factor")?,
            },
            "diurnal" => ScenarioEvent::Diurnal {
                period: num("period")?,
                amplitude: num("amplitude")?,
                phase: num("phase")?,
            },
            other => return Err(format!("unknown scenario event op {other:?}")),
        };
        Ok(event)
    }
}

/// A declarative, composable description of a cloud scenario: an optional base
/// interference-profile override, a VM fleet for forked sub-environments, and a
/// deterministic event timeline.
///
/// Scenarios are pure data — canonical-JSON serializable ([`to_json`](Self::to_json) /
/// [`from_json`](Self::from_json)) with a stable [`fingerprint`](Self::fingerprint),
/// like `CampaignSpec`. Execution semantics live in
/// [`ScenarioBackend`](crate::ScenarioBackend), which applies the timeline over any
/// inner [`ExecutionBackend`](dg_exec::ExecutionBackend). The built-in
/// [`pack`](Self::pack) names the standard scenarios; the [`then`](Self::then) /
/// [`overlay`](Self::overlay) / [`scale`](Self::scale) combinators synthesize new ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name: the label cells and reports carry (`"steady"` is the default
    /// pass-through scenario).
    pub name: String,
    /// When set, backends run under this interference profile instead of the one the
    /// caller (e.g. the campaign cell's profile axis) requested.
    pub profile: Option<InterferenceProfile>,
    /// Heterogeneous fleet: forked sub-environment `j` (a tournament region) runs at
    /// the relative hardware speed of `fleet[j % len]` instead of the root VM's. Empty
    /// means a homogeneous fleet.
    pub fleet: Vec<VmType>,
    /// The event timeline (order irrelevant; expansion sorts by time).
    pub events: Vec<ScenarioEvent>,
    /// When `true`, long operations are scaled by the load factor *integrated
    /// piecewise* over `[start, start + duration)` instead of by the factor sampled
    /// once at `start` — so an operation straddling a `LoadShift`/`Storm` boundary
    /// feels the new regime for exactly the fraction of its span it overlaps. Off by
    /// default: the sampled-at-start behaviour (and its byte-identical goldens and
    /// fingerprints) is preserved, and the flag is only serialized when set.
    pub integrate_load: bool,
    /// How strongly the load factor bites through each configuration's interference
    /// *sensitivity* instead of uniformly, in `[0, 1]`. At `0.0` (the default) load is
    /// a pure machine-level multiplier: every configuration slows down by the same
    /// factor, so a regime change can never reorder the configuration space. At `c`,
    /// an operation by a spec with sensitivity `s` is scaled by
    /// `load^((1 - c) + c * s / 0.6)` — robust configurations (low `s`) shrug storms
    /// off while fragile ones are amplified, so high-load regimes genuinely favour
    /// different champions than quiet ones (the non-stationary reordering TUNA
    /// observes on real co-located nodes). Only serialized when non-zero, so
    /// pre-existing canonical forms and fingerprints stay byte-identical.
    pub load_coupling: f64,
}

impl ScenarioSpec {
    /// A named scenario with no profile override, a homogeneous fleet, and an empty
    /// timeline — extend it by pushing events.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            profile: None,
            fleet: Vec::new(),
            events: Vec::new(),
            integrate_load: false,
            load_coupling: 0.0,
        }
    }

    /// The same scenario with piecewise load-factor integration enabled (see
    /// [`integrate_load`](Self::integrate_load)).
    pub fn with_integrated_load(mut self) -> Self {
        self.integrate_load = true;
        self
    }

    /// The same scenario with sensitivity-coupled load (see
    /// [`load_coupling`](Self::load_coupling)).
    ///
    /// # Panics
    ///
    /// Panics if `coupling` is outside `[0, 1]`.
    pub fn with_load_coupling(mut self, coupling: f64) -> Self {
        assert!(
            coupling.is_finite() && (0.0..=1.0).contains(&coupling),
            "load coupling must be in [0, 1], got {coupling}"
        );
        self.load_coupling = coupling;
        self
    }

    /// The default scenario: an unperturbed node. [`is_passthrough`](Self::is_passthrough)
    /// holds, so backends run unwrapped and results are byte-identical to scenario-less
    /// execution.
    pub fn steady() -> Self {
        Self::new("steady")
    }

    /// True when the scenario changes nothing: no profile override, no fleet, no
    /// events. Pass-through scenarios execute without a wrapper at all.
    pub fn is_passthrough(&self) -> bool {
        self.profile.is_none() && self.fleet.is_empty() && self.events.is_empty()
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or any event is invalid (see
    /// [`ScenarioEvent`] field docs for the constraints).
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "scenario needs a name");
        assert!(
            self.load_coupling.is_finite() && (0.0..=1.0).contains(&self.load_coupling),
            "load coupling must be in [0, 1], got {}",
            self.load_coupling
        );
        for event in &self.events {
            event.validate();
        }
    }

    /// Sequencing combinator: this scenario's full timeline overlaid with `next`'s
    /// shifted `at` seconds later. Profile and fleet come from `self` unless unset/empty,
    /// in which case `next`'s apply.
    pub fn then(&self, at: f64, next: &ScenarioSpec) -> ScenarioSpec {
        assert!(at.is_finite() && at >= 0.0, "`then` offset must be >= 0");
        let mut combined = self.overlay(next);
        combined.name = format!("{}-then-{}", self.name, next.name);
        combined.events = self.events.clone();
        combined
            .events
            .extend(next.events.iter().map(|e| e.shifted(at)));
        combined
    }

    /// Parallel-composition combinator: both timelines apply simultaneously
    /// (load factors multiply where they overlap). Profile and fleet come from `self`
    /// unless unset/empty.
    pub fn overlay(&self, other: &ScenarioSpec) -> ScenarioSpec {
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        ScenarioSpec {
            name: format!("{}+{}", self.name, other.name),
            profile: self.profile.clone().or_else(|| other.profile.clone()),
            fleet: if self.fleet.is_empty() {
                other.fleet.clone()
            } else {
                self.fleet.clone()
            },
            events,
            integrate_load: self.integrate_load || other.integrate_load,
            load_coupling: self.load_coupling.max(other.load_coupling),
        }
    }

    /// Delay combinator: the same scenario with every event arriving `dt` seconds
    /// later — the "neighbour moves in mid-flight" variant of a timeline. Unlike
    /// [`then`](Self::then) the name, profile, and fleet are preserved, so a delayed
    /// pack scenario keeps its report column.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not finite and non-negative.
    pub fn delayed(&self, dt: f64) -> ScenarioSpec {
        assert!(dt.is_finite() && dt >= 0.0, "delay must be >= 0");
        ScenarioSpec {
            events: self.events.iter().map(|e| e.shifted(dt)).collect(),
            ..self.clone()
        }
    }

    /// Time-stretching combinator: every anchor, duration, period, and interval is
    /// multiplied by `k` (`k > 1` slows the scenario down, `k < 1` compresses it).
    /// Factors and probabilities are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite and strictly positive.
    pub fn scale(&self, k: f64) -> ScenarioSpec {
        assert!(k.is_finite() && k > 0.0, "time scale must be > 0");
        ScenarioSpec {
            name: format!("{}x{k}", self.name),
            profile: self.profile.clone(),
            fleet: self.fleet.clone(),
            events: self.events.iter().map(|e| e.time_scaled(k)).collect(),
            integrate_load: self.integrate_load,
            load_coupling: self.load_coupling,
        }
    }

    /// Expands the timeline for one backend's `seed` (see [`Timeline`]).
    pub fn timeline(&self, seed: u64) -> Timeline {
        Timeline::expand(self, seed)
    }

    /// The built-in scenario pack, in stable order. `steady` is first; the rest
    /// exercise the dynamic regimes TUNA and ExpoCloud identify as the hard cases:
    /// diurnal cycles, bursty neighbours, mid-run regime escalation, preemption-heavy
    /// spot fleets, heterogeneous hardware, and the two price/noise trade-off corners.
    pub fn pack() -> Vec<ScenarioSpec> {
        let mut diurnal = ScenarioSpec::new("diurnal");
        diurnal.events.push(ScenarioEvent::Diurnal {
            period: 21_600.0,
            amplitude: 0.8,
            phase: 0.0,
        });

        let mut bursty = ScenarioSpec::new("bursty-neighbor");
        bursty.events.push(ScenarioEvent::StormFront {
            start: 0.0,
            period: 3_600.0,
            chance: 0.45,
            duration: 900.0,
            factor: 1.7,
            windows: 48,
        });

        let mut regime_shift = ScenarioSpec::new("regime-shift");
        regime_shift.events.push(ScenarioEvent::LoadShift {
            at: 3_600.0,
            factor: 1.6,
        });
        regime_shift.events.push(ScenarioEvent::LoadShift {
            at: 14_400.0,
            factor: 2.2,
        });

        let mut preemption_heavy = ScenarioSpec::new("preemption-heavy");
        preemption_heavy.events.push(ScenarioEvent::Preemptions {
            start: 1_800.0,
            mean_interval: 7_200.0,
            downtime: 420.0,
            count: 24,
        });

        let mut hetero = ScenarioSpec::new("hetero-fleet");
        hetero.fleet = vec![
            VmType::M5_8xlarge,
            VmType::C5_9xlarge,
            VmType::M5Large,
            VmType::R5_8xlarge,
        ];

        let mut noisy_cheap = ScenarioSpec::new("noisy-cheap");
        noisy_cheap.profile = Some(InterferenceProfile::Heavy);
        noisy_cheap.events.push(ScenarioEvent::PriceChange {
            at: 0.0,
            factor: 0.4,
        });

        let mut quiet_expensive = ScenarioSpec::new("quiet-expensive");
        quiet_expensive.profile = Some(InterferenceProfile::Constant(0.05));
        quiet_expensive.events.push(ScenarioEvent::PriceChange {
            at: 0.0,
            factor: 2.5,
        });

        vec![
            ScenarioSpec::steady(),
            diurnal,
            bursty,
            regime_shift,
            preemption_heavy,
            hetero,
            noisy_cheap,
            quiet_expensive,
        ]
    }

    /// Looks a scenario up in the built-in [`pack`](Self::pack) by name.
    pub fn by_name(name: &str) -> Option<ScenarioSpec> {
        Self::pack().into_iter().find(|s| s.name == name)
    }

    /// Canonical JSON serialization: fixed key order, no whitespace, shortest
    /// round-trip floats. Byte-identical for identical specs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 64);
        out.push('{');
        let mut first = true;
        push_key(&mut out, &mut first, "name");
        push_str_literal(&mut out, &self.name);
        push_key(&mut out, &mut first, "profile");
        match &self.profile {
            Some(profile) => push_profile(&mut out, profile),
            None => out.push_str("null"),
        }
        push_key(&mut out, &mut first, "fleet");
        out.push('[');
        for (i, vm) in self.fleet.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_literal(&mut out, vm.name());
        }
        out.push(']');
        push_key(&mut out, &mut first, "events");
        out.push('[');
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event.to_json(&mut out);
        }
        out.push(']');
        // Only serialized when set, so pre-existing canonical forms (and every
        // fingerprint derived from them) stay byte-identical for the default.
        if self.integrate_load {
            push_key(&mut out, &mut first, "integrate_load");
            out.push_str("true");
        }
        if self.load_coupling != 0.0 {
            push_key(&mut out, &mut first, "load_coupling");
            push_f64(&mut out, self.load_coupling);
        }
        out.push('}');
        out
    }

    /// Parses a scenario from its canonical JSON form.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, String> {
        let root = json::parse(text)?;
        Self::from_value(&root)
    }

    /// Parses a scenario from an already-parsed JSON value (used when specs embed
    /// scenarios in larger documents).
    pub fn from_value(root: &JsonValue) -> Result<ScenarioSpec, String> {
        let name = root
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "scenario has no \"name\"".to_string())?
            .to_string();
        let profile = match root.get("profile") {
            None | Some(JsonValue::Null) => None,
            Some(value) => Some(parse_profile(value)?),
        };
        let mut fleet = Vec::new();
        for entry in root
            .get("fleet")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "scenario \"fleet\" is not an array".to_string())?
        {
            let vm_name = entry
                .as_str()
                .ok_or_else(|| "fleet entries must be VM names".to_string())?;
            fleet
                .push(VmType::from_name(vm_name).ok_or_else(|| format!("unknown VM {vm_name:?}"))?);
        }
        let mut events = Vec::new();
        for entry in root
            .get("events")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "scenario \"events\" is not an array".to_string())?
        {
            events.push(ScenarioEvent::from_value(entry)?);
        }
        let integrate_load = match root.get("integrate_load") {
            None => false,
            Some(value) => value
                .as_bool()
                .ok_or_else(|| "scenario \"integrate_load\" is not a bool".to_string())?,
        };
        let load_coupling = match root.get("load_coupling") {
            None => 0.0,
            Some(value) => {
                let c = value
                    .number_token()
                    .and_then(|t| t.parse::<f64>().ok())
                    .ok_or_else(|| "scenario \"load_coupling\" is not a number".to_string())?;
                if !(c.is_finite() && (0.0..=1.0).contains(&c)) {
                    return Err(format!("scenario \"load_coupling\" {c} is outside [0, 1]"));
                }
                c
            }
        };
        Ok(ScenarioSpec {
            name,
            profile,
            fleet,
            events,
            integrate_load,
            load_coupling,
        })
    }

    /// A stable 64-bit fingerprint: FNV-1a over the canonical JSON form, so two specs
    /// fingerprint equal exactly when their canonical serializations are byte-identical.
    /// `CampaignSpec::fingerprint` folds these in when a campaign carries a non-default
    /// scenario axis.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_has_the_advertised_scenarios() {
        let pack = ScenarioSpec::pack();
        assert!(pack.len() >= 8, "the pack promises at least 8 scenarios");
        let names: Vec<&str> = pack.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            "steady",
            "diurnal",
            "bursty-neighbor",
            "regime-shift",
            "preemption-heavy",
            "hetero-fleet",
            "noisy-cheap",
            "quiet-expensive",
        ] {
            assert!(names.contains(&expected), "pack is missing {expected}");
        }
        for scenario in &pack {
            scenario.validate();
        }
        assert!(pack[0].is_passthrough(), "steady must be pass-through");
        assert!(pack[1..].iter().all(|s| !s.is_passthrough()));
    }

    #[test]
    fn pack_scenarios_round_trip_through_canonical_json() {
        for scenario in ScenarioSpec::pack() {
            let json = scenario.to_json();
            let parsed = ScenarioSpec::from_json(&json).expect("canonical scenarios parse");
            assert_eq!(parsed, scenario);
            assert_eq!(parsed.to_json(), json, "byte-identical re-serialization");
        }
    }

    #[test]
    fn fingerprints_distinguish_the_pack() {
        let pack = ScenarioSpec::pack();
        let mut prints: Vec<u64> = pack.iter().map(ScenarioSpec::fingerprint).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), pack.len(), "pack fingerprints must be unique");
        assert_eq!(
            ScenarioSpec::steady().fingerprint(),
            ScenarioSpec::steady().fingerprint()
        );
    }

    #[test]
    fn by_name_finds_pack_members() {
        assert_eq!(
            ScenarioSpec::by_name("regime-shift").map(|s| s.name),
            Some("regime-shift".to_string())
        );
        assert_eq!(ScenarioSpec::by_name("no-such-scenario"), None);
    }

    #[test]
    fn then_shifts_the_second_timeline() {
        let a = ScenarioSpec::by_name("regime-shift").unwrap();
        let b = ScenarioSpec::by_name("preemption-heavy").unwrap();
        let combined = a.then(1_000.0, &b);
        assert_eq!(combined.name, "regime-shift-then-preemption-heavy");
        assert_eq!(combined.events.len(), a.events.len() + b.events.len());
        match combined.events.last().unwrap() {
            ScenarioEvent::Preemptions { start, .. } => assert_eq!(*start, 1_800.0 + 1_000.0),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn overlay_merges_profile_fleet_and_events() {
        let noisy = ScenarioSpec::by_name("noisy-cheap").unwrap();
        let fleet = ScenarioSpec::by_name("hetero-fleet").unwrap();
        let combined = noisy.overlay(&fleet);
        assert_eq!(combined.name, "noisy-cheap+hetero-fleet");
        assert_eq!(combined.profile, Some(InterferenceProfile::Heavy));
        assert_eq!(combined.fleet, fleet.fleet);
        assert_eq!(combined.events.len(), noisy.events.len());
    }

    #[test]
    fn scale_stretches_the_time_axis_only() {
        let scenario = ScenarioSpec::by_name("bursty-neighbor").unwrap();
        let stretched = scenario.scale(2.0);
        assert_eq!(stretched.name, "bursty-neighborx2");
        match (&scenario.events[0], &stretched.events[0]) {
            (
                ScenarioEvent::StormFront {
                    period, duration, ..
                },
                ScenarioEvent::StormFront {
                    period: period2,
                    duration: duration2,
                    chance,
                    factor,
                    ..
                },
            ) => {
                assert_eq!(*period2, period * 2.0);
                assert_eq!(*duration2, duration * 2.0);
                assert_eq!(*chance, 0.45);
                assert_eq!(*factor, 1.7);
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn shifted_diurnal_evaluates_the_original_curve_with_a_delay() {
        let diurnal = ScenarioEvent::Diurnal {
            period: 100.0,
            amplitude: 1.0,
            phase: 0.25,
        };
        let shifted = diurnal.shifted(30.0);
        match shifted {
            ScenarioEvent::Diurnal { phase, .. } => assert!((phase - (0.25 - 0.3)).abs() < 1e-12),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "factors must be finite and > 0")]
    fn zero_factor_rejected() {
        let mut scenario = ScenarioSpec::new("bad");
        scenario.events.push(ScenarioEvent::LoadShift {
            at: 0.0,
            factor: 0.0,
        });
        scenario.validate();
    }

    #[test]
    fn integrate_load_round_trips_and_defaults_stay_byte_identical() {
        // Off (the default): the canonical form must not mention the flag at all, so
        // every pre-existing golden and fingerprint stays byte-identical.
        let plain = ScenarioSpec::by_name("regime-shift").unwrap();
        assert!(!plain.integrate_load);
        assert!(!plain.to_json().contains("integrate_load"));

        // On: the flag round-trips through canonical JSON and changes the fingerprint.
        let flagged = plain.clone().with_integrated_load();
        assert!(flagged.integrate_load);
        let json = flagged.to_json();
        assert!(json.ends_with("\"integrate_load\":true}"), "{json}");
        let parsed = ScenarioSpec::from_json(&json).expect("flagged scenario parses");
        assert_eq!(parsed, flagged);
        assert_eq!(parsed.to_json(), json, "byte-identical re-serialization");
        assert_ne!(plain.fingerprint(), flagged.fingerprint());

        // The flag survives composition: overlay ORs it, scale copies it.
        let steady = ScenarioSpec::steady();
        assert!(steady.overlay(&flagged).integrate_load);
        assert!(flagged.overlay(&steady).integrate_load);
        assert!(flagged.scale(2.0).integrate_load);
        assert!(!plain.scale(2.0).integrate_load);
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        for bad in [
            "{}",
            "{\"name\":\"x\"}",
            "{\"name\":\"x\",\"profile\":null,\"fleet\":[\"t2.nano\"],\"events\":[]}",
            "{\"name\":\"x\",\"profile\":null,\"fleet\":[],\"events\":[{\"op\":\"warp\"}]}",
            "{\"name\":\"x\",\"profile\":\"mystery\",\"fleet\":[],\"events\":[]}",
            "{\"name\":\"x\",\"profile\":null,\"fleet\":[],\"events\":[],\"integrate_load\":\"yes\"}",
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "{bad:?} must fail");
        }
    }
}
