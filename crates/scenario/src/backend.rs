//! [`ScenarioBackend`]: applies a scenario's timeline over any inner execution backend.

use crate::spec::ScenarioSpec;
use crate::timeline::Timeline;
use dg_cloudsim::{CostTracker, ExecutionSpec, InterferenceProfile, ObservedRun, SimTime, VmType};
use dg_exec::{BackendProvider, ExecutionBackend, GameBatchItem, GamePlay, GameRules};
use dg_obs::{emit_with, ObsEvent};

/// The pivot interference sensitivity for [`ScenarioSpec::load_coupling`]: a spec
/// with exactly this sensitivity feels the nominal load factor under full coupling.
/// Sits mid-range of the workload generators' `[~0.12, ~1.2]` sensitivity spread, so
/// fragile configurations roughly square a load excursion while robust ones feel its
/// fourth root.
const REFERENCE_SENSITIVITY: f64 = 0.6;

/// An [`ExecutionBackend`] decorator that applies a [`ScenarioSpec`]'s event timeline
/// as its clock advances, so tournaments, baseline tuners, record/replay traces, and
/// sharded campaigns all get scenarios for free through the existing backend seam.
///
/// The wrapper owns the *accounting* (clock, cost tracker, spot billing) and uses the
/// inner backend purely as the noise oracle: games and observations are delegated
/// (with the inner clock synced forward first, so the inner noise processes are
/// sampled at scenario time), but commits never reach the inner backend — the
/// scenario charges its own tracker through the exact arithmetic the simulator uses.
/// That is what lets the timeline inflate outcomes without double-charging:
///
/// * the ambient **load factor** ([`Timeline::load_factor`], sampled at each
///   operation's start) multiplies observed times and elapsed time — co-tenant
///   arrivals/departures, slowdown storms, diurnal curves, and mid-run regime
///   escalation all act through it;
/// * **preemptions** strike operations in progress: the work done so far is lost, the
///   node is down for the event's `downtime`, and the operation restarts from scratch
///   (a preemption whose time passes while the node is idle is skipped);
/// * a **heterogeneous fleet** gives forked sub-environments (tournament regions) the
///   relative hardware speed of `fleet[fork_ordinal % len]`;
/// * **price changes** feed the scenario's dollar meter
///   ([`billed_dollars`](Self::billed_dollars)): every committed wall-clock second is
///   billed via the [`CostTracker`] dollar discipline at the price factor in effect
///   when the operation started.
///
/// A pass-through scenario ([`ScenarioSpec::is_passthrough`]) leaves every number
/// bit-identical to the unwrapped backend (all factors are exactly `1.0`, and
/// multiplying a finite float by `1.0` is the identity), which the default-`steady`
/// byte-compatibility tests pin.
///
/// Composability with record/replay: wrap the scenario *around* a recording or replay
/// backend. Recording captures the raw inner outcomes; replaying re-applies the same
/// deterministic timeline transforms, so a recorded scenario campaign replays
/// byte-identically with zero resimulation.
pub struct ScenarioBackend {
    inner: Box<dyn ExecutionBackend>,
    spec: ScenarioSpec,
    timeline: Timeline,
    /// Index of the next unconsumed preemption in `timeline.preemptions()`.
    next_preemption: usize,
    clock: SimTime,
    cost: CostTracker,
    billed_dollars: f64,
    /// Relative hardware speed of this node (1.0 for the root; fleet-derived for
    /// forked sub-environments).
    speed: f64,
    /// VM type of the root backend, the reference point for fleet speed ratios.
    base_vm: VmType,
    forks: usize,
}

impl std::fmt::Debug for ScenarioBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBackend")
            .field("scenario", &self.spec.name)
            .field("clock", &self.clock)
            .field("core_hours", &self.cost.core_hours())
            .field("speed", &self.speed)
            .finish()
    }
}

impl ScenarioBackend {
    /// Wraps `inner` in `scenario`, expanding the timeline for `seed` (pass the same
    /// seed the inner backend was built with so the scenario realisation is part of
    /// the backend's identity).
    pub fn new(inner: Box<dyn ExecutionBackend>, scenario: ScenarioSpec, seed: u64) -> Self {
        scenario.validate();
        let base_vm = inner.vm();
        let backend = Self::with_speed(inner, scenario, seed, 1.0, base_vm);
        emit_with(|| ObsEvent::ScenarioTimeline {
            scenario: backend.spec.name.clone(),
            preemptions: backend.timeline.preemptions().len(),
        });
        backend
    }

    fn with_speed(
        inner: Box<dyn ExecutionBackend>,
        scenario: ScenarioSpec,
        seed: u64,
        speed: f64,
        base_vm: VmType,
    ) -> Self {
        let timeline = scenario.timeline(seed);
        Self {
            inner,
            spec: scenario,
            timeline,
            next_preemption: 0,
            clock: SimTime::ZERO,
            cost: CostTracker::new(),
            billed_dollars: 0.0,
            speed,
            base_vm,
            forks: 0,
        }
    }

    /// The scenario being applied.
    pub fn scenario(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The expanded timeline realisation of this backend.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// This node's relative hardware speed (`1.0` unless a fleet scenario assigned a
    /// different machine to this fork).
    pub fn relative_speed(&self) -> f64 {
        self.speed
    }

    /// Dollars billed for the committed core-hours so far: each committed wall-clock
    /// second costs the VM's on-demand hourly price times the scenario's price factor
    /// at the moment the operation started — the spot-market meter `PriceChange`
    /// events feed. Without price events this equals
    /// `CostTracker::dollar_cost(self.vm())` for serially-committed work.
    pub fn billed_dollars(&self) -> f64 {
        self.billed_dollars
    }

    /// The scenario-relative slowdown factor for an operation starting at `t`.
    fn factor_at(&self, t: SimTime) -> f64 {
        self.speed * self.timeline.load_factor(t.as_seconds())
    }

    /// The scenario-scaled span of a base span of `base` seconds starting at `start`.
    ///
    /// By default the load factor is sampled once at `start` and held for the whole
    /// span — stale for long operations that straddle a shift or storm edge. When the
    /// scenario opts in via [`ScenarioSpec::with_integrated_load`], the factor is
    /// instead integrated piecewise over the occupied window
    /// `[start, start + speed * base)`, charging each load level only for the
    /// wall-clock actually spent under it. The default path computes the exact
    /// product the pre-flag code did, so existing goldens and fingerprints stay
    /// byte-identical.
    fn scaled_span(&self, start: SimTime, base: f64) -> f64 {
        if self.spec.integrate_load {
            let s = start.as_seconds();
            self.timeline.integrate_load(s, s + self.speed * base)
        } else {
            self.factor_at(start) * base
        }
    }

    /// [`scaled_span`](Self::scaled_span) for one player's observed time, honouring
    /// [`ScenarioSpec::load_coupling`]: under coupling `c` the timeline's load level
    /// `L` is felt as `L^((1 - c) + c * s / 0.6)` by a spec with interference
    /// sensitivity `s` — fragile configurations amplify a storm, robust ones shrug it
    /// off, and `s = 0.6` feels exactly the nominal factor. Hardware speed stays a
    /// uniform multiplier (a slower machine slows everything equally). With coupling
    /// off this *is* `scaled_span`, taken through the identical arithmetic so existing
    /// goldens stay byte-identical.
    fn scaled_span_for(&self, start: SimTime, base: f64, sensitivity: f64) -> f64 {
        let c = self.spec.load_coupling;
        if c == 0.0 {
            return self.scaled_span(start, base);
        }
        let load = if self.spec.integrate_load {
            let s = start.as_seconds();
            let span = self.speed * base;
            if span > 0.0 {
                self.timeline.integrate_load(s, s + span) / span
            } else {
                self.timeline.load_factor(s)
            }
        } else {
            self.timeline.load_factor(start.as_seconds())
        };
        let exponent = (1.0 - c) + c * sensitivity / REFERENCE_SENSITIVITY;
        self.speed * load.powf(exponent) * base
    }

    /// Moves the inner backend's clock forward to the scenario clock so inner noise
    /// processes are sampled at scenario time. The inner clock never advances on its
    /// own (commits are not delegated), so it can only lag, never lead.
    fn sync_inner_clock(&mut self) {
        if self.inner.clock().as_seconds() < self.clock.as_seconds() {
            self.inner.set_clock(self.clock);
        }
    }

    /// The wall-clock span an operation of `base_elapsed` seconds occupies when it
    /// starts at `start`, after preemption strikes: each preemption inside the span
    /// adds the lost partial work plus its downtime and restarts the operation from
    /// scratch. Consumes the struck (and any idle-crossed) preemptions.
    fn preempted_span(&mut self, start: SimTime, base_elapsed: f64) -> f64 {
        let mut total = 0.0;
        let mut t = start.as_seconds();
        loop {
            match self.timeline.preemptions().get(self.next_preemption) {
                // The node was idle when this preemption fired; nothing to lose.
                Some(&(at, _)) if at < t => self.next_preemption += 1,
                Some(&(at, downtime)) if at < t + base_elapsed => {
                    emit_with(|| ObsEvent::PreemptionStrike {
                        at,
                        outage: downtime,
                    });
                    total += (at - t) + downtime;
                    t = at + downtime;
                    self.next_preemption += 1;
                }
                _ => return total + base_elapsed,
            }
        }
    }

    /// Charges one serially-committed span through the same arithmetic
    /// `CloudEnvironment::commit_parts` uses, plus the scenario dollar meter.
    fn charge_serial(&mut self, start: SimTime, elapsed: f64) {
        self.cost.charge_serial(self.inner.vm(), elapsed);
        self.clock += elapsed;
        self.bill(start, elapsed);
    }

    fn bill(&mut self, start: SimTime, elapsed: f64) {
        self.billed_dollars += elapsed / 3600.0
            * self.inner.vm().hourly_price_usd()
            * self.timeline.price_factor(start.as_seconds());
    }

    /// Applies the timeline transforms of [`play_game`](ExecutionBackend::play_game)
    /// to one inner play: scale each observation by the (possibly coupled) load, scale
    /// the wall-clock, then let preemptions strike it. `load` is a batch-hoisted
    /// `Timeline::load_factor(play.start)` — valid only for sampled-at-start scenarios
    /// and only when the play really starts at the hoisted instant; `None` recomputes
    /// per call. Either way the arithmetic is the exact expression the unhoisted path
    /// evaluates, so hoisting is bit-invisible.
    // `a = factor * a` rather than `a *= factor`: the assignments keep the exact
    // operand order of `scaled_span`/`scaled_span_for`, which is what makes the
    // hoisted path's bit-identity self-evident.
    #[allow(clippy::assign_op_pattern)]
    fn apply_scenario_to_play(
        &mut self,
        play: &mut GamePlay,
        specs: &[ExecutionSpec],
        load: Option<f64>,
    ) {
        let start = play.start;
        match load {
            Some(lf) => {
                let c = self.spec.load_coupling;
                if c == 0.0 {
                    for time in play.observed_times.iter_mut() {
                        *time = self.speed * lf * *time;
                    }
                } else {
                    for (time, spec) in play.observed_times.iter_mut().zip(specs) {
                        let exponent = (1.0 - c) + c * spec.sensitivity() / REFERENCE_SENSITIVITY;
                        *time = self.speed * lf.powf(exponent) * *time;
                    }
                }
                let scaled_elapsed = self.speed * lf * play.elapsed;
                play.elapsed = self.preempted_span(start, scaled_elapsed);
            }
            None => {
                for (time, spec) in play.observed_times.iter_mut().zip(specs) {
                    *time = self.scaled_span_for(start, *time, spec.sensitivity());
                }
                let scaled_elapsed = self.scaled_span(start, play.elapsed);
                play.elapsed = self.preempted_span(start, scaled_elapsed);
            }
        }
    }
}

impl ExecutionBackend for ScenarioBackend {
    fn vm(&self) -> VmType {
        self.inner.vm()
    }

    fn profile(&self) -> &InterferenceProfile {
        self.inner.profile()
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn set_clock(&mut self, t: SimTime) {
        assert!(
            t.as_seconds() >= self.clock.as_seconds(),
            "the simulated clock cannot move backwards"
        );
        self.clock = t;
    }

    fn cost(&self) -> &CostTracker {
        &self.cost
    }

    fn play_game(&mut self, specs: &[ExecutionSpec], rules: &GameRules) -> GamePlay {
        self.sync_inner_clock();
        let mut play = self.inner.play_game(specs, rules);
        // Execution scores are relative work fractions; a slowdown shared by every
        // co-located player leaves them untouched. The game's wall-clock (the thing
        // that is billed) scales machine-level: load occupies the node regardless of
        // which players were fragile enough to feel it in their observed times.
        self.apply_scenario_to_play(&mut play, specs, None);
        play
    }

    fn play_games_batch(
        &mut self,
        games: &[GameBatchItem<'_>],
        rules: &GameRules,
    ) -> Vec<GamePlay> {
        self.sync_inner_clock();
        let mut plays = self.inner.play_games_batch(games, rules);
        // Uncommitted games never advance the clock, so every play in the batch starts
        // at the same instant and one load-factor lookup serves them all — unless the
        // scenario integrates load over each span (spans differ per play) or an exotic
        // inner backend moved its clock mid-batch (guarded by the start check below).
        let hoisted = if self.spec.integrate_load {
            None
        } else {
            plays
                .first()
                .map(|p| (p.start, self.timeline.load_factor(p.start.as_seconds())))
        };
        for (play, game) in plays.iter_mut().zip(games) {
            let load = match hoisted {
                Some((t, lf)) if t.as_seconds().to_bits() == play.start.as_seconds().to_bits() => {
                    Some(lf)
                }
                _ => None,
            };
            // Preemptions are consumed in play order, exactly as the per-game loop
            // would consume them.
            self.apply_scenario_to_play(play, game.specs, load);
        }
        plays
    }

    fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        // Route through play_game: for a single player the simulator's solo path and
        // the game loop are the same integration (any-finished == all-finished), so a
        // pass-through scenario stays bit-identical while the scenario keeps control
        // of the accounting.
        let start = self.clock;
        let play = self.play_game(std::slice::from_ref(&spec), &GameRules::default());
        self.charge_serial(start, play.elapsed);
        ObservedRun {
            observed_time: play.observed_times[0],
            started_at: start,
            elapsed: play.elapsed,
        }
    }

    fn observe_single_at(&mut self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        // Cost-free measurement: the load factor at the observation instant applies,
        // preemptions do not (nothing is charged, nothing restarts).
        let inner = self.inner.observe_single_at(spec, start, salt);
        self.scaled_span_for(start, inner, spec.sensitivity())
    }

    fn commit(&mut self, play: &GamePlay) {
        self.charge_serial(play.start, play.elapsed);
    }

    fn commit_parallel(&mut self, plays: &[GamePlay]) {
        if plays.is_empty() {
            return;
        }
        let elapsed: Vec<f64> = plays.iter().map(|p| p.elapsed).collect();
        self.cost.charge_parallel(self.inner.vm(), &elapsed);
        let max_elapsed = elapsed.iter().copied().fold(0.0_f64, f64::max);
        self.clock += max_elapsed;
        for play in plays {
            self.bill(play.start, play.elapsed);
        }
    }

    fn fork(&mut self, seed: u64) -> Box<dyn ExecutionBackend> {
        let speed = if self.spec.fleet.is_empty() {
            self.speed
        } else {
            // Fork ordinals walk the fleet round-robin; speeds are relative to the
            // root VM so a fleet of the root's own type is exactly homogeneous.
            self.spec.fleet[self.forks % self.spec.fleet.len()].speed_factor()
                / self.base_vm.speed_factor()
        };
        self.forks += 1;
        let inner = self.inner.fork(seed);
        Box::new(ScenarioBackend::with_speed(
            inner,
            self.spec.clone(),
            seed,
            speed,
            self.base_vm,
        ))
    }

    fn failure(&self) -> Option<String> {
        self.inner.failure()
    }
}

/// A [`BackendProvider`] that applies one scenario to every stream of an inner
/// provider: the factory-side composition point, mirroring how `TraceRecorder` wraps a
/// provider. Campaign cells with per-cell scenarios wrap backends directly instead.
pub struct ScenarioProvider {
    inner: Box<dyn BackendProvider>,
    scenario: ScenarioSpec,
}

impl ScenarioProvider {
    /// Applies `scenario` over every backend `inner` creates.
    pub fn new(inner: Box<dyn BackendProvider>, scenario: ScenarioSpec) -> Self {
        scenario.validate();
        Self { inner, scenario }
    }

    /// The scenario being applied.
    pub fn scenario(&self) -> &ScenarioSpec {
        &self.scenario
    }
}

impl BackendProvider for ScenarioProvider {
    fn backend(
        &self,
        stream: &str,
        vm: VmType,
        profile: &InterferenceProfile,
        seed: u64,
    ) -> Box<dyn ExecutionBackend> {
        let effective = self.scenario.profile.as_ref().unwrap_or(profile);
        let inner = self.inner.backend(stream, vm, effective, seed);
        if self.scenario.is_passthrough() {
            inner
        } else {
            Box::new(ScenarioBackend::new(inner, self.scenario.clone(), seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioEvent;
    use dg_exec::SimBackend;

    const VM: VmType = VmType::M5_8xlarge;

    fn sim(seed: u64) -> Box<dyn ExecutionBackend> {
        Box::new(SimBackend::new(VM, InterferenceProfile::typical(), seed))
    }

    fn wrapped(scenario: ScenarioSpec, seed: u64) -> ScenarioBackend {
        ScenarioBackend::new(sim(seed), scenario, seed)
    }

    /// Drives the same operation mix the record/replay unit tests use.
    fn drive(exec: &mut dyn ExecutionBackend) -> (Vec<f64>, f64, f64) {
        let fast = ExecutionSpec::new(100.0, 0.3);
        let slow = ExecutionSpec::new(220.0, 0.9);
        let play = exec.play_game(&[fast, slow], &GameRules::default());
        exec.commit(&play);
        let run = exec.run_single(fast);
        let observations = exec.observe_repeated(slow, 3, 900.0);
        let mut fork = exec.fork(4242);
        let fork_run = fork.run_single(slow);
        let mut times = play.observed_times.clone();
        times.push(run.observed_time);
        times.push(fork_run.observed_time);
        times.extend(observations);
        (times, exec.cost().core_hours(), exec.clock().as_seconds())
    }

    #[test]
    fn steady_scenario_is_bit_identical_to_the_bare_backend() {
        let mut bare = SimBackend::new(VM, InterferenceProfile::typical(), 9);
        let mut steady = wrapped(ScenarioSpec::steady(), 9);
        let (bare_times, bare_hours, bare_clock) = drive(&mut bare);
        let (times, hours, clock) = drive(&mut steady);
        assert_eq!(
            bare_times.iter().map(|t| t.to_bits()).collect::<Vec<u64>>(),
            times.iter().map(|t| t.to_bits()).collect::<Vec<u64>>(),
        );
        assert_eq!(bare_hours.to_bits(), hours.to_bits());
        assert_eq!(bare_clock.to_bits(), clock.to_bits());
    }

    #[test]
    fn load_shift_scales_observations_and_cost() {
        let mut scenario = ScenarioSpec::new("double");
        scenario.events.push(ScenarioEvent::LoadShift {
            at: 0.0,
            factor: 2.0,
        });
        let mut shifted = wrapped(scenario, 5);
        let mut bare = SimBackend::new(VM, InterferenceProfile::typical(), 5);
        let spec = ExecutionSpec::new(100.0, 0.4);
        let a = shifted.run_single(spec);
        let b = ExecutionBackend::run_single(&mut bare, spec);
        assert_eq!(a.observed_time.to_bits(), (b.observed_time * 2.0).to_bits());
        assert_eq!(a.elapsed.to_bits(), (b.elapsed * 2.0).to_bits());
        assert_eq!(
            shifted.cost().core_hours().to_bits(),
            (bare.cost().core_hours() * 2.0).to_bits()
        );
    }

    #[test]
    fn games_keep_their_scores_under_uniform_slowdown() {
        let mut scenario = ScenarioSpec::new("stormy");
        scenario.events.push(ScenarioEvent::Storm {
            at: 0.0,
            duration: 1e9,
            factor: 1.5,
        });
        let mut stormy = wrapped(scenario, 6);
        let mut bare = SimBackend::new(VM, InterferenceProfile::typical(), 6);
        let specs = [
            ExecutionSpec::new(120.0, 0.8),
            ExecutionSpec::new(150.0, 0.2),
        ];
        let a = stormy.play_game(&specs, &GameRules::default());
        let b = bare.play_game(&specs, &GameRules::default());
        assert_eq!(a.execution_scores, b.execution_scores);
        assert_eq!(a.early_terminated, b.early_terminated);
        assert_eq!(
            a.observed_times[0].to_bits(),
            (b.observed_times[0] * 1.5).to_bits()
        );
    }

    #[test]
    fn preemption_inside_a_run_adds_lost_work_and_downtime() {
        let mut scenario = ScenarioSpec::new("spot");
        scenario.events.push(ScenarioEvent::Preemption {
            at: 50.0,
            downtime: 30.0,
        });
        let mut spot = wrapped(scenario, 7);
        let mut bare = SimBackend::new(VM, InterferenceProfile::typical(), 7);
        let spec = ExecutionSpec::new(100.0, 0.2);
        let a = spot.run_single(spec);
        let b = ExecutionBackend::run_single(&mut bare, spec);
        // The run starts at 0, is struck at 50 (losing 50 s of work), waits out 30 s of
        // downtime, then reruns to completion.
        assert!((a.elapsed - (50.0 + 30.0 + b.elapsed)).abs() < 1e-9);
        assert_eq!(
            a.observed_time.to_bits(),
            b.observed_time.to_bits(),
            "the surviving run's observation is unchanged"
        );
        assert_eq!(spot.clock().as_seconds(), a.elapsed);
    }

    #[test]
    fn integrated_load_charges_each_level_for_its_own_span() {
        // A 100 s operation straddles a 2x load shift at t = 50. The stale
        // sampled-at-start factor charges the whole op at the pre-shift level; the
        // opt-in piecewise integration charges 50 s at 1.0 plus the remaining 50 s of
        // base work at 2.0 = 150 s.
        let shift = ScenarioEvent::LoadShift {
            at: 50.0,
            factor: 2.0,
        };
        // Sensitivity 0 makes the inner observation exactly the base time, so the
        // scenario arithmetic is checked without interference noise in the way.
        let spec = ExecutionSpec::new(100.0, 0.0);

        let mut integrated_spec = ScenarioSpec::new("ramp").with_integrated_load();
        integrated_spec.events.push(shift.clone());
        let mut integrated = wrapped(integrated_spec, 11);
        let mut stale_spec = ScenarioSpec::new("ramp-stale");
        stale_spec.events.push(shift);
        let mut stale = wrapped(stale_spec, 11);

        // Both backends share a seed, so the inner (pre-scenario) observation x is
        // identical; only measurement jitter keeps it from being exactly the 100 s
        // base. The stale factor (sampled at t = 0, before the shift) reports x; the
        // integrated window [0, x) charges 50 s at 1.0 plus the rest at 2.0 = 2x - 50.
        let probe = integrated.observe_single_at(spec, SimTime::ZERO, 0);
        let old = stale.observe_single_at(spec, SimTime::ZERO, 0);
        assert!(
            (old - 100.0).abs() < 6.0,
            "jitter stays within +/-5%: {old}"
        );
        assert!(
            (probe - (2.0 * old - 50.0)).abs() < 1e-9,
            "integrated {probe} vs stale {old}"
        );
        // An observation starting after the shift sits entirely at the new level, so
        // the two treatments agree there.
        let t50 = SimTime::from_seconds(50.0);
        let after = integrated.observe_single_at(spec, t50, 0);
        let after_stale = stale.observe_single_at(spec, t50, 0);
        assert!(
            (after - after_stale).abs() < 1e-9,
            "integrated {after} vs stale {after_stale}"
        );
        assert!(
            after > 1.9 * old,
            "post-shift probes run at the doubled level"
        );

        // Full runs go through the simulator's tick loop, so compare the two
        // scenario treatments of the *same* inner outcome: for a window [0, x)
        // straddling the t = 50 shift, the integral is 2x - 50 where the stale
        // product is x.
        let a = integrated.run_single(spec);
        let b = stale.run_single(spec);
        assert!(
            (a.observed_time - (2.0 * b.observed_time - 50.0)).abs() < 1e-9,
            "integrated {a:?} vs stale {b:?}"
        );
        assert!(
            (a.elapsed - (2.0 * b.elapsed - 50.0)).abs() < 1e-9,
            "integrated {a:?} vs stale {b:?}"
        );
    }

    #[test]
    fn integrated_steady_scenario_stays_exact() {
        // With a constant load factor the integral is factor x base exactly, so the
        // opt-in flag changes nothing on scenarios without mid-span structure.
        let mut flagged = wrapped(ScenarioSpec::new("flat").with_integrated_load(), 9);
        let mut plain = wrapped(ScenarioSpec::new("flat"), 9);
        let spec = ExecutionSpec::new(100.0, 0.4);
        let a = flagged.run_single(spec);
        let b = plain.run_single(spec);
        assert_eq!(a.observed_time.to_bits(), b.observed_time.to_bits());
        assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits());
    }

    #[test]
    fn idle_crossed_preemptions_are_skipped() {
        let mut scenario = ScenarioSpec::new("spot-idle");
        scenario.events.push(ScenarioEvent::Preemption {
            at: 10.0,
            downtime: 1e6,
        });
        let mut spot = wrapped(scenario, 8);
        spot.set_clock(SimTime::from_seconds(1_000.0));
        let spec = ExecutionSpec::new(100.0, 0.2);
        let run = spot.run_single(spec);
        assert!(
            run.elapsed < 1_000.0,
            "a preemption that fired while idle must not delay later work"
        );
    }

    #[test]
    fn price_changes_feed_the_dollar_meter() {
        let mut scenario = ScenarioSpec::new("spot-market");
        scenario.events.push(ScenarioEvent::PriceChange {
            at: 0.0,
            factor: 0.5,
        });
        let mut cheap = wrapped(scenario, 9);
        let mut full = wrapped(ScenarioSpec::new("on-demand"), 9);
        let spec = ExecutionSpec::new(100.0, 0.2);
        let a = cheap.run_single(spec);
        let b = full.run_single(spec);
        assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits());
        assert!((cheap.billed_dollars() - full.billed_dollars() * 0.5).abs() < 1e-12);
        assert!(
            (full.billed_dollars() - full.cost().dollar_cost(VM)).abs() < 1e-12,
            "without price events the meter matches the tracker's on-demand cost"
        );
    }

    #[test]
    fn hetero_fleet_slows_and_speeds_forks_round_robin() {
        let mut scenario = ScenarioSpec::new("fleet");
        scenario.fleet = vec![VmType::M5Large, VmType::M5_8xlarge];
        let mut fleet = wrapped(scenario, 10);
        assert_eq!(fleet.relative_speed(), 1.0);
        let mut slow_fork = fleet.fork(1);
        let mut native_fork = fleet.fork(1);
        let spec = ExecutionSpec::new(100.0, 0.2);
        let slow = slow_fork.run_single(spec);
        let native = native_fork.run_single(spec);
        let ratio = VmType::M5Large.speed_factor() / VM.speed_factor();
        assert_eq!(
            slow.observed_time.to_bits(),
            (native.observed_time * ratio).to_bits(),
            "fork 0 runs at m5.large speed, fork 1 at the root's own speed"
        );
    }

    #[test]
    fn batched_games_are_bit_identical_to_the_per_game_loop() {
        // Rich timelines (shift + storm + diurnal + preemptions), with and without
        // load coupling and integrated load: the hoisted batch path must reproduce the
        // sequential play_game loop bit for bit, including stateful preemption
        // consumption and the shared clock.
        let mut eventful = ScenarioSpec::new("eventful");
        eventful.events = vec![
            ScenarioEvent::LoadShift {
                at: 40.0,
                factor: 1.7,
            },
            ScenarioEvent::Storm {
                at: 10.0,
                duration: 120.0,
                factor: 1.4,
            },
            ScenarioEvent::Diurnal {
                period: 300.0,
                amplitude: 0.6,
                phase: 0.2,
            },
            ScenarioEvent::Preemptions {
                start: 0.0,
                mean_interval: 90.0,
                downtime: 12.0,
                count: 12,
            },
        ];
        let mut coupled = eventful.clone();
        coupled.name = "eventful-coupled".into();
        coupled.load_coupling = 0.8;
        let mut integrated = eventful.clone().with_integrated_load();
        integrated.name = "eventful-integrated".into();

        for scenario in [eventful, coupled, integrated] {
            let mut looped = wrapped(scenario.clone(), 21);
            let mut batched = wrapped(scenario, 21);
            let spec_sets: [&[ExecutionSpec]; 3] = [
                &[
                    ExecutionSpec::new(100.0, 0.3),
                    ExecutionSpec::new(160.0, 0.9),
                ],
                &[ExecutionSpec::new(80.0, 0.12)],
                &[
                    ExecutionSpec::new(140.0, 1.1),
                    ExecutionSpec::new(90.0, 0.5),
                    ExecutionSpec::new(120.0, 0.7),
                ],
            ];
            let rules = GameRules::default();
            for round in 0..3 {
                let expected: Vec<GamePlay> = spec_sets
                    .iter()
                    .map(|specs| looped.play_game(specs, &rules))
                    .collect();
                let items: Vec<GameBatchItem<'_>> = spec_sets
                    .iter()
                    .map(|specs| GameBatchItem { specs })
                    .collect();
                let got = batched.play_games_batch(&items, &rules);
                for (a, b) in expected.iter().zip(&got) {
                    assert_eq!(
                        a.start.as_seconds().to_bits(),
                        b.start.as_seconds().to_bits()
                    );
                    assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits(), "round {round}");
                    assert_eq!(
                        a.observed_times
                            .iter()
                            .map(|t| t.to_bits())
                            .collect::<Vec<_>>(),
                        b.observed_times
                            .iter()
                            .map(|t| t.to_bits())
                            .collect::<Vec<_>>(),
                    );
                    assert_eq!(a.execution_scores, b.execution_scores);
                    assert_eq!(a.early_terminated, b.early_terminated);
                }
                // Commit the round on both sides so later batches start mid-timeline.
                looped.commit_parallel(&expected);
                batched.commit_parallel(&got);
            }
            assert_eq!(
                looped.clock().as_seconds().to_bits(),
                batched.clock().as_seconds().to_bits()
            );
            assert_eq!(
                looped.billed_dollars().to_bits(),
                batched.billed_dollars().to_bits()
            );
        }
    }

    #[test]
    fn provider_applies_profile_override_and_skips_passthrough_wrapping() {
        let provider = ScenarioProvider::new(
            Box::new(dg_exec::SimProvider),
            ScenarioSpec::by_name("noisy-cheap").expect("pack scenario"),
        );
        let backend = provider.backend("s", VM, &InterferenceProfile::typical(), 1);
        assert_eq!(
            backend.profile(),
            &InterferenceProfile::Heavy,
            "the scenario's profile override must win"
        );

        let steady = ScenarioProvider::new(Box::new(dg_exec::SimProvider), ScenarioSpec::steady());
        let mut a = steady.backend("s", VM, &InterferenceProfile::typical(), 2);
        let mut b = dg_exec::SimProvider.backend("s", VM, &InterferenceProfile::typical(), 2);
        let spec = ExecutionSpec::new(100.0, 0.4);
        assert_eq!(
            a.run_single(spec).observed_time.to_bits(),
            b.run_single(spec).observed_time.to_bits()
        );
    }
}
