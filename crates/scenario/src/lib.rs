//! A composable cloud-scenario engine with dynamic event timelines.
//!
//! The simulator's `InterferenceProfile`s capture *stationary* noise; real clouds are
//! not stationary. TUNA shows tuners diverge hardest under unstable regimes (co-tenant
//! churn, regime shifts mid-run), and ExpoCloud shows preemptions and heterogeneous
//! fleets dominate real exploration cost. This crate makes such regimes a first-class,
//! enumerable, campaign-sweepable axis:
//!
//! * [`ScenarioSpec`] — a declarative scenario: an optional base-profile override, a
//!   VM fleet for forked sub-environments, and a deterministic [`ScenarioEvent`]
//!   timeline (spot preemption/restart, co-tenant arrival/departure, diurnal load
//!   curves, mid-run regime escalation, transient slowdown storms, price changes).
//!   Canonical-JSON serializable with a stable [`ScenarioSpec::fingerprint`], like
//!   `CampaignSpec`.
//! * [`Timeline`] — the per-seed realisation: generator events expand through the
//!   simulator's seeded hash streams, so the same backend sees the same incidents
//!   every run and different backends see independent ones.
//! * [`ScenarioBackend`] / [`ScenarioProvider`] — wrap any
//!   [`ExecutionBackend`](dg_exec::ExecutionBackend) /
//!   [`BackendProvider`](dg_exec::BackendProvider) and apply the timeline as the clock
//!   advances, so tournaments, all baseline tuners, record/replay traces, and sharded
//!   campaigns get scenarios for free through the existing seam. Pass-through
//!   scenarios ([`ScenarioSpec::steady`]) are bit-identical to unwrapped execution.
//! * [`ScenarioSpec::pack`] — the built-in named scenarios (`steady`, `diurnal`,
//!   `bursty-neighbor`, `regime-shift`, `preemption-heavy`, `hetero-fleet`,
//!   `noisy-cheap`, `quiet-expensive`) plus the [`then`](ScenarioSpec::then) /
//!   [`overlay`](ScenarioSpec::overlay) / [`scale`](ScenarioSpec::scale) combinators
//!   for synthesizing new ones.
//!
//! # Quick example
//!
//! ```
//! use dg_cloudsim::{ExecutionSpec, InterferenceProfile, VmType};
//! use dg_exec::{ExecutionBackend, SimBackend};
//! use dg_scenario::{ScenarioBackend, ScenarioSpec};
//!
//! let inner = Box::new(SimBackend::new(
//!     VmType::M5_8xlarge,
//!     InterferenceProfile::typical(),
//!     42,
//! ));
//! let scenario = ScenarioSpec::by_name("regime-shift").unwrap();
//! let mut exec = ScenarioBackend::new(inner, scenario, 42);
//! let run = exec.run_single(ExecutionSpec::new(230.0, 0.8));
//! assert!(run.observed_time > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod spec;
mod timeline;

pub use backend::{ScenarioBackend, ScenarioProvider};
pub use spec::{ScenarioEvent, ScenarioSpec};
pub use timeline::Timeline;
