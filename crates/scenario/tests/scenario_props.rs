//! Scenario property battery: randomly-composed scenarios expand to timelines that
//! are deterministic per seed, round-trip through canonical JSON, and — wrapped
//! around a recording/replaying backend — reproduce every observable quantity bit for
//! bit with zero resimulation.

use dg_cloudsim::{ExecutionSpec, InterferenceProfile, SimTime, VmType};
use dg_exec::{
    sim_ops, BackendProvider, ExecutionBackend, GameRules, SimProvider, TraceRecorder,
    TraceReplayer,
};
use dg_scenario::{ScenarioBackend, ScenarioEvent, ScenarioSpec, Timeline};
use proptest::prelude::*;

const VM: VmType = VmType::M5_8xlarge;

/// Builds a valid scenario from drawn selectors: 4 event slots (kind 7 = empty) with
/// 3 unit-interval parameters each, plus a fleet selector.
fn scenario_from(kinds: &[u8], params: &[f64], fleet: u8) -> ScenarioSpec {
    let mut scenario = ScenarioSpec::new("prop");
    for (slot, kind) in kinds.iter().enumerate() {
        let p = |i: usize| params[slot * 3 + i];
        let event = match kind {
            0 => ScenarioEvent::LoadShift {
                at: p(0) * 5_000.0,
                factor: 0.5 + 2.0 * p(1),
            },
            1 => ScenarioEvent::Storm {
                at: p(0) * 5_000.0,
                duration: 100.0 + p(1) * 2_000.0,
                factor: 1.0 + p(2) * 2.0,
            },
            2 => ScenarioEvent::StormFront {
                start: p(0) * 2_000.0,
                period: 600.0 + p(1) * 3_000.0,
                chance: p(2),
                duration: 300.0,
                factor: 1.5,
                windows: 8,
            },
            3 => ScenarioEvent::Preemption {
                at: p(0) * 8_000.0,
                downtime: p(1) * 600.0,
            },
            4 => ScenarioEvent::Preemptions {
                start: p(0) * 2_000.0,
                mean_interval: 600.0 + p(1) * 4_000.0,
                downtime: 300.0,
                count: 6,
            },
            5 => ScenarioEvent::PriceChange {
                at: p(0) * 5_000.0,
                factor: 0.25 + p(1) * 3.0,
            },
            6 => ScenarioEvent::Diurnal {
                period: 3_600.0 + p(0) * 40_000.0,
                amplitude: p(1),
                phase: p(2),
            },
            _ => continue,
        };
        scenario.events.push(event);
    }
    scenario.fleet = match fleet {
        0 => Vec::new(),
        1 => vec![VmType::C5_9xlarge, VmType::M5_8xlarge],
        _ => vec![VmType::M5Large, VmType::M5_16xlarge, VmType::R5_8xlarge],
    };
    scenario.validate();
    scenario
}

/// The operation mix the record/replay differential drives: a game (committed), a solo
/// run, repeated observations, and a forked sub-environment.
fn drive(exec: &mut dyn ExecutionBackend) -> (Vec<u64>, u64, u64) {
    let fast = ExecutionSpec::new(100.0, 0.3);
    let slow = ExecutionSpec::new(220.0, 0.9);
    let play = exec.play_game(&[fast, slow], &GameRules::default());
    exec.commit(&play);
    let run = exec.run_single(fast);
    let observations = exec.observe_repeated(slow, 3, 900.0);
    let mut fork = exec.fork(4242);
    let fork_run = fork.run_single(slow);
    let mut bits: Vec<u64> = play.observed_times.iter().map(|t| t.to_bits()).collect();
    bits.push(play.elapsed.to_bits());
    bits.push(run.observed_time.to_bits());
    bits.push(run.elapsed.to_bits());
    bits.push(fork_run.observed_time.to_bits());
    bits.push(fork.cost().core_hours().to_bits());
    bits.extend(observations.iter().map(|t| t.to_bits()));
    (
        bits,
        exec.cost().core_hours().to_bits(),
        exec.clock().as_seconds().to_bits(),
    )
}

proptest! {
    /// Timeline expansion is a pure function of `(spec, seed)`, its factors are pure
    /// functions of time, and the spec round-trips through canonical JSON (fingerprint
    /// included) byte for byte.
    #[test]
    fn timelines_are_deterministic_per_seed(
        kinds in prop::collection::vec(0u8..8, 4),
        params in prop::collection::vec(0.0f64..1.0, 12),
        fleet in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let scenario = scenario_from(&kinds, &params, fleet);
        prop_assert_eq!(
            Timeline::expand(&scenario, seed),
            Timeline::expand(&scenario, seed),
            "same (spec, seed) must expand identically"
        );
        let timeline = scenario.timeline(seed);
        for i in 0..24u64 {
            let t = i as f64 * 577.0;
            prop_assert_eq!(timeline.load_factor(t).to_bits(), timeline.load_factor(t).to_bits());
            prop_assert!(timeline.load_factor(t) > 0.0);
            prop_assert!(timeline.price_factor(t) > 0.0);
        }
        let json = scenario.to_json();
        let parsed = ScenarioSpec::from_json(&json).expect("canonical scenarios parse");
        prop_assert_eq!(&parsed, &scenario);
        prop_assert_eq!(parsed.to_json(), json, "re-serialization is byte-identical");
        prop_assert_eq!(parsed.fingerprint(), scenario.fingerprint());
    }

    /// The load-bearing property: a scenario-wrapped backend recorded through
    /// `TraceRecorder` replays through `TraceReplayer` bit-identically — every
    /// observation, the cost accounting, and the clock — with zero simulator
    /// operations, because the scenario re-applies its deterministic transforms over
    /// the replayed raw outcomes.
    #[test]
    fn scenario_backends_record_replay_byte_identically(
        kinds in prop::collection::vec(0u8..8, 4),
        params in prop::collection::vec(0.0f64..1.0, 12),
        fleet in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let scenario = scenario_from(&kinds, &params, fleet);
        let profile = InterferenceProfile::typical();

        let recorder = TraceRecorder::new(Box::new(SimProvider), "scenario-prop", 0xdead);
        let inner = recorder.backend("root", VM, &profile, seed);
        let mut live = ScenarioBackend::new(inner, scenario.clone(), seed);
        let live_result = drive(&mut live);
        drop(live);
        let trace = recorder.finish();

        let replayer = TraceReplayer::new(trace);
        let before = sim_ops();
        let inner = replayer.backend("root", VM, &profile, seed);
        let mut replay = ScenarioBackend::new(inner, scenario, seed);
        let replay_result = drive(&mut replay);
        prop_assert_eq!(sim_ops(), before, "replay must not touch the simulator");
        prop_assert_eq!(live_result, replay_result);
    }
}

#[test]
fn combined_pack_scenarios_stay_valid_and_deterministic() {
    // Combinators over the built-in pack produce valid scenarios whose timelines stay
    // deterministic — the synthesis path the README documents.
    let pack = ScenarioSpec::pack();
    for a in &pack {
        for b in &pack {
            for combined in [a.then(3_600.0, b), a.overlay(b), a.scale(0.5)] {
                combined.validate();
                assert_eq!(
                    Timeline::expand(&combined, 7),
                    Timeline::expand(&combined, 7)
                );
            }
        }
    }
}

#[test]
fn set_clock_skips_idle_preemptions_deterministically() {
    // A Fig. 3-style delayed tuning start (set_clock) crosses early preemptions while
    // idle; the backend must skip them identically on record and replay.
    let mut scenario = ScenarioSpec::new("late-start");
    scenario.events.push(ScenarioEvent::Preemptions {
        start: 0.0,
        mean_interval: 400.0,
        downtime: 120.0,
        count: 10,
    });
    let profile = InterferenceProfile::typical();
    let run = |seed: u64| {
        let mut exec = ScenarioBackend::new(
            SimProvider.backend("s", VM, &profile, seed),
            scenario.clone(),
            seed,
        );
        exec.set_clock(SimTime::from_seconds(1_500.0));
        let run = exec.run_single(ExecutionSpec::new(300.0, 0.4));
        (run.observed_time.to_bits(), run.elapsed.to_bits())
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4), "different seeds see different schedules");
}
