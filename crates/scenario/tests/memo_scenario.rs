//! Memoization composed with scenarios: the solo-cache regression battery.
//!
//! A memoized backend inside a load-varying scenario must not replay answers from a
//! different load regime. The bug pinned here: `MemoBackend`'s solo key used to ignore
//! the clock, so a `run_single` issued *after* a `LoadShift` happily returned the
//! pre-shift observation — stale by the shift factor. The default memo now keys on the
//! clock (repeat evaluations under a different regime re-observe), while
//! [`MemoBackend::assuming_stationary`] is the explicit opt-in to the old aggressive
//! caching for workloads that really are time-invariant.

use dg_cloudsim::{ExecutionSpec, InterferenceProfile, SimTime, VmType};
use dg_exec::{ExecutionBackend, MemoBackend, SimBackend};
use dg_scenario::{ScenarioBackend, ScenarioEvent, ScenarioSpec};

/// The ambient load triples at t = 1000 s.
fn shifted_scenario() -> ScenarioSpec {
    let mut scenario = ScenarioSpec::new("memo-load-shift");
    scenario.events.push(ScenarioEvent::LoadShift {
        at: 1_000.0,
        factor: 3.0,
    });
    scenario
}

fn memoized_scenario(seed: u64, stationary: bool) -> MemoBackend {
    let sim = Box::new(SimBackend::new(
        VmType::M5_8xlarge,
        InterferenceProfile::typical(),
        seed,
    ));
    let wrapped = Box::new(ScenarioBackend::new(sim, shifted_scenario(), seed));
    if stationary {
        MemoBackend::assuming_stationary(wrapped)
    } else {
        MemoBackend::new(wrapped)
    }
}

#[test]
fn default_memo_reobserves_after_a_load_shift() {
    let mut exec = memoized_scenario(11, false);
    let spec = ExecutionSpec::new(100.0, 0.5);

    let before = exec.run_single(spec);
    assert!(
        before.started_at.as_seconds() < 1_000.0,
        "first run pre-shift"
    );

    // Jump past the shift: the same spec now lives in a 3x-loaded regime.
    exec.set_clock(SimTime::from_seconds(10_000.0));
    let after = exec.run_single(spec);

    assert_eq!(exec.hits(), 0, "a different clock must not hit the cache");
    assert_eq!(exec.misses(), 2);
    assert_ne!(
        after.observed_time.to_bits(),
        before.observed_time.to_bits(),
        "the post-shift run must be a fresh observation, not the cached one"
    );
    assert!(
        after.observed_time > before.observed_time,
        "tripled ambient load must show up in the fresh observation \
         ({} vs {})",
        after.observed_time,
        before.observed_time
    );
}

#[test]
fn stationary_memo_replays_stale_bits_across_the_shift() {
    // The documented trade of `assuming_stationary`: bit-identical replay of the first
    // observation even though the regime changed underneath. Correct (and fast) for
    // steady scenarios, knowingly stale for this one.
    let mut exec = memoized_scenario(11, true);
    let spec = ExecutionSpec::new(100.0, 0.5);

    let before = exec.run_single(spec);
    exec.set_clock(SimTime::from_seconds(10_000.0));
    let after = exec.run_single(spec);

    assert_eq!(exec.hits(), 1);
    assert_eq!(exec.misses(), 1);
    assert_eq!(
        after.observed_time.to_bits(),
        before.observed_time.to_bits(),
        "stationary memo serves the cached pre-shift observation"
    );
}

#[test]
fn default_memo_still_caches_observations_within_one_regime() {
    // The fix must not disable memoization where it is sound: observations carry an
    // explicit start time in their key, so repeating the same cost-free sweep at the
    // same clock is answered from the cache with zero new simulation.
    let mut exec = memoized_scenario(13, false);
    let spec = ExecutionSpec::new(100.0, 0.5);

    let first = exec.observe_repeated(spec, 3, 900.0);
    let ops = dg_exec::sim_ops();
    let second = exec.observe_repeated(spec, 3, 900.0);

    assert_eq!(
        dg_exec::sim_ops(),
        ops,
        "the repeat sweep must be cache-served"
    );
    assert_eq!(exec.hits(), 3);
    let first_bits: Vec<u64> = first.iter().map(|t| t.to_bits()).collect();
    let second_bits: Vec<u64> = second.iter().map(|t| t.to_bits()).collect();
    assert_eq!(first_bits, second_bits);
}
