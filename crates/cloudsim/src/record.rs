//! A lightweight audit log of committed runs.
//!
//! The log is not needed for the tuning algorithms themselves; it exists so that tests,
//! examples, and the experiment harnesses can introspect *how* a tuner spent its budget
//! (how many games, of what size, at which simulated times).

use crate::time::SimTime;
use crate::vm::VmType;
use serde::{Deserialize, Serialize};

/// The kind of run that was committed to the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunKind {
    /// One configuration running alone on the node.
    Single,
    /// Several configurations co-located in a game.
    Colocated,
}

/// One committed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Single or co-located.
    pub kind: RunKind,
    /// Number of co-located players.
    pub players: usize,
    /// VM the run occupied.
    pub vm: VmType,
    /// Simulated time at which the run started.
    pub start: SimTime,
    /// Wall-clock seconds the node was occupied.
    pub elapsed: f64,
}

/// An append-only collection of [`RunRecord`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    records: Vec<RunRecord>,
}

impl RunLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: RunRecord) {
        self.records.push(record);
    }

    /// All records in commit order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Number of committed runs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of player-executions across all runs (a proxy for "samples taken").
    pub fn total_player_executions(&self) -> usize {
        self.records.iter().map(|r| r.players).sum()
    }

    /// Number of runs of the given kind.
    pub fn count_kind(&self, kind: RunKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: RunKind, players: usize) -> RunRecord {
        RunRecord {
            kind,
            players,
            vm: VmType::M5_8xlarge,
            start: SimTime::ZERO,
            elapsed: 10.0,
        }
    }

    #[test]
    fn push_and_count() {
        let mut log = RunLog::new();
        assert!(log.is_empty());
        log.push(record(RunKind::Single, 1));
        log.push(record(RunKind::Colocated, 32));
        log.push(record(RunKind::Colocated, 8));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_kind(RunKind::Colocated), 2);
        assert_eq!(log.total_player_executions(), 41);
    }

    #[test]
    fn records_preserve_order() {
        let mut log = RunLog::new();
        log.push(record(RunKind::Single, 1));
        log.push(record(RunKind::Colocated, 4));
        assert_eq!(log.records()[0].kind, RunKind::Single);
        assert_eq!(log.records()[1].players, 4);
    }
}
